"""Population-at-once evaluation kernel with queue-state reuse caching.

The generational hot loop evaluates a ``(N, T)`` population tensor per
step.  The ``fast``/``reference`` kernels in
:mod:`repro.sim.evaluator` recompute every machine queue of every
chromosome from scratch, and the chromosome-level cache in front of
them only helps when an *entire* row recurs (~8% after crossover).
This module reuses work at the granularity where the GA actually
repeats itself: the per-machine queue — crossover offspring keep most
parental queues intact even though almost no offspring row equals a
parent row.

Semantics
---------
Within one queue, tasks run in ascending ``(order key, task index)``
order.  With queue-local exec-time prefix sums ``cs_j`` (a sequential
left fold) the finish time of the *j*-th queued task is::

    f_j = max_{i <= j}(a_i - cs_{i-1}) + cs_j

which this kernel evaluates with one ``cumsum`` and one
``maximum.accumulate`` over a padded ``(queues, max_len)`` matrix.
Per-queue utility and energy are sequential left folds in queue order;
per-chromosome totals are left folds over ascending queue id.  Every
fold is queue-content-deterministic — a queue's numbers depend only on
its own ordered content, never on the rest of the batch — which is what
makes cached continuation exact: results are bit-identical with the
cache on, off, across checkpoint resume, and across serial/parallel
execution.  :func:`batch_reference_row` restates the same folds as
scalar Python loops and is the exactness oracle for this kernel
(``kernel_method="batch-reference"``).  Note the folds differ in the
last float bits from the ``fast``/``reference`` kernels (different but
equally valid summation associations); batch modes are pinned to *this*
oracle, not to those kernels.

Reuse tiers
-----------
1. **Full-queue states.**  Each queue's content is fingerprinted with a
   *commutative* 64-bit hash (a mod-2⁶⁴ sum of per-element mixes), so
   the fingerprint needs no sort — the composite-key sort runs only
   over elements of queues that miss.  The :class:`QueueStateTable`
   maps fingerprints to the queue's ``(utility, energy, final
   finish)`` folds.
2. **Prefix resume** (optional, default off — see
   :data:`PREFIX_ANCHOR_STRIDE`).  Elements of missed queues are
   sorted into queue order and rolling positional hashes are probed at
   anchor positions (every *prefix_stride*-th element); the longest
   cached prefix seeds
   the left folds (``cs`` / running max / utility / energy) so only
   the suffix is recomputed.  Seeding preserves the exact sequential
   fold, so partial reuse is also bit-identical.

Hash collisions would silently reuse a wrong state; keys carry 64
hashed bits plus the queue id and (prefix) length as a separate check
word, so two distinct contents collide with probability ~2⁻⁶⁴ per
pair — across the ~10⁶ lookup/entry pairs of a long run the chance of
even one collision is below 10⁻⁷, far under the hardware soft-error
rate, and any collision is confined to one run (fingerprints never
leave the process).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "BatchQueueKernel",
    "QueueStateTable",
    "PrefixStateTable",
    "batch_reference_row",
    "PREFIX_ANCHOR_STRIDE",
]

U64 = np.uint64
_MIX1 = U64(0xFF51AFD7ED558CCD)
_MIX2 = U64(0xC4CEB9FE1A85EC53)
_PHI = U64(0x9E3779B97F4A7C15)
_S32 = U64(32)
_LO32 = U64(0xFFFFFFFF)

#: Anchor spacing used when the prefix-resume tier is enabled.  Denser
#: anchors raise partial reuse but cost more probes and inserts.  The
#: tier itself defaults to *off* (``prefix_stride=0``): on all bundled
#: datasets its anchor-table traffic costs more wall-clock than the
#: fold work it skips (fig. 3 scale: ~2.8 vs ~2.5 ms/generation;
#: dataset3: ~120 vs ~87 ms/step) even though it raises element-level
#: reuse by ~5-13 points.  It pays off only when per-element fold work
#: dwarfs a hash-table probe — e.g. much longer queues or a costlier
#: utility model — so the capability stays, measured and switchable.
PREFIX_ANCHOR_STRIDE = 8

#: Fixed seed for the per-symbol hash tables: fingerprints must agree
#: across processes and resumed runs.  (They never change *results* —
#: only which computations are skipped — but determinism keeps cache
#: behaviour reproducible.)
_TABLE_SEED = 0x5EED_BA7C


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix-style finalizer over a uint64 array."""
    x = x ^ (x >> U64(33))
    x = x * _MIX1
    x = x ^ (x >> U64(29))
    x = x * _MIX2
    x = x ^ (x >> _S32)
    return x


def _odd_random_u64(n: int, stream: int) -> np.ndarray:
    """*n* odd uniform uint64 values from the fixed deterministic seed."""
    rng = np.random.Generator(np.random.PCG64(_TABLE_SEED + stream))
    vals = rng.integers(0, 2**63, size=n, dtype=np.int64).view(U64)
    return (vals << U64(1)) | U64(1)


def _segment_key_sums(h: np.ndarray, seg: np.ndarray, n_seg: int) -> np.ndarray:
    """Commutative per-segment sums of uint64 hashes, exact mod 2**64.

    ``bincount`` only takes float64 weights, so the sum runs over the
    32-bit halves separately: each half-sum stays below 2**53 for any
    segment shorter than ~2**20 elements, hence exact, and the halves
    recombine with wrapping uint64 arithmetic.
    """
    lo = (h & _LO32).astype(np.float64)
    hi = (h >> _S32).astype(np.float64)
    slo = np.bincount(seg, weights=lo, minlength=n_seg)
    shi = np.bincount(seg, weights=hi, minlength=n_seg)
    return slo.astype(U64) + (shi.astype(U64) << _S32)


class _OpenAddressTable:
    """Vectorized open-addressing hash table over parallel numpy arrays.

    Keys are ``(key, check)`` uint64 pairs; values live in *n_values*
    parallel float64 columns.  The table clears itself when the entry
    count would exceed half the slots (bounded memory, short probe
    chains); inserts that cannot find a slot within the probe cap are
    dropped — the cache is lossy by contract, which never changes
    results, only how much work is skipped.
    """

    #: Linear-probe rounds before a lookup/insert gives up.
    MAX_PROBES = 32

    def __init__(self, n_slots_log2: int, n_values: int) -> None:
        if not (4 <= n_slots_log2 <= 28):
            raise ValueError(
                f"n_slots_log2 must be in [4, 28]; got {n_slots_log2}"
            )
        n = 1 << n_slots_log2
        self.n_slots = n
        self.mask = np.int64(n - 1)
        self.shift = U64(64 - n_slots_log2)
        # Only the occupancy bitmap needs zero-init: every read of
        # keys/checks/values is masked through ``used``, so those
        # arrays can stay uninitialized (np.empty maps lazily — this
        # keeps table construction O(slots/page) instead of paying a
        # ~36MB memset per kernel, which dominated evaluator
        # construction cost in the online service's per-window loop).
        self.keys = np.empty(n, dtype=U64)
        self.checks = np.empty(n, dtype=U64)
        self.used = np.zeros(n, dtype=bool)
        self.values = [np.empty(n, dtype=np.float64) for _ in range(n_values)]
        self.capacity = n // 2
        self.entries = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def clear(self) -> None:
        """Drop every entry (counters keep their lifetime totals)."""
        self.used[:] = False
        self.entries = 0

    def _home(self, keys: np.ndarray) -> np.ndarray:
        # Fibonacci hashing spreads the (already mixed) keys over slots.
        return ((keys * _PHI) >> self.shift).astype(np.int64)

    def lookup(
        self, keys: np.ndarray, checks: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(found, slot)`` per probe key; slot is -1 where not found."""
        n = keys.shape[0]
        found = np.zeros(n, dtype=bool)
        slots = np.full(n, -1, dtype=np.int64)
        if n == 0 or self.entries == 0:
            return found, slots
        pend = np.arange(n)
        home = self._home(keys)
        for r in range(self.MAX_PROBES):
            s = (home + np.int64(r)) & self.mask
            used = self.used[s]
            match = (
                used
                & (self.keys[s] == keys[pend])
                & (self.checks[s] == checks[pend])
            )
            if match.any():
                found[pend[match]] = True
                slots[pend[match]] = s[match]
            cont = used & ~match
            if not cont.any():
                break
            pend = pend[cont]
            home = home[cont]
        return found, slots

    def insert(self, keys: np.ndarray, checks: np.ndarray, *cols) -> None:
        """Insert key → value rows (existing keys are overwritten)."""
        n = keys.shape[0]
        if n == 0:
            return
        if self.entries + n > self.capacity:
            self.clear()
            self.evictions += 1
        pend = np.arange(n)
        home = self._home(keys)
        for r in range(self.MAX_PROBES):
            if pend.size == 0:
                break
            s = (home + np.int64(r)) & self.mask
            free = ~self.used[s]
            if free.any():
                # Several keys may target one free slot in the same
                # round; fancy assignment applies writes in index
                # order, so the last contender wins every parallel
                # array consistently — the losers just probe on, and a
                # key whose twin already landed (same content in two
                # rows) exits via the post-write match below.
                w = pend[free]
                ws = s[free]
                self.keys[ws] = keys[w]
                self.checks[ws] = checks[w]
                for col, vals in zip(self.values, cols):
                    col[ws] = vals[w]
                self.used[ws] = True
                # Upper bound (duplicate targets counted once each):
                # only drives the load-factor clear, never correctness.
                self.entries += int(np.count_nonzero(free))
            match = (
                self.used[s]
                & (self.keys[s] == keys[pend])
                & (self.checks[s] == checks[pend])
            )
            keep = ~match
            if not keep.any():
                break
            pend = pend[keep]
            home = home[keep]


class QueueStateTable(_OpenAddressTable):
    """Full-queue states: content key → (utility, energy, final finish)."""

    def __init__(self, n_slots_log2: int = 18) -> None:
        super().__init__(n_slots_log2, n_values=3)

    @property
    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
        }


class PrefixStateTable(_OpenAddressTable):
    """Queue-prefix states: positional key → (runmax, cs, u_cum, e_cum)."""

    def __init__(self, n_slots_log2: int = 19) -> None:
        super().__init__(n_slots_log2, n_values=4)


class BatchQueueKernel:
    """Population-at-once evaluation with two-tier queue-state reuse.

    Bound to one evaluator's precomputed arrays (duck-typed: needs
    ``_etc_flat``, ``_eec_flat``, ``_arrivals``, ``_task_types``,
    ``_tuf_table``, ``_queue_groups``, ``_num_queues``,
    ``num_machines``, ``num_tasks``).

    Parameters
    ----------
    use_cache:
        ``False`` disables both reuse tiers (the ``cache_size=0``
        configuration): every queue is recomputed each call.  Results
        are bit-identical either way.
    queue_slots_log2 / prefix_slots_log2:
        log₂ table sizes; each table clears itself at half load.
    prefix_stride:
        Anchor spacing for the prefix-resume tier; ``0`` disables it
        (the full-queue tier still applies).
    """

    def __init__(
        self,
        ev,
        use_cache: bool = True,
        queue_slots_log2: int = 18,
        prefix_slots_log2: int = 19,
        prefix_stride: int = 0,
    ) -> None:
        self.ev = ev
        self.use_cache = bool(use_cache)
        self.prefix_stride = int(prefix_stride)
        if self.prefix_stride < 0:
            raise ValueError(
                f"prefix_stride must be >= 0; got {prefix_stride}"
            )
        self.M = int(ev.num_machines)
        self.T = int(ev.num_tasks)
        self.Mq = int(ev._num_queues)
        self.qg = np.ascontiguousarray(ev._queue_groups, dtype=np.int64)
        self.queue_table = QueueStateTable(queue_slots_log2)
        self.prefix_table = PrefixStateTable(prefix_slots_log2)
        # Per-symbol hash tables: symbol = task_index * M + machine
        # (machines sharing a DVFS queue still hash apart — their ETC
        # columns differ); order keys go through a second table when
        # they fit it, and an arithmetic mix otherwise.
        self._r_sym = _odd_random_u64(self.T * self.M, stream=1)
        self._ord_cap = max(1024, 4 * self.T)
        self._r_ord = _odd_random_u64(self._ord_cap, stream=2)
        # Rolling-hash base powers for positional prefix keys.
        pow_b = np.empty(self.T + 1, dtype=U64)
        pow_b[0] = U64(1)
        base = (_MIX2 << U64(1)) | U64(1)
        np.multiply.accumulate(np.full(self.T, base, dtype=U64),
                               out=pow_b[1:])
        self._pow_b = pow_b
        # Grow-only scratch, keyed by element capacity.
        self._cap = 0
        self._rows_mq: Optional[np.ndarray] = None
        self._cols_m: Optional[np.ndarray] = None
        self._qids: Optional[np.ndarray] = None
        self._u64 = [np.empty(0, dtype=U64) for _ in range(2)]
        self._i64 = [np.empty(0, dtype=np.int64) for _ in range(2)]
        self._sort_scratch = None
        # Grow-only flat pools for the padded (queues × Lmax) fold
        # matrices — fresh MB-scale allocations would pay first-touch
        # page faults every call (see _KernelScratch in the evaluator).
        self._pad_cap = 0
        self._pads = [np.empty(0) for _ in range(5)]
        # Reuse statistics (lifetime + last batch).
        self.last_batch: dict = {}
        self.elements_total = 0
        self.elements_reused = 0

    # -- scratch -----------------------------------------------------------

    def _ensure(self, N: int) -> None:
        n = N * self.T
        if n <= self._cap:
            return
        self._cap = n
        self._rows_mq = np.repeat(np.arange(N, dtype=np.int64) * self.Mq,
                                  self.T)
        self._cols_m = np.tile(np.arange(self.T, dtype=np.int64) * self.M, N)
        self._qids = np.tile(np.arange(self.Mq, dtype=np.int64), N)
        self._u64 = [np.empty(n, dtype=U64) for _ in range(2)]
        self._i64 = [np.empty(n, dtype=np.int64) for _ in range(2)]

    # -- hashing -----------------------------------------------------------

    def _element_hashes(
        self, sym: np.ndarray, flat_order: np.ndarray, n: int
    ) -> np.ndarray:
        """Joint (symbol, order-key) 64-bit mixes, one per element."""
        out = self._u64[0][:n]
        np.take(self._r_sym, sym, out=out)
        omin = int(flat_order.min())
        omax = int(flat_order.max())
        if 0 <= omin and omax < self._ord_cap:
            ho = np.take(self._r_ord, flat_order, out=self._u64[1][:n])
            np.multiply(out, ho, out=out)
        else:
            # Arbitrary int64 order keys: full arithmetic mix, forced
            # odd so the product never degenerates to even-only values.
            ho = _mix64(flat_order.view(U64) * _PHI + U64(1))
            np.multiply(out, (ho << U64(1)) | U64(1), out=out)
        return out

    # -- public API --------------------------------------------------------

    def evaluate_population(
        self, assignments: np.ndarray, orders: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(energies, utilities)`` for an already-validated batch."""
        e, u, _ = self._evaluate(assignments, orders, want_finish=False)
        return e, u

    def evaluate_population_with_finish(
        self, assignments: np.ndarray, orders: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """As above plus per-row makespan (max over queue final finishes;
        ``max`` is rounding-free, so makespans are as exact as the queue
        states themselves)."""
        return self._evaluate(assignments, orders, want_finish=True)

    @property
    def stats(self) -> dict:
        """Queue-reuse counters: table stats + element-level reuse."""
        s = self.queue_table.stats
        s["prefix_hits"] = self.prefix_table.hits
        s["prefix_misses"] = self.prefix_table.misses
        s["elements_total"] = self.elements_total
        s["elements_reused"] = self.elements_reused
        s["reuse_rate"] = (
            self.elements_reused / self.elements_total
            if self.elements_total else 0.0
        )
        return s

    def clear(self) -> None:
        """Drop all cached queue and prefix states."""
        self.queue_table.clear()
        self.prefix_table.clear()

    def adopt_state(self, other: "BatchQueueKernel") -> None:
        """Take over *other*'s cached queue/prefix state and counters.

        Supports the online service's cross-window evaluator reuse: a
        window's evaluator is rebuilt over a longer (append-only) trace,
        but every cached state of the previous kernel remains valid for
        the new one — so the tables transfer wholesale instead of
        starting cold.  Validity rests on content fingerprints being a
        pure function of ``(task_index, machine, order_key)`` elements,
        which the per-symbol hash streams guarantee as long as they are
        prefix-stable under trace growth:

        * ``_r_sym``/``_r_ord`` are fixed-seed PCG64 draws over a
          power-of-two range (one 64-bit word per value, no rejection),
          so a longer stream extends the shorter one; asserted below.
        * ``_pow_b`` is a running product of a constant base.
        * The check word ``(queue_len << 20) | queue_id`` and the
          Fibonacci slot hash do not depend on the trace length.

        Raises :class:`~repro.errors.ScheduleError` when the kernels
        are not compatible (different machines, queue grouping, cache
        configuration, or a *shrunk* trace).
        """
        from repro.errors import ScheduleError

        if other is self:
            return
        if (
            other.M != self.M
            or other.Mq != self.Mq
            or not np.array_equal(other.qg, self.qg)
        ):
            raise ScheduleError(
                "cannot adopt kernel state across different machine/queue "
                "configurations"
            )
        if other.T > self.T:
            raise ScheduleError(
                f"cannot adopt state from a larger trace ({other.T} tasks) "
                f"into a smaller one ({self.T}); carryover is append-only"
            )
        if (
            other.use_cache != self.use_cache
            or other.prefix_stride != self.prefix_stride
        ):
            raise ScheduleError(
                "cannot adopt kernel state across different cache "
                "configurations (use_cache/prefix_stride must match)"
            )
        # Prefix stability of the hash streams — cheap (a vectorized
        # compare over at most T*M words) and load-bearing: a numpy
        # that re-derived bounded draws differently would silently
        # corrupt every adopted fingerprint.
        n_sym = other.T * other.M
        if not np.array_equal(self._r_sym[:n_sym], other._r_sym[:n_sym]):
            raise ScheduleError(
                "per-symbol hash stream is not prefix-stable; refusing to "
                "adopt cached queue states"
            )
        n_ord = min(self._ord_cap, other._ord_cap)
        if not np.array_equal(self._r_ord[:n_ord], other._r_ord[:n_ord]):
            raise ScheduleError(
                "order-key hash stream is not prefix-stable; refusing to "
                "adopt cached queue states"
            )
        self.queue_table = other.queue_table
        self.prefix_table = other.prefix_table
        self.elements_total = other.elements_total
        self.elements_reused = other.elements_reused

    # -- core --------------------------------------------------------------

    def _evaluate(
        self, assignments: np.ndarray, orders: np.ndarray, want_finish: bool
    ) -> tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        N, T = assignments.shape
        Mq = self.Mq
        n = N * T
        n_seg = N * Mq
        self._ensure(N)
        flat_m = assignments.reshape(-1)
        flat_o = orders.reshape(-1)
        # seg id = row * Mq + queue(machine); symbol = task * M + machine
        q = np.take(self.qg, flat_m, out=self._i64[0][:n])
        seg = np.add(q, self._rows_mq[:n], out=self._i64[0][:n])
        sym = np.add(self._cols_m[:n], flat_m, out=self._i64[1][:n])

        h = self._element_hashes(sym, flat_o, n)
        k = _segment_key_sums(h, seg, n_seg)
        lens = np.bincount(seg, minlength=n_seg)
        # The check word carries structure the sum-hash does not.
        check = (
            (lens.astype(np.int64) << np.int64(20)) | self._qids[:n_seg]
        ).view(U64)
        nonempty = lens > 0

        uq = np.zeros(n_seg, dtype=np.float64)
        eq = np.zeros(n_seg, dtype=np.float64)
        fq = np.full(n_seg, -np.inf) if want_finish else None

        found = np.zeros(n_seg, dtype=bool)
        if self.use_cache:
            # Probe only nonempty segments: empty ones can never match
            # (entries always carry length > 0) and their all-zero keys
            # would pile onto one probe chain.
            ne_ids = np.flatnonzero(nonempty)
            if ne_ids.size == n_seg:
                f_ne, s_ne = self.queue_table.lookup(k, check)
                ne_ids = None
            else:
                f_ne, s_ne = self.queue_table.lookup(k[ne_ids], check[ne_ids])
            if f_ne.any():
                hs = s_ne[f_ne]
                hit_ids = f_ne if ne_ids is None else ne_ids[f_ne]
                found[hit_ids] = True
                uq[hit_ids] = self.queue_table.values[0][hs]
                eq[hit_ids] = self.queue_table.values[1][hs]
                if want_finish:
                    fq[hit_ids] = self.queue_table.values[2][hs]
        n_hits = int(np.count_nonzero(found))
        miss_seg = nonempty & ~found
        n_miss = int(np.count_nonzero(miss_seg))
        hit_elems = int(lens[found].sum()) if n_hits else 0
        self.queue_table.hits += n_hits
        self.queue_table.misses += n_miss

        resumed = 0
        if n_miss:
            resumed = self._compute_misses(
                miss_seg, seg, flat_m, flat_o, h, lens, k, check,
                uq, eq, fq,
            )

        self.elements_total += n
        self.elements_reused += hit_elems + resumed
        self.last_batch = {
            "rows": N,
            "elements": n,
            "queues": int(np.count_nonzero(nonempty)),
            "queue_hits": n_hits,
            "queue_misses": n_miss,
            "elements_reused": hit_elems + resumed,
            "elements_resumed": resumed,
            "reuse_rate": (hit_elems + resumed) / n if n else 0.0,
        }

        # Per-row totals: left fold over ascending queue id (empty
        # queues contribute +0.0, which is exact).
        utilities = np.cumsum(uq.reshape(N, Mq), axis=1)[:, -1]
        energies = np.cumsum(eq.reshape(N, Mq), axis=1)[:, -1]
        finish = fq.reshape(N, Mq).max(axis=1) if want_finish else None
        return energies, utilities, finish

    # -- miss path ---------------------------------------------------------

    def _compute_misses(
        self, miss_seg, seg, flat_m, flat_o, h, lens, k, check, uq, eq, fq
    ) -> int:
        """Sort, prefix-resume, and fold every missed queue.

        Fills ``uq``/``eq`` (and ``fq``) at missed segments and inserts
        the new states; returns the number of elements skipped through
        prefix resume.
        """
        from repro.sim.evaluator import _KernelScratch, _queue_order

        ev = self.ev
        stride = self.prefix_stride if self.use_cache else 0
        elem_miss = miss_seg[seg]
        idx = np.flatnonzero(elem_miss)
        ns = idx.size
        sseg = seg[idx]
        sord = flat_o[idx]
        if self._sort_scratch is None:
            self._sort_scratch = _KernelScratch()
        perm = _queue_order(sseg, sord, self._sort_scratch)
        sidx = idx[perm]
        sseg = sseg[perm]

        miss_ids = np.flatnonzero(miss_seg)
        nsm = miss_ids.size
        lens_m = lens[miss_ids]
        remap = np.empty(int(miss_ids[-1]) + 1, dtype=np.int64)
        remap[miss_ids] = np.arange(nsm)
        segc = remap[sseg]
        starts = np.zeros(nsm, dtype=np.int64)
        np.cumsum(lens_m[:-1], out=starts[1:])
        pos = np.arange(ns, dtype=np.int64) - starts[segc]

        # Seeds: identity folds unless a cached prefix overrides them.
        seed_rm = np.full(nsm, -np.inf)
        seed_cs = np.zeros(nsm)
        seed_u = np.zeros(nsm)
        seed_e = np.zeros(nsm)
        resume = np.zeros(nsm, dtype=np.int64)
        resumed_elems = 0

        if stride:
            # Positional rolling hash: H_p = Σ_{i<=p} h_i · B^pos_i,
            # segment-relative via mod-2⁶⁴ offset subtraction (exact).
            hp = h[sidx] * self._pow_b[pos]
            cum = np.cumsum(hp.view(np.int64)).view(U64)
            seg_off = np.zeros(nsm, dtype=U64)
            seg_off[1:] = cum[starts[1:] - 1]
            hrel = cum - seg_off[segc]
            qid_m = (miss_ids % self.Mq)
            anchor = (pos % stride) == (stride - 1)
            a_idx = np.flatnonzero(anchor)
            if a_idx.size:
                a_check = (
                    ((pos[a_idx] + 1) << np.int64(20)) | qid_m[segc[a_idx]]
                ).view(U64)
                p_found, p_slots = self.prefix_table.lookup(
                    hrel[a_idx], a_check
                )
                self.prefix_table.hits += int(np.count_nonzero(p_found))
                self.prefix_table.misses += int(
                    a_idx.size - np.count_nonzero(p_found)
                )
                if p_found.any():
                    f_idx = a_idx[p_found]
                    f_slot = p_slots[p_found]
                    # Longest hit per segment wins.
                    best_len = np.zeros(nsm, dtype=np.int64)
                    np.maximum.at(best_len, segc[f_idx], pos[f_idx] + 1)
                    is_best = (pos[f_idx] + 1) == best_len[segc[f_idx]]
                    b_idx = f_idx[is_best]
                    b_slot = f_slot[is_best]
                    b_seg = segc[b_idx]
                    resume[b_seg] = pos[b_idx] + 1
                    pt = self.prefix_table.values
                    seed_rm[b_seg] = pt[0][b_slot]
                    seed_cs[b_seg] = pt[1][b_slot]
                    seed_u[b_seg] = pt[2][b_slot]
                    seed_e[b_seg] = pt[3][b_slot]
                    resumed_elems = int(resume.sum())

        # Keep only suffix elements (resume == 0 keeps everything).
        if resumed_elems:
            keep = pos >= resume[segc]
            sidx2 = sidx[keep]
            segc2 = segc[keep]
            pos2 = pos[keep] - resume[segc2]
            lens2 = lens_m - resume
            kept_pos = pos[keep]
        else:
            sidx2 = sidx
            segc2 = segc
            pos2 = pos
            lens2 = lens_m
            kept_pos = pos

        stask = sidx2 % self.T
        lin = stask * np.int64(self.M) + flat_m[sidx2]
        e_exec = ev._etc_flat[lin]
        arr = ev._arrivals[stask]

        has_suffix = lens2 > 0
        Lmax = int(lens2.max()) if ns else 0
        if Lmax:
            cells = nsm * Lmax
            if cells > self._pad_cap:
                self._pad_cap = max(cells, 2 * self._pad_cap)
                self._pads = [np.empty(self._pad_cap) for _ in range(5)]
            # Five fold planes from the grow-only pool; cumsums and the
            # running max run in place (ufunc.accumulate reads each
            # input element before writing its output slot).
            A_pad = self._pads[0][:cells].reshape(nsm, Lmax)
            E_pad = self._pads[1][:cells].reshape(nsm, Lmax)
            csp = self._pads[2][:cells].reshape(nsm, Lmax)
            U_pad = self._pads[3][:cells].reshape(nsm, Lmax)
            E2 = self._pads[4][:cells].reshape(nsm, Lmax)
            A_pad.fill(-np.inf)
            E_pad.fill(0.0)
            U_pad.fill(0.0)
            E2.fill(0.0)
            flat_ix = segc2 * np.int64(Lmax) + pos2
            A_pad.reshape(-1)[flat_ix] = arr
            E_pad.reshape(-1)[flat_ix] = e_exec
            # Seed the exec-time fold: cs_0 = seed_cs + e_0 as one add.
            E_pad[:, 0] += seed_cs * has_suffix
            cs = np.cumsum(E_pad, axis=1, out=E_pad)
            cs_prev = csp
            cs_prev[:, 0] = seed_cs
            cs_prev[:, 1:] = cs[:, :-1]
            key = np.subtract(A_pad, cs_prev, out=A_pad)
            np.maximum(key[:, 0], seed_rm, out=key[:, 0])
            runmax = np.maximum.accumulate(key, axis=1, out=key)
            F = np.add(runmax, cs, out=cs_prev)
            f_elem = F.reshape(-1)[flat_ix]
            elapsed = f_elem - arr
            u_elem = ev._tuf_table.evaluate(ev._task_types[stask], elapsed)
            U_pad.reshape(-1)[flat_ix] = u_elem
            U_pad[:, 0] += seed_u * has_suffix
            Uc = np.cumsum(U_pad, axis=1, out=U_pad)
            E2.reshape(-1)[flat_ix] = ev._eec_flat[lin]
            E2[:, 0] += seed_e * has_suffix
            Ec = np.cumsum(E2, axis=1, out=E2)
            last_ix = np.arange(nsm, dtype=np.int64) * np.int64(Lmax)
            last_ix += np.maximum(lens2 - 1, 0)
            u_new = np.where(has_suffix, Uc.reshape(-1)[last_ix], seed_u)
            e_new = np.where(has_suffix, Ec.reshape(-1)[last_ix], seed_e)
            f_new = np.where(
                has_suffix,
                F.reshape(-1)[last_ix],
                seed_rm + seed_cs,
            )
        else:  # every missed queue fully covered by cached prefixes
            u_new = seed_u.copy()
            e_new = seed_e.copy()
            f_new = seed_rm + seed_cs

        uq[miss_ids] = u_new
        eq[miss_ids] = e_new
        if fq is not None:
            fq[miss_ids] = f_new

        if self.use_cache:
            self.queue_table.insert(
                k[miss_ids], check[miss_ids], u_new, e_new, f_new
            )
            if stride and Lmax:
                # Insert anchor states of freshly computed positions.
                new_anchor = np.flatnonzero(
                    ((kept_pos % stride) == (stride - 1))
                )
                if new_anchor.size:
                    a_flat = flat_ix[new_anchor]
                    a_keys = hrel[keep][new_anchor] if resumed_elems \
                        else hrel[new_anchor]
                    a_check = (
                        ((kept_pos[new_anchor] + 1) << np.int64(20))
                        | (miss_ids[segc2[new_anchor]] % self.Mq)
                    ).view(U64)
                    self.prefix_table.insert(
                        a_keys,
                        a_check,
                        runmax.reshape(-1)[a_flat],
                        cs.reshape(-1)[a_flat],
                        Uc.reshape(-1)[a_flat],
                        Ec.reshape(-1)[a_flat],
                    )
        return resumed_elems


def batch_reference_row(
    ev, assignment: np.ndarray, order: np.ndarray
) -> tuple[float, float, np.ndarray]:
    """Scalar oracle for the batch kernel's exact fold semantics.

    Returns ``(energy, utility, per-task finish times)`` for one
    chromosome, computing every queue with plain Python left folds.
    The TUF table is evaluated through the same vectorized
    :meth:`~repro.utility.vectorized.TUFTable.evaluate` — it is
    elementwise, so composition cannot change its values — keeping the
    oracle honest about the recurrence while staying usable in tests.
    """
    T = ev.num_tasks
    qg = ev._queue_groups
    queues: dict[int, list[tuple[int, int]]] = {}
    for t in range(T):
        queues.setdefault(int(qg[assignment[t]]), []).append(
            (int(order[t]), t)
        )
    finish = np.empty(T, dtype=np.float64)
    for items in queues.values():
        items.sort()
        cs = 0.0
        rm = -np.inf
        for o, t in items:
            m = int(assignment[t])
            e = float(ev._etc_flat[t * ev.num_machines + m])
            a = float(ev._arrivals[t])
            cs_prev = cs
            cs = cs + e
            key = a - cs_prev
            rm = max(rm, key)
            finish[t] = rm + cs
    elapsed = finish - ev._arrivals
    task_u = ev._tuf_table.evaluate(ev._task_types, elapsed)
    utility = 0.0
    energy = 0.0
    for qid in range(ev._num_queues):
        items = queues.get(qid)
        if not items:
            continue
        u_q = 0.0
        e_q = 0.0
        for o, t in items:
            m = int(assignment[t])
            u_q = u_q + float(task_u[t])
            e_q = e_q + float(ev._eec_flat[t * ev.num_machines + m])
        utility = utility + u_q
        energy = energy + e_q
    return energy, utility, finish
