"""Reference event-sequential simulator (slow, obviously correct).

This implements the schedule semantics directly from the paper's prose:
per machine, tasks execute in global scheduling order; "we must ensure
that any task's start time is greater than or equal to its arrival
time. If this is not the case, the machine sits idle until this
condition is met."

It exists to validate the closed-form vectorized evaluator
(:mod:`repro.sim.evaluator`): property tests assert the two agree to
floating-point equality on random systems, traces, and allocations.
It also produces a Gantt-style listing for examples and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import ScheduleError
from repro.model.system import SystemModel
from repro.sim.schedule import ResourceAllocation
from repro.types import FloatArray
from repro.workload.trace import Trace

__all__ = ["GanttEntry", "ReferenceResult", "simulate_reference"]


@dataclass(frozen=True, slots=True)
class GanttEntry:
    """One task execution on one machine."""

    task: int
    machine: int
    start: float
    finish: float
    idle_before: float


@dataclass(frozen=True)
class ReferenceResult:
    """Outcome of the reference simulation."""

    start_times: FloatArray
    completion_times: FloatArray
    energy: float
    utility: float
    gantt: tuple[GanttEntry, ...]


def simulate_reference(
    system: SystemModel, trace: Trace, allocation: ResourceAllocation
) -> ReferenceResult:
    """Simulate *allocation* with per-machine sequential loops.

    Semantics identical to
    :meth:`repro.sim.evaluator.ScheduleEvaluator.evaluate`; kept simple
    and loop-based on purpose.
    """
    trace.validate_against(system.num_task_types)
    if allocation.num_tasks != trace.num_tasks:
        raise ScheduleError(
            f"allocation covers {allocation.num_tasks} tasks; trace has "
            f"{trace.num_tasks}"
        )
    allocation.validate_against(
        system.num_machines,
        feasible_task_machine=system.feasible_task_machine,
        task_types=trace.task_types,
    )

    T = trace.num_tasks
    start = np.zeros(T, dtype=np.float64)
    finish = np.zeros(T, dtype=np.float64)
    gantt: list[GanttEntry] = []
    etc_rows = system.etc_task_machine

    for m in range(system.num_machines):
        queue = allocation.machine_queue(m)
        available = 0.0
        for task in queue:
            task = int(task)
            arrival = float(trace.arrival_times[task])
            begin = max(available, arrival)
            exec_time = float(etc_rows[trace.task_types[task], m])
            end = begin + exec_time
            start[task] = begin
            finish[task] = end
            gantt.append(
                GanttEntry(
                    task=task,
                    machine=m,
                    start=begin,
                    finish=end,
                    idle_before=begin - available,
                )
            )
            available = end

    # Energy (Eq. 3) and utility (Eq. 1), task by task.
    energy = 0.0
    utility = 0.0
    for task in range(T):
        tt = int(trace.task_types[task])
        m = int(allocation.machine_assignment[task])
        energy += float(system.eec_task_machine[tt, m])
        tuf = system.task_types[tt].utility_function
        if tuf is None:
            raise ScheduleError(
                f"task type {tt} has no utility function attached"
            )
        utility += float(tuf(finish[task] - trace.arrival_times[task]))

    gantt.sort(key=lambda entry: (entry.start, entry.machine, entry.task))
    return ReferenceResult(
        start_times=start,
        completion_times=finish,
        energy=energy,
        utility=utility,
        gantt=tuple(gantt),
    )
