"""Vectorized schedule evaluation — the simulator hot path.

Semantics (paper Section IV): tasks queue on their assigned machine in
global-scheduling-order (ties by task index); a task's start time is
``max(machine available, arrival)``; its completion adds its ETC; its
utility is ``Υ_τ(completion − arrival)``; its energy is
``EEC(τ, Ω(m)) = ETC·EPC`` regardless of queueing.

Closed form used here: within one machine's queue, with arrivals
``a_1..a_n`` and execution times ``e_1..e_n`` in queue order,

    f_j = max(f_{j-1}, a_j) + e_j
        = cumsum(e)_j + max_{k<=j} ( a_k − cumsum(e)_{k−1} )

so every queue is a segmented cumulative sum plus a segmented running
maximum.  Tasks of all machines (and, in batch mode, all chromosomes)
are processed in a single ``np.lexsort``; segments never interact
because the running maximum is computed on keys offset by
``segment_id × BIG`` with ``BIG`` exceeding the global key range.
There is no Python-level loop over tasks anywhere on this path
(cf. the HPC guide's "vectorizing for loops").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import ScheduleError
from repro.model.system import SystemModel
from repro.sim.schedule import ResourceAllocation
from repro.types import FloatArray, IntArray
from repro.utility.vectorized import TUFTable
from repro.workload.trace import Trace

__all__ = ["EvaluationResult", "ScheduleEvaluator"]


@dataclass(frozen=True)
class EvaluationResult:
    """Full outcome of simulating one resource allocation.

    Attributes
    ----------
    energy:
        Total energy consumed ``E`` (joules) — Eq. (3).
    utility:
        Total utility earned ``U`` — Eq. (1).
    start_times, completion_times:
        ``(T,)`` arrays (seconds).
    task_utilities:
        ``(T,)`` per-task utility earned.
    task_energies:
        ``(T,)`` per-task energy (joules).
    """

    energy: float
    utility: float
    start_times: FloatArray
    completion_times: FloatArray
    task_utilities: FloatArray
    task_energies: FloatArray

    @property
    def makespan(self) -> float:
        """Latest completion time across all tasks."""
        return float(self.completion_times.max())

    @property
    def objectives(self) -> tuple[float, float]:
        """``(energy, utility)`` pair for the optimizer."""
        return (self.energy, self.utility)


def _segmented_finish_times(
    group: IntArray,
    order_key: IntArray,
    arrivals: FloatArray,
    exec_times: FloatArray,
) -> FloatArray:
    """Finish times for tasks queued per *group*, ordered by *order_key*.

    *group* is any integer labeling such that tasks sharing a label
    share a queue (machine index, or machine ⊕ chromosome offset in
    batch mode).  Returns finish times aligned with the input arrays.
    """
    n = group.shape[0]
    # Queue layout: primary sort by group, then key, then task index
    # (np.lexsort's last key is primary; ties fall through to earlier
    # keys; the arange makes the tie-break explicit and stable).
    idx = np.lexsort((np.arange(n), order_key, group))
    g = group[idx]
    e = exec_times[idx]
    a = arrivals[idx]

    # Segment bookkeeping: seg_id increments at each group change.
    new_seg = np.empty(n, dtype=bool)
    new_seg[0] = True
    np.not_equal(g[1:], g[:-1], out=new_seg[1:])
    seg_id = np.cumsum(new_seg) - 1
    starts = np.flatnonzero(new_seg)

    # Segmented cumulative execution time.
    cs = np.cumsum(e)
    seg_offset = np.zeros(starts.shape[0], dtype=np.float64)
    seg_offset[1:] = cs[starts[1:] - 1]
    cse = cs - seg_offset[seg_id]

    # Segmented running maximum of (arrival − preceding work).
    key = a - (cse - e)
    span = float(key.max() - key.min()) if n > 1 else 0.0
    big = span + 1.0
    shifted = key + seg_id * big
    runmax = np.maximum.accumulate(shifted) - seg_id * big

    finish_sorted = cse + runmax
    finish = np.empty(n, dtype=np.float64)
    finish[idx] = finish_sorted
    return finish


class ScheduleEvaluator:
    """Evaluates allocations for one (system, trace) pair.

    Precomputes the per-task ETC/EEC gathers and the stacked TUF table
    once; every evaluation afterwards is pure array work.

    Parameters
    ----------
    system:
        The :class:`~repro.model.system.SystemModel`; its task types
        must carry utility functions.
    trace:
        The workload :class:`~repro.workload.trace.Trace`.
    check_feasibility:
        Validate every evaluated allocation against the feasibility
        mask (cheap; disable only inside the GA, whose operators
        preserve feasibility by construction).
    queue_groups:
        Optional ``(num_machines,)`` int array mapping each machine
        index to a queue id.  Machines sharing a queue id contend for
        the same sequential queue while keeping their own ETC/EPC —
        this is how the DVFS extension models one physical processor
        exposed at several operating points.  Default: identity (every
        machine is its own queue).
    fault_hook:
        Optional zero-argument callable invoked at the top of every
        :meth:`evaluate` / :meth:`evaluate_batch` call.  Exists for the
        deterministic fault-injection harness
        (:mod:`repro.testing.faults`): tests install a hook that
        crashes or hangs at a chosen evaluation, exercising the
        checkpoint/resume and retry recovery paths.  ``None`` (the
        default) costs one predicate per call.
    """

    def __init__(
        self,
        system: SystemModel,
        trace: Trace,
        check_feasibility: bool = True,
        queue_groups: Optional[IntArray] = None,
        fault_hook: Optional[Callable[[], None]] = None,
    ) -> None:
        trace.validate_against(system.num_task_types)
        self.system = system
        self.trace = trace
        self.check_feasibility = check_feasibility
        self.fault_hook = fault_hook
        self.num_tasks = trace.num_tasks
        self.num_machines = system.num_machines

        self._task_types = trace.task_types
        self._arrivals = trace.arrival_times
        # Per-task rows of the machine-instance-expanded matrices.
        self._etc_rows = system.etc_task_machine[self._task_types]
        self._eec_rows = system.eec_task_machine[self._task_types]
        self._feasible_rows = system.feasible_task_machine[self._task_types]
        self._tuf_table = TUFTable.from_system(system)
        self._row_index = np.arange(self.num_tasks)
        if queue_groups is None:
            self._queue_groups = np.arange(self.num_machines, dtype=np.int64)
            self._num_queues = self.num_machines
        else:
            qg = np.asarray(queue_groups, dtype=np.int64)
            if qg.shape != (self.num_machines,):
                raise ScheduleError(
                    f"queue_groups must have shape ({self.num_machines},); "
                    f"got {qg.shape}"
                )
            if np.any(qg < 0):
                raise ScheduleError("queue ids must be >= 0")
            self._queue_groups = qg.copy()
            self._num_queues = int(qg.max()) + 1

    @property
    def tuf_table(self) -> TUFTable:
        """The stacked TUF table (shared with heuristics)."""
        return self._tuf_table

    # -- single allocation -------------------------------------------------

    def evaluate(self, allocation: ResourceAllocation) -> EvaluationResult:
        """Simulate one allocation and return the full result."""
        if self.fault_hook is not None:
            self.fault_hook()
        if allocation.num_tasks != self.num_tasks:
            raise ScheduleError(
                f"allocation covers {allocation.num_tasks} tasks; trace has "
                f"{self.num_tasks}"
            )
        assignment = allocation.machine_assignment
        if int(assignment.max()) >= self.num_machines:
            raise ScheduleError(
                f"allocation references machine {int(assignment.max())}; system "
                f"has {self.num_machines}"
            )
        if self.check_feasibility:
            ok = self._feasible_rows[self._row_index, assignment]
            if not np.all(ok):
                bad = int(np.flatnonzero(~ok)[0])
                raise ScheduleError(
                    f"task {bad} assigned to machine {int(assignment[bad])}, "
                    "which cannot execute its task type"
                )
        exec_times = self._etc_rows[self._row_index, assignment]
        finish = _segmented_finish_times(
            self._queue_groups[assignment],
            allocation.scheduling_order,
            self._arrivals,
            exec_times,
        )
        start = finish - exec_times
        elapsed = finish - self._arrivals
        utilities = self._tuf_table.evaluate(self._task_types, elapsed)
        energies = self._eec_rows[self._row_index, assignment]
        return EvaluationResult(
            energy=float(energies.sum()),
            utility=float(utilities.sum()),
            start_times=start,
            completion_times=finish,
            task_utilities=utilities,
            task_energies=energies,
        )

    def objectives(self, allocation: ResourceAllocation) -> tuple[float, float]:
        """``(energy, utility)`` of one allocation."""
        return self.evaluate(allocation).objectives

    # -- population batch ----------------------------------------------------

    def evaluate_batch(
        self, assignments: IntArray, orders: IntArray
    ) -> tuple[FloatArray, FloatArray]:
        """Objectives for a whole population in one vectorized pass.

        Parameters
        ----------
        assignments, orders:
            ``(N, T)`` arrays: one chromosome per row.

        Returns
        -------
        ``(energies, utilities)`` — each ``(N,)`` float arrays.

        Implementation: rows are concatenated with machine labels offset
        by ``row × num_machines`` so one segmented pass covers every
        queue of every chromosome simultaneously.
        """
        if self.fault_hook is not None:
            self.fault_hook()
        assignments = np.asarray(assignments, dtype=np.int64)
        orders = np.asarray(orders, dtype=np.int64)
        if assignments.ndim != 2 or assignments.shape != orders.shape:
            raise ScheduleError(
                f"batch arrays must be equal-shape 2-D; got {assignments.shape} "
                f"and {orders.shape}"
            )
        N, T = assignments.shape
        if T != self.num_tasks:
            raise ScheduleError(
                f"batch covers {T} tasks per chromosome; trace has {self.num_tasks}"
            )
        if N == 0:
            return (np.empty(0), np.empty(0))
        if int(assignments.max()) >= self.num_machines or int(assignments.min()) < 0:
            raise ScheduleError("batch references machine indices out of range")
        if self.check_feasibility:
            ok = self._feasible_rows[
                np.broadcast_to(self._row_index, (N, T)), assignments
            ]
            if not np.all(ok):
                row, col = np.argwhere(~ok)[0]
                raise ScheduleError(
                    f"chromosome {int(row)}: task {int(col)} assigned to an "
                    "infeasible machine"
                )

        flat_assign = assignments.ravel()
        flat_order = orders.ravel()
        flat_rows = np.tile(self._row_index, N)
        exec_times = self._etc_rows[flat_rows, flat_assign]
        arrivals = np.tile(self._arrivals, N)
        chrom_offset = np.repeat(
            np.arange(N, dtype=np.int64) * self._num_queues, T
        )
        group = self._queue_groups[flat_assign] + chrom_offset

        finish = _segmented_finish_times(group, flat_order, arrivals, exec_times)
        elapsed = finish - arrivals
        utilities = self._tuf_table.evaluate(
            np.tile(self._task_types, N), elapsed
        ).reshape(N, T)
        energies = self._eec_rows[flat_rows, flat_assign].reshape(N, T)
        return energies.sum(axis=1), utilities.sum(axis=1)
