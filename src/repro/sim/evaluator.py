"""Vectorized schedule evaluation — the simulator hot path.

Semantics (paper Section IV): tasks queue on their assigned machine in
global-scheduling-order (ties by task index); a task's start time is
``max(machine available, arrival)``; its completion adds its ETC; its
utility is ``Υ_τ(completion − arrival)``; its energy is
``EEC(τ, Ω(m)) = ETC·EPC`` regardless of queueing.

Closed form used here: within one machine's queue, with arrivals
``a_1..a_n`` and execution times ``e_1..e_n`` in queue order,

    f_j = max(f_{j-1}, a_j) + e_j
        = cumsum(e)_j + max_{k<=j} ( a_k − cumsum(e)_{k−1} )

so every queue is a segmented cumulative sum plus a segmented running
maximum.  Tasks of all machines (and, in batch mode, all chromosomes)
are sorted into queue order with one composite-key radix sort; the
segmented running maximum uses the classic ``segment_id × BIG`` offset
trick only after *validating elementwise that the offset addition is
exact* (so results are provably the true within-segment running
maxima), and otherwise falls back to an exact Hillis–Steele doubling
scan.  Exactness matters beyond precision: it makes every chromosome's
finish times independent of which batch it was evaluated in, which is
what lets the evaluation cache return bit-identical objectives.
There is no Python-level loop over tasks anywhere on this path
(cf. the HPC guide's "vectorizing for loops").

Batch evaluation adds two amortizations:

* a :class:`_BatchWorkspace` holding the grow-only tiled arrival /
  task-type / row-index / queue-offset buffers (tiling only depends on
  the batch size, and a length-``N·T`` tiling is a prefix of any longer
  one);
* an :class:`EvaluationCache` keyed by a 128-bit digest of each
  chromosome row's bytes, so rows already evaluated (survivors cloned
  by crossover, re-discovered chromosomes in converged populations)
  never hit the segmented kernel again.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from hashlib import blake2b
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.errors import ScheduleError
from repro.model.system import SystemModel
from repro.sim.schedule import ResourceAllocation
from repro.types import BoolArray, FloatArray, IntArray
from repro.utility.vectorized import TUFTable
from repro.workload.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.context import RunContext

__all__ = [
    "EvaluationResult",
    "EvaluationCache",
    "EvaluatorArrays",
    "ScheduleEvaluator",
    "DEFAULT_KERNEL_METHOD",
]

#: Default evaluation kernel.  The population-at-once batch kernel wins
#: at every bundled scale (BENCH_ga_hotloop: 2.89 ms vs 4.79 ms per
#: step for "fast") and is bit-identical to its scalar oracle, so it is
#: the default; "fast" and "reference" stay selectable everywhere a
#: ``kernel_method`` knob exists (goldens captured before the flip pin
#: "fast" explicitly).
DEFAULT_KERNEL_METHOD = "batch"

#: Default bound on cached evaluations.  Sized from measured working
#: sets at the benchmark scales: a 125-generation Figure-3 run inserts
#: ~62k distinct queue states, so 2¹⁷ entries leave ~2× headroom before
#: a capacity clear while costing ~20 MB for the chromosome cache and
#: ~10 MB for the batch kernel's queue/prefix tables.  Power of two so
#: the batch kernel's open-addressing tables use it directly.
DEFAULT_CACHE_SIZE = 131_072


@dataclass(frozen=True)
class EvaluationResult:
    """Full outcome of simulating one resource allocation.

    Attributes
    ----------
    energy:
        Total energy consumed ``E`` (joules) — Eq. (3).
    utility:
        Total utility earned ``U`` — Eq. (1).
    start_times, completion_times:
        ``(T,)`` arrays (seconds).
    task_utilities:
        ``(T,)`` per-task utility earned.
    task_energies:
        ``(T,)`` per-task energy (joules).
    """

    energy: float
    utility: float
    start_times: FloatArray
    completion_times: FloatArray
    task_utilities: FloatArray
    task_energies: FloatArray

    @property
    def makespan(self) -> float:
        """Latest completion time across all tasks."""
        return float(self.completion_times.max())

    @property
    def objectives(self) -> tuple[float, float]:
        """``(energy, utility)`` pair for the optimizer."""
        return (self.energy, self.utility)


@dataclass(frozen=True)
class EvaluatorArrays:
    """The evaluator's precomputed per-task gathers, supplied externally.

    Normally :class:`ScheduleEvaluator` derives these from the system
    and trace at construction — a fancy-indexing copy of O(tasks ×
    machines) per array.  The shared-memory parallel engine
    (:mod:`repro.parallel`) computes them once per experiment, publishes
    them into a shared segment, and hands every worker zero-copy views
    wrapped in this container, so evaluator construction in a pool
    worker costs no array materialization at all.  Arrays must match
    what the evaluator would have computed itself — bit for bit — which
    :func:`repro.parallel.descriptors.dataset_arrays` guarantees by
    running the same expressions.

    Attributes
    ----------
    etc_rows, eec_rows:
        ``(T, M)`` per-task ETC / EEC rows (task *i* × machine *m*).
    feasible_rows:
        ``(T, M)`` boolean feasibility per task and machine.
    tuf_table:
        The stacked :class:`~repro.utility.vectorized.TUFTable`.
    """

    etc_rows: FloatArray
    eec_rows: FloatArray
    feasible_rows: BoolArray
    tuf_table: TUFTable


class _KernelScratch:
    """Grow-only temporaries for the segmented kernel.

    At batch scale every per-call temporary is a few hundred KB; fresh
    allocations of that size are served by ``mmap``, so each kernel call
    would pay first-touch page faults across several MB — comparable to
    the arithmetic itself.  One reusable, grow-only set of buffers keeps
    the pages resident.  Buffers are handed out as ``[:n]`` views; the
    evaluator is single-threaded per instance, so reuse is safe.
    """

    __slots__ = ("capacity", "arange", "i64", "f64", "boolean")

    def __init__(self) -> None:
        self.capacity = 0

    def ensure(self, n: int) -> None:
        """Grow the buffer pool to hold at least *n* elements."""
        if n > self.capacity:
            capacity = max(n, 2 * self.capacity)
            self.arange = np.arange(capacity, dtype=np.int64)
            self.i64 = [np.empty(capacity, dtype=np.int64) for _ in range(4)]
            self.f64 = [np.empty(capacity, dtype=np.float64) for _ in range(8)]
            self.boolean = [np.empty(capacity, dtype=bool) for _ in range(2)]
            self.capacity = capacity


def _queue_order(
    group: IntArray,
    order_key: IntArray,
    scratch: Optional[_KernelScratch] = None,
) -> IntArray:
    """Stable sort positions by ``(group, order_key, input index)``.

    Fast path: when ``group × key × index`` fits a single int64
    composite key, the index is appended in the low bits, making every
    key unique — the default introsort on unique keys yields exactly
    the stable order while beating both the stable radix passes and the
    multi-pass ``np.lexsort``.  All paths order ties identically.
    """
    n = group.shape[0]
    gmin, gmax = int(group.min()), int(group.max())
    omin, omax = int(order_key.min()), int(order_key.max())
    key_range = omax - omin + 1
    # Python-int arithmetic: no overflow while checking for overflow.
    cmax = (gmax - gmin + 1) * key_range - 1
    if cmax < 2**62:
        shift = max(n - 1, 1).bit_length()
        if (cmax << shift) | (n - 1) < 2**62:
            if scratch is not None:
                scratch.ensure(n)
                comp = scratch.i64[0][:n]
                tmp = scratch.i64[1][:n]
                arange = scratch.arange[:n]
            else:
                comp = np.empty(n, dtype=np.int64)
                tmp = np.empty(n, dtype=np.int64)
                arange = np.arange(n, dtype=np.int64)
            np.subtract(group, gmin, out=comp)
            comp *= key_range
            np.subtract(order_key, omin, out=tmp)
            comp += tmp
            comp <<= shift
            comp |= arange
            return np.argsort(comp)
        composite = (group - gmin) * np.int64(key_range) + (order_key - omin)
        return np.argsort(composite, kind="stable")
    return np.lexsort((order_key, group))


def _segmented_running_max_scan(
    values: FloatArray, pos_in_seg: IntArray, max_seg_len: int
) -> FloatArray:
    """Exact within-segment running maximum via Hillis–Steele doubling.

    ``pos_in_seg`` gives each element's offset from its segment start.
    O(n log L) with L the longest segment; no magnitude tricks, so it is
    correct for any value range (used when the offset fast path cannot
    prove itself exact).
    """
    m = values.copy()
    shift = 1
    while shift < max_seg_len:
        # Candidates read wholly from the previous iteration's array
        # before any write (Hillis–Steele synchronous update).
        candidate = np.maximum(m[shift:], m[:-shift])
        within = pos_in_seg[shift:] >= shift
        m[shift:][within] = candidate[within]
        shift *= 2
    return m


def _segmented_running_max(
    key: FloatArray,
    seg_id: IntArray,
    starts: IntArray,
    buffers: Optional[tuple] = None,
) -> FloatArray:
    """Exact running maximum of *key* within each segment.

    Fast path: shift each segment's values by ``seg_id × BIG`` so one
    global ``np.maximum.accumulate`` never leaks across segments.  The
    shift is trusted only when the addition round-trips elementwise
    (``(key + offset) − offset == key``): round-trip equality implies
    the shifted values are the exact real sums, hence order-preserving
    within segments, separated across segments, and exactly
    recoverable.  Otherwise (huge arrival spans × many batch segments —
    the float-precision regression this guards against) the doubling
    scan computes the same result without any offset.

    *buffers*, when given, is ``(offset, shifted, vbuf, eq)`` scratch
    views of the input's length; the result may alias ``shifted``.
    """
    n = key.shape[0]
    if starts.shape[0] == 1:
        return np.maximum.accumulate(key)
    if buffers is None:
        offset = np.empty(n, dtype=np.float64)
        shifted = np.empty(n, dtype=np.float64)
        vbuf = np.empty(n, dtype=np.float64)
        eq = np.empty(n, dtype=bool)
    else:
        offset, shifted, vbuf, eq = buffers
    span = float(key.max() - key.min())
    big = span + 1.0
    np.multiply(seg_id, big, out=offset)
    np.add(key, offset, out=shifted)
    np.subtract(shifted, offset, out=vbuf)
    np.equal(vbuf, key, out=eq)
    if eq.all():
        np.maximum.accumulate(shifted, out=shifted)
        shifted -= offset
        return shifted
    seg_len = np.diff(np.append(starts, n))
    pos_in_seg = np.arange(n) - starts[seg_id]
    return _segmented_running_max_scan(key, pos_in_seg, int(seg_len.max()))


def _segmented_finish_times(
    group: IntArray,
    order_key: IntArray,
    arrivals: FloatArray,
    exec_times: FloatArray,
    row_block: Optional[int] = None,
    scratch: Optional[_KernelScratch] = None,
) -> FloatArray:
    """Finish times for tasks queued per *group*, ordered by *order_key*.

    *group* is any integer labeling such that tasks sharing a label
    share a queue (machine index, or machine ⊕ chromosome offset in
    batch mode).  Returns finish times aligned with the input arrays.

    *row_block* declares that the input is ``k`` independent rows of
    that many elements whose group ids strictly separate rows (batch
    mode: ``group = queue + row × num_queues``), so after the sort each
    row occupies one contiguous block.  The cumulative sums are then
    computed per block, never across rows — combined with the exact
    running maximum this makes each row's finish times bit-identical
    no matter which batch it is evaluated in, the property the
    evaluation cache and the retry runner's re-batching rely on.
    ``None`` treats the whole input as one row.

    *scratch*, when given, supplies the reusable temporaries (see
    :class:`_KernelScratch`); results are identical with or without it.
    """
    n = group.shape[0]
    if row_block is None:
        row_block = n
    elif n % row_block != 0:
        raise ScheduleError(
            f"input length {n} is not a multiple of row_block {row_block}"
        )
    idx = _queue_order(group, order_key, scratch)
    if scratch is not None:
        # _queue_order only allocates on its composite fast path; its
        # lexsort fallback leaves the pool untouched, so ensure here.
        scratch.ensure(n)
        # i64[0]/i64[1] were _queue_order's work buffers; both are free
        # again once the argsort has produced idx.
        g = np.take(group, idx, out=scratch.i64[0][:n])
        e = np.take(exec_times, idx, out=scratch.f64[0][:n])
        a = np.take(arrivals, idx, out=scratch.f64[1][:n])
        new_seg = scratch.boolean[0][:n]
        seg_id = scratch.i64[1][:n]
        cs = scratch.f64[2][:n]
        tmp = scratch.f64[3][:n]
        key = scratch.f64[4][:n]
        buffers = (
            scratch.f64[5][:n],  # offset
            scratch.f64[6][:n],  # shifted
            tmp,  # validation buffer; tmp is dead once key is built
            scratch.boolean[1][:n],
        )
    else:
        g = group[idx]
        e = exec_times[idx]
        a = arrivals[idx]
        new_seg = np.empty(n, dtype=bool)
        seg_id = np.empty(n, dtype=np.int64)
        cs = np.empty(n, dtype=np.float64)
        tmp = np.empty(n, dtype=np.float64)
        key = np.empty(n, dtype=np.float64)
        buffers = None

    # Segment bookkeeping: seg_id increments at each group change.
    new_seg[0] = True
    np.not_equal(g[1:], g[:-1], out=new_seg[1:])
    np.cumsum(new_seg, out=seg_id)
    seg_id -= 1
    starts = np.flatnonzero(new_seg)

    # Row-local cumulative execution time: summing within rows only
    # keeps each row's rounding independent of its batch neighbours.
    np.cumsum(e.reshape(-1, row_block), axis=1, out=cs.reshape(-1, row_block))
    seg_offset = np.zeros(starts.shape[0], dtype=np.float64)
    interior = starts % row_block != 0  # segment starts inside a row
    seg_offset[interior] = cs[starts[interior] - 1]
    np.take(seg_offset, seg_id, out=tmp)
    cs -= tmp  # cs now holds cse, the within-segment cumulative sum

    # Segmented running maximum of (arrival − preceding work).
    np.subtract(cs, e, out=tmp)
    np.subtract(a, tmp, out=key)  # key = a − (cse − e)
    runmax = _segmented_running_max(key, seg_id, starts, buffers)

    cs += runmax  # finish times in sorted order
    finish = np.empty(n, dtype=np.float64)
    finish[idx] = cs
    return finish


def _segmented_finish_times_reference(
    group: IntArray,
    order_key: IntArray,
    arrivals: FloatArray,
    exec_times: FloatArray,
) -> FloatArray:
    """The pre-optimization kernel, kept verbatim as a reference.

    Used by the hot-loop benchmark (baseline stage timings) and by the
    precision regression tests: its unvalidated ``seg_id × BIG`` offset
    loses low bits when huge arrival spans meet many batch segments,
    which the production kernel now detects and avoids.
    """
    n = group.shape[0]
    idx = np.lexsort((np.arange(n), order_key, group))
    g = group[idx]
    e = exec_times[idx]
    a = arrivals[idx]

    new_seg = np.empty(n, dtype=bool)
    new_seg[0] = True
    np.not_equal(g[1:], g[:-1], out=new_seg[1:])
    seg_id = np.cumsum(new_seg) - 1
    starts = np.flatnonzero(new_seg)

    cs = np.cumsum(e)
    seg_offset = np.zeros(starts.shape[0], dtype=np.float64)
    seg_offset[1:] = cs[starts[1:] - 1]
    cse = cs - seg_offset[seg_id]

    key = a - (cse - e)
    span = float(key.max() - key.min()) if n > 1 else 0.0
    big = span + 1.0
    shifted = key + seg_id * big
    runmax = np.maximum.accumulate(shifted) - seg_id * big

    finish_sorted = cse + runmax
    finish = np.empty(n, dtype=np.float64)
    finish[idx] = finish_sorted
    return finish


class EvaluationCache:
    """Content-addressed chromosome → objectives cache.

    Keys are 128-bit BLAKE2b digests of a chromosome row's raw bytes
    (assignments then orders, both int64) — collisions are negligible
    (birthday bound ~2⁶⁴ entries) and the digest is ~250× smaller than
    the row itself.  Values are the exact ``(energy, utility)`` floats
    the kernel produced, so cache hits are bit-identical to fresh
    evaluations.  When *max_entries* is reached the store is cleared
    (O(1) bookkeeping beats LRU at GA access patterns, where the live
    working set is the current population).

    Counters come in two flavours: ``hits``/``misses``/``evictions``
    are lifetime totals (monotonic — observability deltas depend on
    that), while :attr:`stats` reports the current *window* — counts
    since the store was last emptied — so a long run's reported
    ``hit_rate`` reflects the live store instead of averaging over
    every pre-clear epoch (which silently inflated it before).
    """

    __slots__ = (
        "max_entries", "hits", "misses", "evictions",
        "window_hits", "window_misses", "_store",
    )

    def __init__(self, max_entries: int = DEFAULT_CACHE_SIZE) -> None:
        if max_entries < 1:
            raise ScheduleError(
                f"cache max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.window_hits = 0
        self.window_misses = 0
        self._store: dict[bytes, tuple[float, float]] = {}

    def __len__(self) -> int:
        return len(self._store)

    @staticmethod
    def key(assignment_row: IntArray, order_row: IntArray) -> bytes:
        """Digest of one chromosome row (dtype-stable: int64 bytes)."""
        h = blake2b(digest_size=16)
        h.update(assignment_row.tobytes())
        h.update(order_row.tobytes())
        return h.digest()

    def get(self, key: bytes) -> Optional[tuple[float, float]]:
        """Cached objectives for *key*, counting the hit/miss."""
        value = self._store.get(key)
        if value is None:
            self.misses += 1
            self.window_misses += 1
        else:
            self.hits += 1
            self.window_hits += 1
        return value

    def put(self, key: bytes, energy: float, utility: float) -> None:
        """Store one row's objectives, clearing first if at capacity."""
        if len(self._store) >= self.max_entries:
            self.evictions += len(self._store)
            self._store.clear()
            self.window_hits = 0
            self.window_misses = 0
        self._store[key] = (energy, utility)

    def clear(self) -> None:
        """Drop all entries.  Window counters restart with the empty
        store; lifetime ``hits``/``misses``/``evictions`` are kept."""
        self._store.clear()
        self.window_hits = 0
        self.window_misses = 0

    @property
    def stats(self) -> dict:
        """Current-window counters plus lifetime totals.

        ``hits``/``misses``/``hit_rate`` describe the window since the
        store last became empty (capacity clears included), so the
        reported rate always refers to entries that can actually hit;
        ``lifetime_hits``/``lifetime_misses`` carry the monotonic
        totals.
        """
        total = self.window_hits + self.window_misses
        return {
            "hits": self.window_hits,
            "misses": self.window_misses,
            "entries": len(self._store),
            "evictions": self.evictions,
            "hit_rate": (self.window_hits / total) if total else 0.0,
            "lifetime_hits": self.hits,
            "lifetime_misses": self.misses,
        }


class _BatchWorkspace:
    """Grow-only tiled buffers for batch evaluation.

    The tiled row-index / arrival / task-type / queue-offset arrays
    depend only on the batch size ``N``, and (being whole-row
    repetitions) a tiling for ``N`` rows is exactly the prefix of a
    tiling for more rows — so one grow-only allocation serves every
    batch size via views.
    """

    __slots__ = ("capacity", "_flat_rows", "_arrivals", "_task_types", "_offsets")

    def __init__(self) -> None:
        self.capacity = 0

    def views(
        self, evaluator: "ScheduleEvaluator", n_rows: int
    ) -> tuple[IntArray, FloatArray, IntArray, IntArray]:
        """(flat_rows, arrivals, task_types, queue_offsets) for *n_rows*."""
        if n_rows > self.capacity:
            capacity = max(n_rows, 2 * self.capacity)
            T = evaluator.num_tasks
            self._flat_rows = np.tile(evaluator._row_index, capacity)
            self._arrivals = np.tile(evaluator._arrivals, capacity)
            self._task_types = np.tile(evaluator._task_types, capacity)
            self._offsets = np.repeat(
                np.arange(capacity, dtype=np.int64) * evaluator._num_queues, T
            )
            self.capacity = capacity
        n = n_rows * evaluator.num_tasks
        return (
            self._flat_rows[:n],
            self._arrivals[:n],
            self._task_types[:n],
            self._offsets[:n],
        )


class ScheduleEvaluator:
    """Evaluates allocations for one (system, trace) pair.

    Precomputes the per-task ETC/EEC gathers and the stacked TUF table
    once; every evaluation afterwards is pure array work.

    Parameters
    ----------
    system:
        The :class:`~repro.model.system.SystemModel`; its task types
        must carry utility functions.
    trace:
        The workload :class:`~repro.workload.trace.Trace`.
    check_feasibility:
        Validate every evaluated allocation against the feasibility
        mask (cheap; disable only inside the GA, whose operators
        preserve feasibility by construction).
    queue_groups:
        Optional ``(num_machines,)`` int array mapping each machine
        index to a queue id.  Machines sharing a queue id contend for
        the same sequential queue while keeping their own ETC/EPC —
        this is how the DVFS extension models one physical processor
        exposed at several operating points.  Default: identity (every
        machine is its own queue).
    fault_hook:
        Optional zero-argument callable invoked at the top of every
        :meth:`evaluate` / :meth:`evaluate_batch` call.  Exists for the
        deterministic fault-injection harness
        (:mod:`repro.testing.faults`): tests install a hook that
        crashes or hangs at a chosen evaluation, exercising the
        checkpoint/resume and retry recovery paths.  ``None`` (the
        default) costs one predicate per call.
    cache_size:
        Upper bound on the chromosome evaluation cache (see
        :class:`EvaluationCache`); ``0`` disables caching.  Cached and
        fresh evaluations are bit-identical (the kernel is exact and
        batch-composition independent), so this only changes speed.
    kernel_method:
        ``"batch"`` (default) — the population-at-once kernel
        with queue-state reuse caching (see
        :mod:`repro.sim.batchkernel`); ``"fast"`` — composite-key radix
        sort + validated exact segmented maximum; ``"reference"`` — the
        pre-optimization lexsort/offset kernel, kept for benchmarking
        and precision regression tests; ``"batch-reference"`` — the
        batch kernel's scalar exactness oracle, run row by row.  The
        two batch modes are bit-identical to each other but differ in
        the last float bits from ``fast``/``reference`` (different,
        equally valid summation associations).
    prefix_stride:
        Batch-mode only: anchor spacing of the prefix-resume cache
        tier; ``0`` (default) disables it.  On the bundled datasets the
        tier's anchor-table traffic costs more wall-clock than the fold
        work it skips, so it is off by default — enabling it raises the
        measured ``reuse_rate`` but not throughput (see
        ``docs/performance.md``).  Results are bit-identical either
        way.
    obs:
        Optional :class:`~repro.obs.context.RunContext`.  When enabled,
        each batch evaluation records an ``evaluator.batch`` span and
        feeds the chromosome / cache-hit / cache-miss / eviction
        counters; when disabled (default), evaluation pays exactly one
        predicate — the kernel itself is untouched either way, so
        objectives are bit-identical with observability on or off.
    precomputed:
        Optional :class:`EvaluatorArrays` carrying the per-task
        ETC/EEC/feasibility gathers and the TUF table, e.g. zero-copy
        views of a shared-memory segment (see :mod:`repro.parallel`).
        When given, construction performs no array materialization and
        the system's task types need not carry utility functions (the
        table is taken as supplied).  Results are bit-identical to a
        self-computed evaluator because the arrays are the same values.
    """

    def __init__(
        self,
        system: SystemModel,
        trace: Trace,
        check_feasibility: bool = True,
        queue_groups: Optional[IntArray] = None,
        fault_hook: Optional[Callable[[], None]] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        kernel_method: str = DEFAULT_KERNEL_METHOD,
        obs: Optional["RunContext"] = None,
        precomputed: Optional[EvaluatorArrays] = None,
        prefix_stride: int = 0,
    ) -> None:
        trace.validate_against(system.num_task_types)
        if kernel_method not in (
            "fast", "reference", "batch", "batch-reference"
        ):
            raise ScheduleError(
                "kernel_method must be one of 'fast', 'reference', "
                f"'batch', 'batch-reference'; got {kernel_method!r}"
            )
        if cache_size < 0:
            raise ScheduleError(f"cache_size must be >= 0, got {cache_size}")
        self.system = system
        self.trace = trace
        self.check_feasibility = check_feasibility
        self.fault_hook = fault_hook
        self.kernel_method = kernel_method
        if obs is None:
            from repro.obs.context import NULL_CONTEXT

            obs = NULL_CONTEXT
        self.obs = obs
        # Batch modes replace the chromosome cache with the kernel's
        # queue-state tables (finer-grained reuse; hashing whole rows
        # on top would cost more than the duplicate rows it saves).
        use_chromosome_cache = cache_size > 0 and kernel_method in (
            "fast", "reference"
        )
        self.cache = EvaluationCache(cache_size) if use_chromosome_cache \
            else None
        self._workspace = _BatchWorkspace()
        self._scratch = _KernelScratch()
        self._packed32: Optional[np.ndarray] = None
        self.num_tasks = trace.num_tasks
        self.num_machines = system.num_machines

        self._task_types = trace.task_types
        self._arrivals = trace.arrival_times
        if precomputed is not None:
            expected = (self.num_tasks, self.num_machines)
            if precomputed.etc_rows.shape != expected:
                raise ScheduleError(
                    f"precomputed etc_rows shape {precomputed.etc_rows.shape} "
                    f"does not match (tasks, machines) = {expected}"
                )
            self._etc_rows = precomputed.etc_rows
            self._eec_rows = precomputed.eec_rows
            self._feasible_rows = precomputed.feasible_rows
            self._tuf_table = precomputed.tuf_table
        else:
            # Per-task rows of the machine-instance-expanded matrices.
            self._etc_rows = system.etc_task_machine[self._task_types]
            self._eec_rows = system.eec_task_machine[self._task_types]
            self._feasible_rows = system.feasible_task_machine[self._task_types]
            self._tuf_table = TUFTable.from_system(system)
        # Flat views/copies for np.take-with-out gathers on the batch
        # path (a ravel of a C-contiguous array — the shared-view case —
        # is zero-copy).
        self._etc_flat = np.ascontiguousarray(self._etc_rows).reshape(-1)
        self._eec_flat = np.ascontiguousarray(self._eec_rows).reshape(-1)
        self._row_index = np.arange(self.num_tasks)
        if queue_groups is None:
            self._queue_groups = np.arange(self.num_machines, dtype=np.int64)
            self._num_queues = self.num_machines
        else:
            qg = np.asarray(queue_groups, dtype=np.int64)
            if qg.shape != (self.num_machines,):
                raise ScheduleError(
                    f"queue_groups must have shape ({self.num_machines},); "
                    f"got {qg.shape}"
                )
            if np.any(qg < 0):
                raise ScheduleError("queue ids must be >= 0")
            self._queue_groups = qg.copy()
            self._num_queues = int(qg.max()) + 1
        self._batch_kernel = None
        if kernel_method == "batch":
            from repro.sim.batchkernel import BatchQueueKernel

            # cache_size is the entry budget; tables hold up to half
            # their slots, so the slot count doubles it (cache_size=0
            # is the validated caching-off configuration).
            slots_log2 = (
                max(8, (2 * cache_size - 1).bit_length())
                if cache_size else 8
            )
            self._batch_kernel = BatchQueueKernel(
                self,
                use_cache=cache_size > 0,
                queue_slots_log2=min(28, slots_log2),
                prefix_slots_log2=min(28, slots_log2 + 1),
                prefix_stride=prefix_stride,
            )

    @property
    def tuf_table(self) -> TUFTable:
        """The stacked TUF table (shared with heuristics)."""
        return self._tuf_table

    # -- single allocation -------------------------------------------------

    def evaluate(self, allocation: ResourceAllocation) -> EvaluationResult:
        """Simulate one allocation and return the full result."""
        if self.fault_hook is not None:
            self.fault_hook()
        if allocation.num_tasks != self.num_tasks:
            raise ScheduleError(
                f"allocation covers {allocation.num_tasks} tasks; trace has "
                f"{self.num_tasks}"
            )
        assignment = allocation.machine_assignment
        if int(assignment.max()) >= self.num_machines:
            raise ScheduleError(
                f"allocation references machine {int(assignment.max())}; system "
                f"has {self.num_machines}"
            )
        if self.check_feasibility:
            ok = self._feasible_rows[self._row_index, assignment]
            if not np.all(ok):
                bad = int(np.flatnonzero(~ok)[0])
                raise ScheduleError(
                    f"task {bad} assigned to machine {int(assignment[bad])}, "
                    "which cannot execute its task type"
                )
        exec_times = self._etc_rows[self._row_index, assignment]
        if self.kernel_method in ("batch", "batch-reference"):
            # Batch fold semantics: totals are per-queue left folds
            # combined over ascending queue id, so evaluate() agrees
            # bit-for-bit with evaluate_batch() in these modes.
            from repro.sim.batchkernel import batch_reference_row

            energy, utility, finish = batch_reference_row(
                self, assignment, allocation.scheduling_order
            )
            start = finish - exec_times
            elapsed = finish - self._arrivals
            utilities = self._tuf_table.evaluate(self._task_types, elapsed)
            energies = self._eec_rows[self._row_index, assignment]
            return EvaluationResult(
                energy=energy,
                utility=utility,
                start_times=start,
                completion_times=finish,
                task_utilities=utilities,
                task_energies=energies,
            )
        finish = self._finish_times(
            self._queue_groups[assignment],
            allocation.scheduling_order,
            self._arrivals,
            exec_times,
        )
        start = finish - exec_times
        elapsed = finish - self._arrivals
        utilities = self._tuf_table.evaluate(self._task_types, elapsed)
        energies = self._eec_rows[self._row_index, assignment]
        return EvaluationResult(
            energy=float(energies.sum()),
            utility=float(utilities.sum()),
            start_times=start,
            completion_times=finish,
            task_utilities=utilities,
            task_energies=energies,
        )

    def objectives(self, allocation: ResourceAllocation) -> tuple[float, float]:
        """``(energy, utility)`` of one allocation."""
        return self.evaluate(allocation).objectives

    def _finish_times(
        self,
        group: IntArray,
        order_key: IntArray,
        arrivals: FloatArray,
        exec_times: FloatArray,
        row_block: Optional[int] = None,
    ) -> FloatArray:
        """Dispatch to the configured segmented kernel."""
        if self.kernel_method == "fast":
            return _segmented_finish_times(
                group, order_key, arrivals, exec_times, row_block,
                self._scratch,
            )
        return _segmented_finish_times_reference(
            group, order_key, arrivals, exec_times
        )

    @property
    def cache_stats(self) -> dict:
        """Evaluation-cache counters (all zero when caching is off).

        In ``kernel_method="batch"`` the counters come from the batch
        kernel's queue/prefix state tables instead of the per-chromosome
        cache, and include element-level ``reuse_rate``.
        """
        if self._batch_kernel is not None:
            return self._batch_kernel.stats
        if self.cache is None:
            return {"hits": 0, "misses": 0, "entries": 0, "evictions": 0,
                    "hit_rate": 0.0}
        return self.cache.stats

    def clear_cache(self) -> None:
        """Drop all cached evaluations (no-op when caching is off)."""
        if self.cache is not None:
            self.cache.clear()
        if self._batch_kernel is not None:
            self._batch_kernel.clear()

    def adopt_kernel_state(self, other: "ScheduleEvaluator") -> bool:
        """Carry *other*'s batch-kernel queue-state caches into this one.

        Cross-window evaluator reuse (see :mod:`repro.service`): when a
        streaming trace grows append-only, a new evaluator over the
        longer trace can adopt the previous evaluator's cached queue
        states instead of starting cold — committed queue prefixes then
        hit the content-fingerprint cache immediately.  Returns whether
        a transfer happened (both evaluators must be in ``"batch"``
        mode); incompatible kernels raise
        :class:`~repro.errors.ScheduleError`.
        """
        if self._batch_kernel is None or other._batch_kernel is None:
            return False
        self._batch_kernel.adopt_state(other._batch_kernel)
        return True

    # -- population batch ----------------------------------------------------

    def evaluate_batch(
        self, assignments: IntArray, orders: IntArray
    ) -> tuple[FloatArray, FloatArray]:
        """Objectives for a whole population in one vectorized pass.

        Parameters
        ----------
        assignments, orders:
            ``(N, T)`` arrays: one chromosome per row.

        Returns
        -------
        ``(energies, utilities)`` — each ``(N,)`` float arrays.

        Implementation: rows are concatenated with machine labels offset
        by ``row × num_queues`` so one segmented pass covers every
        queue of every chromosome simultaneously.  When the evaluation
        cache is enabled, rows whose exact bytes were evaluated before
        are answered from the cache and only the genuinely new rows hit
        the kernel — bit-identical either way, because the kernel's
        per-row results do not depend on the rest of the batch.
        """
        obs = self.obs
        if not obs.enabled:
            return self._evaluate_batch_impl(assignments, orders)
        kernel = self._batch_kernel
        cache = self.cache
        hits0, misses0 = (cache.hits, cache.misses) if cache else (0, 0)
        evict0 = cache.evictions if cache else 0
        t0 = time.perf_counter()
        result = self._evaluate_batch_impl(assignments, orders)
        seconds = time.perf_counter() - t0
        rows = int(result[0].shape[0])
        metrics = obs.metrics
        if kernel is not None:
            # Batch kernel: reuse is counted per machine queue, not per
            # chromosome row, so report the kernel's own counters.
            batch = kernel.last_batch
            hits = int(batch.get("queue_hits", 0))
            misses = int(batch.get("queue_misses", 0))
            reuse_rate = float(batch.get("reuse_rate", 0.0))
            obs.record_span(
                "evaluator.batch", seconds, rows=rows, cache_hits=hits,
                cache_misses=misses, reuse_rate=reuse_rate,
                kernel=self.kernel_method,
            )
            metrics.gauge(
                "evaluator_reuse_rate",
                help="fraction of queue elements answered from cached "
                "queue/prefix state in the latest batch",
            ).set(reuse_rate)
            metrics.counter(
                "evaluator_queue_states_reused_total",
                help="queue elements covered by cached full-queue or "
                "prefix state",
            ).inc(int(batch.get("elements_reused", 0)))
        else:
            hits = (cache.hits - hits0) if cache else 0
            misses = (cache.misses - misses0) if cache else rows
            obs.record_span(
                "evaluator.batch", seconds, rows=rows, cache_hits=hits,
                cache_misses=misses,
            )
        metrics.counter(
            "evaluator_chromosomes_total",
            help="chromosome rows evaluated (cache hits included)",
        ).inc(rows)
        metrics.counter(
            "evaluator_cache_hits_total",
            help="batch rows answered from the evaluation cache",
        ).inc(hits)
        metrics.counter(
            "evaluator_cache_misses_total",
            help="batch rows that hit the segmented kernel",
        ).inc(misses)
        if cache and cache.evictions != evict0:
            metrics.counter(
                "evaluator_cache_evictions_total",
                help="cached entries dropped by capacity clears",
            ).inc(cache.evictions - evict0)
        metrics.histogram(
            "evaluator_batch_seconds",
            help="wall-clock per evaluate_batch call",
            unit="seconds",
        ).observe(seconds)
        return result

    def _evaluate_batch_impl(
        self, assignments: IntArray, orders: IntArray
    ) -> tuple[FloatArray, FloatArray]:
        """The uninstrumented batch path (see :meth:`evaluate_batch`)."""
        if self.fault_hook is not None:
            self.fault_hook()
        assignments = np.asarray(assignments, dtype=np.int64)
        orders = np.asarray(orders, dtype=np.int64)
        if assignments.ndim != 2 or assignments.shape != orders.shape:
            raise ScheduleError(
                f"batch arrays must be equal-shape 2-D; got {assignments.shape} "
                f"and {orders.shape}"
            )
        N, T = assignments.shape
        if T != self.num_tasks:
            raise ScheduleError(
                f"batch covers {T} tasks per chromosome; trace has {self.num_tasks}"
            )
        if N == 0:
            return (np.empty(0), np.empty(0))
        if int(assignments.max()) >= self.num_machines or int(assignments.min()) < 0:
            raise ScheduleError("batch references machine indices out of range")
        if self.check_feasibility:
            ok = self._feasible_rows[
                np.broadcast_to(self._row_index, (N, T)), assignments
            ]
            if not np.all(ok):
                row, col = np.argwhere(~ok)[0]
                raise ScheduleError(
                    f"chromosome {int(row)}: task {int(col)} assigned to an "
                    "infeasible machine"
                )
        if self.kernel_method == "batch":
            return self._batch_kernel.evaluate_population(assignments, orders)
        if self.kernel_method == "batch-reference":
            from repro.sim.batchkernel import batch_reference_row

            energies = np.empty(N, dtype=np.float64)
            utilities = np.empty(N, dtype=np.float64)
            for i in range(N):
                energies[i], utilities[i], _ = batch_reference_row(
                    self, assignments[i], orders[i]
                )
            return energies, utilities
        cache = self.cache
        if cache is None:
            return self._evaluate_batch_kernel(assignments, orders)

        energies = np.empty(N, dtype=np.float64)
        utilities = np.empty(N, dtype=np.float64)
        # Digest fast path: when both gene arrays fit int32 (assignments
        # always do — they are machine indices — and order keys start as
        # permutation values), hash half the bytes per row.  The int32
        # and int64 encodings have different lengths, so their digests
        # can never alias each other.
        if (
            self.num_machines <= 2**31
            and -(2**31) <= int(orders.min())
            and int(orders.max()) < 2**31
        ):
            if self._packed32 is None or self._packed32.shape[0] < N:
                self._packed32 = np.empty((N, 2 * T), dtype=np.int32)
            packed = self._packed32[:N]
            packed[:, :T] = assignments
            packed[:, T:] = orders
            keys = [
                blake2b(packed[i].data, digest_size=16).digest()
                for i in range(N)
            ]
        else:
            keys = [
                EvaluationCache.key(assignments[i], orders[i])
                for i in range(N)
            ]
        miss_rows: list[int] = []
        for i, key in enumerate(keys):  # dict probes; loop over N, not N×T
            hit = cache.get(key)
            if hit is None:
                miss_rows.append(i)
            else:
                energies[i], utilities[i] = hit
        if len(miss_rows) == N:  # nothing cached: skip the row gathers
            energies, utilities = self._evaluate_batch_kernel(
                assignments, orders
            )
            for i, key in enumerate(keys):
                cache.put(key, float(energies[i]), float(utilities[i]))
        elif miss_rows:
            miss = np.array(miss_rows, dtype=np.int64)
            miss_e, miss_u = self._evaluate_batch_kernel(
                assignments[miss], orders[miss]
            )
            energies[miss] = miss_e
            utilities[miss] = miss_u
            for j, i in enumerate(miss_rows):
                cache.put(keys[i], float(miss_e[j]), float(miss_u[j]))
        return energies, utilities

    def _evaluate_batch_kernel(
        self, assignments: IntArray, orders: IntArray
    ) -> tuple[FloatArray, FloatArray]:
        """One segmented-kernel pass over already-validated rows."""
        N, T = assignments.shape
        n = N * T
        flat_rows, arrivals, task_types, chrom_offset = self._workspace.views(
            self, N
        )
        scratch = self._scratch
        scratch.ensure(n)
        flat_assign = assignments.ravel()
        flat_order = orders.ravel()
        # (task row, machine) → flat ETC/EEC index, reused for both.
        lin = scratch.i64[2][:n]
        np.multiply(flat_rows, self.num_machines, out=lin)
        lin += flat_assign
        exec_times = np.take(self._etc_flat, lin, out=scratch.f64[7][:n])
        group = np.take(self._queue_groups, flat_assign, out=scratch.i64[3][:n])
        group += chrom_offset

        finish = self._finish_times(
            group, flat_order, arrivals, exec_times, row_block=T
        )
        np.subtract(finish, arrivals, out=finish)  # now elapsed times
        utilities = self._tuf_table.evaluate(task_types, finish).reshape(N, T)
        # exec_times (f64[7]) is dead after the kernel; reuse it for EEC.
        energies = np.take(self._eec_flat, lin, out=scratch.f64[7][:n])
        return energies.reshape(N, T).sum(axis=1), utilities.sum(axis=1)
