"""Gantt-chart rendering of simulated schedules.

Turns a :class:`~repro.sim.events.ReferenceResult` (or any
(start, finish, machine) triple set) into a text timeline, one row per
machine — the quickest way to *see* why one allocation earns more
utility than another (idle gaps before late-arriving tasks, long
queues on attractive machines, special-purpose machines monopolized by
their accelerated types).
"""

from __future__ import annotations

from typing import Optional, Sequence


from repro.errors import ScheduleError
from repro.model.system import SystemModel
from repro.sim.events import GanttEntry, ReferenceResult

__all__ = ["render_gantt", "machine_timeline"]

#: Characters cycled to distinguish adjacent tasks on one machine row.
_TASK_CHARS = "abcdefghijklmnopqrstuvwxyz0123456789"


def machine_timeline(
    gantt: Sequence[GanttEntry], machine: int
) -> list[GanttEntry]:
    """The entries of one machine, in execution order."""
    entries = [e for e in gantt if e.machine == machine]
    entries.sort(key=lambda e: e.start)
    return entries


def render_gantt(
    result: ReferenceResult,
    system: Optional[SystemModel] = None,
    width: int = 100,
    max_machines: Optional[int] = None,
) -> str:
    """Render the schedule as a fixed-width text chart.

    Each machine is a row; time flows left to right across *width*
    character cells spanning ``[0, makespan]``.  Cells show a letter
    cycling per task, ``.`` for idle-before-arrival gaps between
    tasks, and space for unused tail.  A ruler line with time marks is
    appended.

    Parameters
    ----------
    result:
        The reference-simulation output (has the Gantt entries).
    system:
        Optional; supplies machine names for row labels.
    width:
        Chart width in cells (>= 20).
    max_machines:
        Truncate to the first machines (None = all in the Gantt).
    """
    if width < 20:
        raise ScheduleError(f"gantt width must be >= 20, got {width}")
    if not result.gantt:
        raise ScheduleError("cannot render an empty schedule")
    makespan = max(e.finish for e in result.gantt)
    if makespan <= 0:
        raise ScheduleError("schedule has non-positive makespan")
    machines = sorted({e.machine for e in result.gantt})
    if max_machines is not None:
        machines = machines[:max_machines]

    def cell(t: float) -> int:
        return min(int(t / makespan * width), width - 1)

    label_width = 14
    lines: list[str] = []
    for m in machines:
        row = [" "] * width
        entries = machine_timeline(result.gantt, m)
        for i, entry in enumerate(entries):
            lo, hi = cell(entry.start), cell(entry.finish)
            ch = _TASK_CHARS[entry.task % len(_TASK_CHARS)]
            for c in range(lo, max(hi, lo + 1)):
                row[c] = ch
            if entry.idle_before > 0 and i > 0:
                gap_lo = cell(entries[i - 1].finish)
                for c in range(gap_lo, lo):
                    if row[c] == " ":
                        row[c] = "."
        if system is not None and m < system.num_machines:
            name = system.machines[m].name[: label_width - 1]
        else:
            name = f"machine {m}"
        lines.append(f"{name:<{label_width}}|{''.join(row)}|")

    # Time ruler.
    ruler = [" "] * width
    marks = 5
    legend_parts = []
    for k in range(marks):
        t = makespan * k / (marks - 1)
        c = cell(t)
        ruler[min(c, width - 1)] = "+"
        legend_parts.append(f"+={t:.0f}s")
    lines.append(f"{'time':<{label_width}}|{''.join(ruler)}|")
    lines.append(
        f"{'':<{label_width}} marks: " + "  ".join(legend_parts)
        + "  ('.' = idle awaiting arrival)"
    )
    return "\n".join(lines)
