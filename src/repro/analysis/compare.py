"""Comparing two figure runs (e.g. default scale vs paper scale).

Given two :class:`~repro.experiments.figures.FigureResult` objects —
typically the quick default-scale run and a longer rerun, or two seeds
— :func:`compare_runs` aligns them by population and reports, per
population:

* final-front hypervolume of each run against a shared reference;
* cross-run coverage (what fraction of run A's front run B dominates
  and vice versa);
* additive-epsilon distance in both directions;
* the min-energy / max-utility endpoint drift.

Used to answer "did the longer run actually change the conclusions?"
quantitatively instead of by eyeballing two plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.indicators import additive_epsilon, hypervolume
from repro.analysis.pareto_front import ParetoFront
from repro.analysis.report import format_table
from repro.errors import AnalysisError

__all__ = ["PopulationComparison", "compare_runs", "render_comparison"]


@dataclass(frozen=True, slots=True)
class PopulationComparison:
    """One population's final fronts compared across two runs."""

    label: str
    hypervolume_a: float
    hypervolume_b: float
    a_dominated_by_b: float
    b_dominated_by_a: float
    epsilon_a_to_b: float
    epsilon_b_to_a: float
    min_energy_drift: float
    max_utility_drift: float

    @property
    def b_improves(self) -> bool:
        """Whether run B's front is the better one by hypervolume."""
        return self.hypervolume_b > self.hypervolume_a


def compare_runs(run_a, run_b) -> list[PopulationComparison]:
    """Compare the final fronts of two figure runs population-wise.

    Both runs must contain the same population labels; the hypervolume
    reference is the shared worst corner so values are comparable.
    """
    labels_a = set(run_a.result.histories)
    labels_b = set(run_b.result.histories)
    common = sorted(labels_a & labels_b)
    if not common:
        raise AnalysisError("the two runs share no population labels")

    all_pts = np.vstack(
        [run.result.front(label).points
         for run in (run_a, run_b) for label in common]
    )
    ref = (float(all_pts[:, 0].max() * 1.01), float(all_pts[:, 1].min() * 0.99))

    comparisons: list[PopulationComparison] = []
    for label in common:
        fa: ParetoFront = run_a.result.front(label)
        fb: ParetoFront = run_b.result.front(label)
        comparisons.append(
            PopulationComparison(
                label=label,
                hypervolume_a=hypervolume(fa.points, ref),
                hypervolume_b=hypervolume(fb.points, ref),
                a_dominated_by_b=fa.fraction_dominated_by(fb),
                b_dominated_by_a=fb.fraction_dominated_by(fa),
                epsilon_a_to_b=additive_epsilon(fa.points, fb.points),
                epsilon_b_to_a=additive_epsilon(fb.points, fa.points),
                min_energy_drift=fb.energy_range[0] - fa.energy_range[0],
                max_utility_drift=fb.utility_range[1] - fa.utility_range[1],
            )
        )
    return comparisons


def render_comparison(
    comparisons: list[PopulationComparison],
    name_a: str = "run A",
    name_b: str = "run B",
) -> str:
    """Text table of :func:`compare_runs` output."""
    if not comparisons:
        raise AnalysisError("nothing to render")
    rows = []
    for c in comparisons:
        rows.append(
            [
                c.label,
                f"{c.hypervolume_a:.4g}",
                f"{c.hypervolume_b:.4g}",
                f"{c.a_dominated_by_b * 100:.0f}%",
                f"{c.b_dominated_by_a * 100:.0f}%",
                f"{c.min_energy_drift / 1e6:+.4f}",
                f"{c.max_utility_drift:+.1f}",
            ]
        )
    return format_table(
        [
            "population",
            f"HV {name_a}",
            f"HV {name_b}",
            f"{name_a} dominated",
            f"{name_b} dominated",
            "min-E drift (MJ)",
            "max-U drift",
        ],
        rows,
        title=f"Front comparison: {name_a} vs {name_b} (final checkpoints)",
    )
