"""Immutable Pareto-front container and cross-front comparisons.

A :class:`ParetoFront` holds mutually nondominated (energy, utility)
points sorted by energy.  Along a valid front, utility is strictly
increasing with energy — the trade-off curve of the paper's figures —
which :meth:`ParetoFront.__post_init__` enforces, catching any
dominance bug upstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.dominance import nondominated_mask
from repro.core.objectives import BiObjectiveSpace, ENERGY_UTILITY
from repro.errors import AnalysisError
from repro.types import FloatArray

__all__ = ["ParetoFront"]


@dataclass(frozen=True)
class ParetoFront:
    """Sorted, validated nondominated point set.

    Attributes
    ----------
    points:
        ``(F, 2)`` (energy, utility) pairs, sorted by energy ascending.
    label:
        Report name (e.g. the seeding population that produced it).
    """

    points: FloatArray
    label: str = "front"

    def __post_init__(self) -> None:
        pts = np.asarray(self.points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise AnalysisError(f"front points must be (F, 2); got {pts.shape}")
        if pts.shape[0] == 0:
            raise AnalysisError("a Pareto front must contain at least one point")
        order = np.lexsort((pts[:, 1], pts[:, 0]))
        pts = pts[order]
        # Drop exact duplicates.
        if pts.shape[0] > 1:
            keep = np.concatenate(([True], np.any(np.diff(pts, axis=0) != 0, axis=1)))
            pts = pts[keep]
        if not nondominated_mask(pts).all():
            raise AnalysisError(
                "points are not mutually nondominated; construct with "
                "ParetoFront.from_points to filter first"
            )
        pts = pts.copy()
        pts.setflags(write=False)
        object.__setattr__(self, "points", pts)

    @classmethod
    def from_points(cls, points: FloatArray, label: str = "front") -> "ParetoFront":
        """Filter *points* to their nondominated subset, then wrap."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise AnalysisError(f"points must be (N, 2); got {pts.shape}")
        mask = nondominated_mask(pts)
        return cls(points=pts[mask], label=label)

    # -- basic access ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of points on the front."""
        return int(self.points.shape[0])

    def __len__(self) -> int:
        return self.size

    @property
    def energies(self) -> FloatArray:
        """Energy column (ascending)."""
        return self.points[:, 0]

    @property
    def utilities(self) -> FloatArray:
        """Utility column (ascending along a valid front)."""
        return self.points[:, 1]

    @property
    def energy_range(self) -> tuple[float, float]:
        """(min, max) energy across the front."""
        return float(self.energies[0]), float(self.energies[-1])

    @property
    def utility_range(self) -> tuple[float, float]:
        """(min, max) utility across the front."""
        return float(self.utilities.min()), float(self.utilities.max())

    # -- composition ----------------------------------------------------------

    def merge(self, other: "ParetoFront", label: str | None = None) -> "ParetoFront":
        """Nondominated union of two fronts."""
        combined = np.vstack([self.points, other.points])
        return ParetoFront.from_points(
            combined, label=label or f"{self.label}+{other.label}"
        )

    # -- cross-front dominance --------------------------------------------------

    def fraction_dominated_by(
        self, other: "ParetoFront", space: BiObjectiveSpace = ENERGY_UTILITY
    ) -> float:
        """Fraction of this front's points dominated by some point of *other*.

        This is the two-set coverage measure C(other, self) of Zitzler —
        the paper's Fig. 6 claim reads "seeded populations are finding
        solutions that dominate those found by the random population",
        i.e. high ``random.fraction_dominated_by(seeded)``.
        """
        mine = space.to_minimization(self.points)  # (F, 2)
        theirs = space.to_minimization(other.points)  # (G, 2)
        le = (theirs[:, None, :] <= mine[None, :, :]).all(axis=2)
        lt = (theirs[:, None, :] < mine[None, :, :]).any(axis=2)
        dominated = (le & lt).any(axis=0)
        return float(dominated.mean())

    def dominates_front(self, other: "ParetoFront") -> bool:
        """Whether every point of *other* is dominated by this front."""
        return other.fraction_dominated_by(self) == 1.0

    # -- interpolation ------------------------------------------------------------

    def utility_at_energy(self, energy_budget: float) -> float:
        """Best achievable utility within an energy budget (step function).

        The administrator question the paper motivates: "the system
        administrator may not have energy to reach the circled
        solution" — given a budget, the achievable utility is the best
        utility among front points with energy <= budget.
        """
        mask = self.energies <= energy_budget
        if not mask.any():
            raise AnalysisError(
                f"no front point fits energy budget {energy_budget}; minimum "
                f"front energy is {float(self.energies[0])}"
            )
        return float(self.utilities[mask].max())

    def energy_for_utility(self, utility_target: float) -> float:
        """Least energy achieving at least *utility_target*."""
        mask = self.utilities >= utility_target
        if not mask.any():
            raise AnalysisError(
                f"no front point reaches utility {utility_target}; maximum "
                f"front utility is {float(self.utilities.max())}"
            )
        return float(self.energies[mask].min())
