"""Cross-algorithm indicator comparison for the MOEA portfolio.

Given each algorithm's final front over the same (system, trace), this
module scores them with the standard quality indicators — hypervolume,
IGD, additive ε, spacing, spread — against a shared reference front
(the nondominated union of all fronts), and, when an exact
contention-free baseline (:mod:`repro.exact`) is supplied, adds
distance-to-optimal columns so the evolved fronts are positioned
against a provable outer bound rather than only against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.analysis.indicators import (
    additive_epsilon,
    hypervolume,
    igd,
    spacing,
    spread,
)
from repro.analysis.report import format_table
from repro.core.dominance import nondominated_mask
from repro.core.objectives import ENERGY_UTILITY
from repro.errors import AnalysisError
from repro.exact.baselines import ExactFront, distance_to_exact
from repro.types import FloatArray

__all__ = ["AlgorithmScore", "PortfolioComparison", "compare_portfolio"]


@dataclass(frozen=True)
class AlgorithmScore:
    """Indicator values of one algorithm's front.

    ``igd`` / ``additive_epsilon`` are measured against the portfolio's
    combined reference front; ``igd_to_exact`` / ``epsilon_to_exact``
    (``None`` without an exact baseline) against the exact
    contention-free front — upper bounds on the true optimality gap.
    """

    algorithm: str
    front_size: int
    hypervolume: float
    igd: float
    additive_epsilon: float
    spacing: float
    spread: float
    igd_to_exact: Optional[float] = None
    epsilon_to_exact: Optional[float] = None


@dataclass(frozen=True)
class PortfolioComparison:
    """Scores of every algorithm plus the shared reference data."""

    scores: tuple[AlgorithmScore, ...]
    reference_front: FloatArray
    reference_point: tuple[float, float]
    exact: Optional[ExactFront] = None

    def best_by_hypervolume(self) -> AlgorithmScore:
        """The score with the largest hypervolume."""
        return max(self.scores, key=lambda s: s.hypervolume)

    def render(self) -> str:
        """Aligned text table, one row per algorithm."""
        headers = ["algorithm", "front", "hypervolume", "igd", "eps",
                   "spacing", "spread"]
        with_exact = self.exact is not None
        if with_exact:
            headers += ["igd-to-exact", "eps-to-exact"]
        rows = []
        for s in self.scores:
            row = [
                s.algorithm,
                s.front_size,
                f"{s.hypervolume:.4g}",
                f"{s.igd:.4g}",
                f"{s.additive_epsilon:.4g}",
                f"{s.spacing:.4g}",
                f"{s.spread:.4g}",
            ]
            if with_exact:
                row += [f"{s.igd_to_exact:.4g}", f"{s.epsilon_to_exact:.4g}"]
            rows.append(row)
        title = "algorithm portfolio comparison"
        if with_exact:
            title += (
                f" (exact baseline: {self.exact.size} points, "
                f"epsilon={self.exact.epsilon:g})"
            )
        return format_table(headers, rows, title=title)


def compare_portfolio(
    fronts: Mapping[str, FloatArray],
    exact: Optional[ExactFront] = None,
) -> PortfolioComparison:
    """Score each algorithm's *front* against the portfolio reference.

    Parameters
    ----------
    fronts:
        Algorithm name → ``(F, 2)`` (energy, utility) final front.
    exact:
        Optional exact contention-free baseline; adds the
        distance-to-optimal columns.

    The shared reference front is the nondominated union of all input
    fronts; the hypervolume reference point is the nadir of the union,
    padded by 1 % so extreme points contribute volume.
    """
    if not fronts:
        raise AnalysisError("portfolio comparison needs at least one front")
    stacked = np.vstack([np.asarray(f, dtype=np.float64) for f in fronts.values()])
    reference = stacked[nondominated_mask(stacked)]
    order = np.lexsort((reference[:, 1], reference[:, 0]))
    reference = reference[order]
    # Nadir in raw space: worst energy (max), worst utility (min).
    ref_point = (
        float(stacked[:, 0].max() * 1.01),
        float(stacked[:, 1].min() * 0.99),
    )
    scores = []
    for name, front in fronts.items():
        pts = np.asarray(front, dtype=np.float64)
        gap = (
            distance_to_exact(pts, exact) if exact is not None else
            {"igd": None, "additive_epsilon": None}
        )
        scores.append(
            AlgorithmScore(
                algorithm=name,
                front_size=int(pts.shape[0]),
                hypervolume=hypervolume(pts, ref_point),
                igd=igd(pts, reference),
                additive_epsilon=additive_epsilon(pts, reference),
                spacing=spacing(pts),
                spread=spread(pts, ENERGY_UTILITY),
                igd_to_exact=gap["igd"],
                epsilon_to_exact=gap["additive_epsilon"],
            )
        )
    return PortfolioComparison(
        scores=tuple(scores),
        reference_front=reference,
        reference_point=ref_point,
        exact=exact,
    )
