"""Multi-objective quality indicators.

Quantitative complements to the paper's visual front comparisons,
used by the convergence analyses and ablation benchmarks:

* :func:`hypervolume` — area dominated by a front w.r.t. a reference
  point (exact 2-D sweep); larger = better.
* :func:`spacing` — Schott's spacing: standard deviation of
  nearest-neighbour distances; smaller = more even (what crowding
  distance aims at).
* :func:`spread` — Deb's Δ: combines extent and evenness.
* :func:`additive_epsilon` — smallest uniform shift making one front
  weakly dominate another; smaller = closer.
* :func:`igd` — inverted generational distance to a reference front.

All functions take raw (energy, utility) points in the paper's space
(energy minimized, utility maximized) via a
:class:`~repro.core.objectives.BiObjectiveSpace`.
"""

from __future__ import annotations

import numpy as np

from repro.core.objectives import BiObjectiveSpace, ENERGY_UTILITY
from repro.errors import AnalysisError
from repro.types import FloatArray

__all__ = ["hypervolume", "spacing", "spread", "additive_epsilon", "igd"]


def _as_points(points: FloatArray, name: str) -> FloatArray:
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise AnalysisError(f"{name} must have shape (N, 2); got {pts.shape}")
    if pts.shape[0] == 0:
        raise AnalysisError(f"{name} must be non-empty")
    return pts


def hypervolume(
    points: FloatArray,
    reference: tuple[float, float],
    space: BiObjectiveSpace = ENERGY_UTILITY,
) -> float:
    """Exact 2-D hypervolume of *points* w.r.t. *reference*.

    The reference must be weakly worse than every point on both axes
    (e.g. ``(max energy bound, 0 utility)``); points beyond the
    reference contribute nothing.
    """
    pts = space.to_minimization(_as_points(points, "points"))
    ref = space.to_minimization(np.asarray(reference, dtype=np.float64)[None, :])[0]
    # Keep only points strictly better than the reference on both axes.
    keep = (pts < ref).all(axis=1)
    if not keep.any():
        return 0.0
    pts = pts[keep]
    # Staircase sweep in minimization space: sort by x (ties: y), keep
    # only points improving the running-best y (the nondominated
    # staircase); each step contributes width-to-next-x times
    # height-to-reference.
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]
    best_y = np.minimum.accumulate(pts[:, 1])
    prev_best = np.concatenate(([np.inf], best_y[:-1]))
    stair = pts[pts[:, 1] < prev_best]
    xs = np.concatenate([stair[:, 0], [ref[0]]])
    widths = xs[1:] - xs[:-1]
    heights = ref[1] - stair[:, 1]
    return float(np.sum(widths * heights))


def spacing(points: FloatArray) -> float:
    """Schott's spacing metric (0 for <= 2 points).

    Uses Manhattan nearest-neighbour distances in normalized objective
    space; sense-independent.
    """
    pts = _as_points(points, "points")
    n = pts.shape[0]
    if n <= 2:
        return 0.0
    span = pts.max(axis=0) - pts.min(axis=0)
    span = np.where(span > 0, span, 1.0)
    norm = pts / span
    diff = np.abs(norm[:, None, :] - norm[None, :, :]).sum(axis=2)
    np.fill_diagonal(diff, np.inf)
    d = diff.min(axis=1)
    return float(d.std())


def spread(points: FloatArray, space: BiObjectiveSpace = ENERGY_UTILITY) -> float:
    """Deb's Δ spread indicator (lower = more even, well-extended).

    Δ = (Σ|dᵢ − d̄|) / (n·d̄) over consecutive gaps of the
    energy-sorted front; degenerate fronts (<= 2 points or zero mean
    gap) return 0.
    """
    pts = space.to_minimization(_as_points(points, "points"))
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]
    if pts.shape[0] <= 2:
        return 0.0
    gaps = np.linalg.norm(np.diff(pts, axis=0), axis=1)
    mean = gaps.mean()
    if mean == 0:
        return 0.0
    return float(np.abs(gaps - mean).sum() / (gaps.size * mean))


def additive_epsilon(
    approx: FloatArray,
    reference: FloatArray,
    space: BiObjectiveSpace = ENERGY_UTILITY,
) -> float:
    """Additive ε-indicator: smallest ε such that shifting *approx* by ε
    (toward worse) still leaves every reference point weakly dominated.

    0 means *approx* weakly dominates the whole reference front;
    positive values measure how far it falls short.
    """
    a = space.to_minimization(_as_points(approx, "approx"))
    r = space.to_minimization(_as_points(reference, "reference"))
    # For each reference point, the best (smallest) max-axis shortfall
    # over approx points; epsilon is the worst over reference points.
    shortfall = (a[:, None, :] - r[None, :, :]).max(axis=2)  # (A, R)
    return float(shortfall.min(axis=0).max())


def igd(
    approx: FloatArray,
    reference: FloatArray,
    space: BiObjectiveSpace = ENERGY_UTILITY,
) -> float:
    """Inverted generational distance: mean Euclidean distance from each
    reference point to its nearest approx point (normalized axes).

    Normalization uses the reference front's ranges so energy (~1e6 J)
    does not drown utility (~1e2).
    """
    a = space.to_minimization(_as_points(approx, "approx"))
    r = space.to_minimization(_as_points(reference, "reference"))
    span = r.max(axis=0) - r.min(axis=0)
    span = np.where(span > 0, span, 1.0)
    a_n = a / span
    r_n = r / span
    d = np.sqrt(((r_n[:, None, :] - a_n[None, :, :]) ** 2).sum(axis=2))
    return float(d.min(axis=1).mean())
