"""Empirical attainment functions for repeated stochastic runs.

A single NSGA-II run's front is a random variable; the paper draws one
run per population, but statistically sound comparisons aggregate
repetitions.  The **k-of-R empirical attainment surface** (Fonseca &
Fleming) is the boundary of the region attained (weakly dominated) by
at least *k* of *R* runs:

* k = 1 — the *best* surface (union of all fronts, filtered);
* k = R — the *worst* surface (points every run attains);
* k = ⌈R/2⌉ — the *median* surface, the robust "typical outcome".

For two objectives the surface has a closed construction: for every
candidate utility level ``u`` (the union of all runs' utility
coordinates), each run attains ``u`` at its minimum energy among points
with utility ≥ u; the k-th smallest of those energies is the surface's
energy at ``u``.  The resulting point set is then Pareto-filtered.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.pareto_front import ParetoFront
from repro.errors import AnalysisError
from repro.types import FloatArray

__all__ = ["attainment_surface", "attainment_summary"]


def _min_energy_at_or_above(front: FloatArray, utilities: FloatArray) -> FloatArray:
    """For each utility level, a run's min energy achieving >= that level.

    *front* is ``(F, 2)`` sorted by energy ascending (so utility
    ascending along a valid front).  Returns ``inf`` where the run
    never reaches the level.
    """
    pts = np.asarray(front, dtype=np.float64)
    order = np.argsort(pts[:, 0], kind="stable")
    pts = pts[order]
    # Suffix maximum of utility: best utility reachable at >= this index.
    # Along a Pareto front utility rises with energy, so min energy for
    # utility >= u is the first point whose utility >= u.
    util_sorted = pts[:, 1]
    # For robustness against non-front inputs, enforce the running max.
    running = np.maximum.accumulate(util_sorted)
    idx = np.searchsorted(running, utilities, side="left")
    energies = np.full(utilities.shape, np.inf)
    ok = idx < pts.shape[0]
    energies[ok] = pts[idx[ok], 0]
    return energies


def attainment_surface(
    fronts: Sequence[FloatArray], k: int, label: str | None = None
) -> ParetoFront:
    """The k-of-R empirical attainment surface of *fronts*.

    Parameters
    ----------
    fronts:
        R arrays of ``(F_r, 2)`` (energy, utility) points — one per
        repetition (need not be mutually nondominated).
    k:
        Attainment count, ``1 <= k <= R``.
    label:
        Name for the returned front (default ``"k/R-attainment"``).
    """
    R = len(fronts)
    if R == 0:
        raise AnalysisError("at least one front is required")
    if not (1 <= k <= R):
        raise AnalysisError(f"k must be in [1, {R}]; got {k}")
    arrays = [np.asarray(f, dtype=np.float64) for f in fronts]
    for i, arr in enumerate(arrays):
        if arr.ndim != 2 or arr.shape[1] != 2 or arr.shape[0] == 0:
            raise AnalysisError(f"front {i} must be non-empty (F, 2)")

    levels = np.unique(np.concatenate([arr[:, 1] for arr in arrays]))
    per_run = np.stack(
        [_min_energy_at_or_above(arr, levels) for arr in arrays]
    )  # (R, L)
    kth = np.sort(per_run, axis=0)[k - 1]  # k-th smallest energy per level
    finite = np.isfinite(kth)
    if not finite.any():
        raise AnalysisError(
            f"no utility level is attained by {k} of {R} runs"
        )
    points = np.column_stack([kth[finite], levels[finite]])
    return ParetoFront.from_points(
        points, label=label or f"{k}/{R}-attainment"
    )


def attainment_summary(
    fronts: Sequence[FloatArray],
) -> dict[str, ParetoFront]:
    """Best / median / worst attainment surfaces of *fronts*."""
    R = len(fronts)
    if R == 0:
        raise AnalysisError("at least one front is required")
    median_k = (R + 1) // 2
    return {
        "best": attainment_surface(fronts, 1, label="best"),
        "median": attainment_surface(fronts, median_k, label="median"),
        "worst": attainment_surface(fronts, R, label="worst"),
    }
