"""Maximum utility-per-energy region (paper Figure 5).

The paper locates the front region "where the system is operating as
efficiently as possible": plot utility-per-energy against utility
(subplot B) and against energy (subplot C); the peaks of both curves
identify the utility and energy values of the most efficient
solutions, which translate back onto the Pareto front (subplot A).

:func:`max_utility_per_energy_region` computes the peak and the
surrounding region (points whose U/E is within a tolerance of the
peak), plus the two marginal curves for plotting/reporting.  It also
reports the diminishing-returns structure the paper describes: to the
left of the region small energy increments buy large utility; to the
right large energy increments buy little utility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.pareto_front import ParetoFront
from repro.errors import AnalysisError
from repro.types import FloatArray

__all__ = ["EfficiencyRegion", "max_utility_per_energy_region", "marginal_utility_per_energy", "knee_point"]


@dataclass(frozen=True)
class EfficiencyRegion:
    """The most-efficient region of a Pareto front.

    Attributes
    ----------
    peak_index:
        Index (into the front's sorted points) of the max-U/E point.
    peak_energy, peak_utility:
        Coordinates of that point — the solid/dashed guide lines of
        Figure 5 B and C.
    peak_ratio:
        Its utility-per-energy value.
    region_indices:
        Indices of the contiguous region whose ratio is within
        ``tolerance`` of the peak — the circled region of Figures 3-6.
    ratios:
        ``(F,)`` utility-per-energy of every front point (the y-values
        of Figure 5's B and C subplots).
    """

    peak_index: int
    peak_energy: float
    peak_utility: float
    peak_ratio: float
    region_indices: np.ndarray
    ratios: FloatArray

    @property
    def region_size(self) -> int:
        """Number of points in the efficient region."""
        return int(self.region_indices.shape[0])


def max_utility_per_energy_region(
    front: ParetoFront, tolerance: float = 0.05
) -> EfficiencyRegion:
    """Locate the maximum utility-per-energy region of *front*.

    Parameters
    ----------
    front:
        A Pareto front with strictly positive energies.
    tolerance:
        Points whose U/E is within ``(1 − tolerance) × peak`` belong to
        the region.

    Returns
    -------
    :class:`EfficiencyRegion`
    """
    if not (0.0 <= tolerance < 1.0):
        raise AnalysisError(f"tolerance must be in [0, 1); got {tolerance}")
    energies = front.energies
    utilities = front.utilities
    if np.any(energies <= 0):
        raise AnalysisError("front energies must be strictly positive")
    ratios = utilities / energies
    peak = int(np.argmax(ratios))
    threshold = ratios[peak] * (1.0 - tolerance)
    in_region = ratios >= threshold
    # Keep the contiguous stretch containing the peak (the paper circles
    # one region; isolated distant points with similar ratio are noise).
    left = peak
    while left > 0 and in_region[left - 1]:
        left -= 1
    right = peak
    while right < front.size - 1 and in_region[right + 1]:
        right += 1
    return EfficiencyRegion(
        peak_index=peak,
        peak_energy=float(energies[peak]),
        peak_utility=float(utilities[peak]),
        peak_ratio=float(ratios[peak]),
        region_indices=np.arange(left, right + 1),
        ratios=ratios,
    )


def marginal_utility_per_energy(front: ParetoFront) -> FloatArray:
    """Discrete marginal gain ``ΔU/ΔE`` between adjacent front points.

    Large values left of the efficient region, small values right of it
    — the paper's "relatively larger amounts of utility for relatively
    small increases in energy" observation, made quantitative.  Length
    ``F − 1``; entries are ``inf`` where adjacent energies coincide.
    """
    e = front.energies
    u = front.utilities
    de = np.diff(e)
    du = np.diff(u)
    with np.errstate(divide="ignore", invalid="ignore"):
        marginal = np.where(de > 0, du / de, np.inf)
    return marginal


def knee_point(front: ParetoFront) -> int:
    """Index of the front's knee by maximum distance-to-chord.

    A geometry-based complement to the paper's utility-per-energy
    peak: normalize both axes to [0, 1], draw the chord between the
    front's two extreme points, and return the point farthest above
    it.  On strongly convex fronts the knee and the max-U/E point
    coincide or sit adjacent; on fronts whose minimum energy is far
    from zero they can differ (U/E rewards absolute ratio, the knee
    rewards marginal trade-off), which is why both are offered.
    """
    pts = front.points
    n = pts.shape[0]
    if n == 1:
        return 0
    span = pts.max(axis=0) - pts.min(axis=0)
    span = np.where(span > 0, span, 1.0)
    norm = (pts - pts.min(axis=0)) / span
    a, b = norm[0], norm[-1]
    chord = b - a
    length = np.linalg.norm(chord)
    if length == 0:
        return 0
    # Signed perpendicular distance of each point from the chord;
    # positive = above (toward better utility per energy).
    rel = norm - a
    cross = chord[0] * rel[:, 1] - chord[1] * rel[:, 0]
    return int(np.argmax(cross / length))
