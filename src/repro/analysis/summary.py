"""Comprehensive text report for a seeded-population experiment.

Combines everything the analysis layer knows into one administrator-
facing document: per-population front tables, seed objectives, the
max utility-per-energy and knee operating points, convergence
indicators across checkpoints, and cross-population dominance — the
prose the paper's Section VI writes, generated from the data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.convergence import convergence_series
from repro.analysis.efficiency import knee_point, max_utility_per_energy_region
from repro.analysis.report import format_table
from repro.errors import AnalysisError

__all__ = ["experiment_report"]


def _fmt_mj(j: float) -> str:
    return f"{j / 1e6:.4f}"


def experiment_report(result, title: Optional[str] = None) -> str:
    """Render a full report for a
    :class:`~repro.experiments.runner.SeededPopulationResult`.

    Sections: configuration, seed objectives, final fronts, efficient
    operating points, convergence, cross-population dominance.
    """
    histories = result.histories
    if not histories:
        raise AnalysisError("experiment has no populations")
    blocks: list[str] = []
    cfg = result.config
    blocks.append(title or f"Experiment report — {result.dataset_name}")
    blocks.append(
        f"populations: {', '.join(histories)} | N={cfg.population_size} | "
        f"mutation p={cfg.mutation_probability} | checkpoints "
        f"{list(cfg.checkpoints)} | seed {cfg.base_seed}"
    )

    # Seed objectives.
    if result.seed_objectives:
        rows = [
            [name, _fmt_mj(e), f"{u:.1f}", f"{u / e * 1e6:.2f}"]
            for name, (e, u) in sorted(result.seed_objectives.items())
        ]
        blocks.append("")
        blocks.append(
            format_table(
                ["heuristic seed", "energy (MJ)", "utility", "utility/MJ"],
                rows,
                title="Greedy seed objectives",
            )
        )

    # Final fronts + operating points.
    rows = []
    for label in histories:
        front = result.front(label)
        region = max_utility_per_energy_region(front)
        knee = knee_point(front)
        rows.append(
            [
                label,
                front.size,
                f"{_fmt_mj(front.energy_range[0])}-{_fmt_mj(front.energy_range[1])}",
                f"{front.utility_range[0]:.1f}-{front.utility_range[1]:.1f}",
                f"{_fmt_mj(region.peak_energy)} MJ / {region.peak_utility:.1f} U",
                f"{_fmt_mj(front.points[knee, 0])} MJ / {front.points[knee, 1]:.1f} U",
            ]
        )
    blocks.append("")
    blocks.append(
        format_table(
            ["population", "front", "energy (MJ)", "utility",
             "max-U/E point", "knee point"],
            rows,
            title="Final Pareto fronts and operating points",
        )
    )

    # Convergence indicators.
    series = convergence_series(list(histories.values()))
    rows = [
        [
            p.label,
            p.generation,
            p.front_size,
            f"{p.hypervolume:.4g}",
            f"{p.igd_to_reference:.4g}",
            _fmt_mj(p.min_energy),
            f"{p.max_utility:.1f}",
        ]
        for p in series
    ]
    blocks.append("")
    blocks.append(
        format_table(
            ["population", "gen", "front", "hypervolume", "IGD->ref",
             "min E (MJ)", "max U"],
            rows,
            title="Convergence across checkpoints",
        )
    )

    # Cross-population dominance at the final checkpoint.
    labels = list(histories)
    rows = []
    for a in labels:
        fa = result.front(a)
        row = [a]
        for b in labels:
            if a == b:
                row.append("-")
            else:
                frac = fa.fraction_dominated_by(result.front(b))
                row.append(f"{frac * 100:.0f}%")
        rows.append(row)
    blocks.append("")
    blocks.append(
        format_table(
            ["% of row's front dominated by ->", *labels],
            rows,
            title="Cross-population dominance (final fronts)",
        )
    )

    # Combined best-known front.
    combined = result.combined_front()
    region = max_utility_per_energy_region(combined)
    blocks.append("")
    blocks.append(
        f"Best-known front: {combined.size} points, "
        f"{_fmt_mj(combined.energy_range[0])}-"
        f"{_fmt_mj(combined.energy_range[1])} MJ; most efficient operation "
        f"at {_fmt_mj(region.peak_energy)} MJ earning "
        f"{region.peak_utility:.1f} utility "
        f"({region.peak_ratio * 1e6:.2f} utility/MJ)."
    )
    return "\n".join(blocks)
