"""Plot-data export: CSV series and dependency-free SVG scatter plots.

The benchmark harness regenerates the paper's figures as data; this
module turns that data into artifacts:

* :func:`front_to_csv` / :func:`figure_to_csv` — tidy CSV (one row per
  point, columns ``population, generation, energy_joules, utility``)
  for any external plotting tool;
* :func:`render_svg_scatter` — a self-contained SVG scatter plot
  (axes, ticks, legend, per-series markers) written with the standard
  library only, so fronts can be *looked at* without matplotlib;
* :func:`figure_to_svg` — one SVG per checkpoint subplot of a
  :class:`~repro.experiments.figures.FigureResult`, mirroring the
  paper's 4-subplot figures.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence, Union

import numpy as np

from repro.analysis.pareto_front import ParetoFront
from repro.errors import AnalysisError
from repro.types import FloatArray

__all__ = [
    "front_to_csv",
    "figure_to_csv",
    "render_svg_scatter",
    "figure_to_svg",
]

#: Marker colors per series slot (paper-style distinct markers).
_COLORS = (
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f",
)
_SHAPES = ("circle", "square", "diamond", "triangle", "star",
           "circle", "square", "diamond")


def front_to_csv(front: ParetoFront, path: Union[str, Path]) -> None:
    """Write one front as tidy CSV."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["population", "energy_joules", "utility"])
        for e, u in front.points:
            writer.writerow([front.label, repr(float(e)), repr(float(u))])


def figure_to_csv(figure_result, path: Union[str, Path]) -> None:
    """Write every (population, checkpoint) front of a figure as tidy CSV."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["population", "generation", "energy_joules", "utility"])
        for label, history in figure_result.result.histories.items():
            for snap in history.snapshots:
                for e, u in snap.front_points:
                    writer.writerow(
                        [label, snap.generation, repr(float(e)), repr(float(u))]
                    )


def _ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round-ish tick positions covering [lo, hi]."""
    if hi <= lo:
        return [lo]
    span = hi - lo
    raw = span / max(n - 1, 1)
    magnitude = 10 ** np.floor(np.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = mult * magnitude
        if span / step <= n:
            break
    start = np.ceil(lo / step) * step
    return [float(v) for v in np.arange(start, hi + step * 0.5, step)]


def _marker_svg(shape: str, x: float, y: float, size: float, color: str) -> str:
    """One marker as an SVG element."""
    s = size
    if shape == "circle":
        return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{s:.1f}" fill="{color}"/>'
    if shape == "square":
        return (
            f'<rect x="{x - s:.1f}" y="{y - s:.1f}" width="{2 * s:.1f}" '
            f'height="{2 * s:.1f}" fill="{color}"/>'
        )
    if shape == "diamond":
        pts = f"{x},{y - 1.4 * s} {x + 1.4 * s},{y} {x},{y + 1.4 * s} {x - 1.4 * s},{y}"
        return f'<polygon points="{pts}" fill="{color}"/>'
    if shape == "triangle":
        pts = f"{x},{y - 1.3 * s} {x + 1.3 * s},{y + 1.3 * s} {x - 1.3 * s},{y + 1.3 * s}"
        return f'<polygon points="{pts}" fill="{color}"/>'
    if shape == "star":
        # Four-point star (two overlapping rotated squares kept simple).
        pts = (
            f"{x},{y - 1.6 * s} {x + 0.4 * s},{y - 0.4 * s} {x + 1.6 * s},{y} "
            f"{x + 0.4 * s},{y + 0.4 * s} {x},{y + 1.6 * s} {x - 0.4 * s},{y + 0.4 * s} "
            f"{x - 1.6 * s},{y} {x - 0.4 * s},{y - 0.4 * s}"
        )
        return f'<polygon points="{pts}" fill="{color}"/>'
    raise AnalysisError(f"unknown marker shape {shape!r}")


def render_svg_scatter(
    series: Mapping[str, FloatArray],
    title: str = "",
    xlabel: str = "energy consumed (MJ)",
    ylabel: str = "utility earned",
    width: int = 640,
    height: int = 440,
    x_scale: float = 1.0e6,
) -> str:
    """Render named (energy, utility) point sets as a standalone SVG.

    Parameters
    ----------
    series:
        Label -> ``(N, 2)`` raw (energy, utility) arrays.
    x_scale:
        Divisor applied to x values for display (1e6 = joules -> MJ,
        matching the paper's axes).
    """
    if not series:
        raise AnalysisError("render_svg_scatter requires at least one series")
    margin_l, margin_r, margin_t, margin_b = 70, 20, 40, 60
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    if plot_w <= 10 or plot_h <= 10:
        raise AnalysisError("SVG dimensions too small")

    arrays = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}
    for k, arr in arrays.items():
        if arr.ndim != 2 or arr.shape[1] != 2 or arr.shape[0] == 0:
            raise AnalysisError(f"series {k!r} must be non-empty (N, 2)")
    all_pts = np.vstack(list(arrays.values()))
    x_lo, x_hi = all_pts[:, 0].min() / x_scale, all_pts[:, 0].max() / x_scale
    y_lo, y_hi = all_pts[:, 1].min(), all_pts[:, 1].max()
    # Pad degenerate ranges.
    if x_hi <= x_lo:
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    if y_hi <= y_lo:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
    x_pad = (x_hi - x_lo) * 0.05
    y_pad = (y_hi - y_lo) * 0.05
    x_lo, x_hi = x_lo - x_pad, x_hi + x_pad
    y_lo, y_hi = y_lo - y_pad, y_hi + y_pad

    def sx(x: float) -> float:
        return margin_l + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return margin_t + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="24" text-anchor="middle" '
            f'font-family="sans-serif" font-size="15">{title}</text>'
        )
    # Ticks and grid.
    for tx in _ticks(x_lo, x_hi):
        px = sx(tx)
        parts.append(
            f'<line x1="{px:.1f}" y1="{margin_t}" x2="{px:.1f}" '
            f'y2="{margin_t + plot_h}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{px:.1f}" y="{margin_t + plot_h + 18}" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="11">{tx:g}</text>'
        )
    for ty in _ticks(y_lo, y_hi):
        py = sy(ty)
        parts.append(
            f'<line x1="{margin_l}" y1="{py:.1f}" x2="{margin_l + plot_w}" '
            f'y2="{py:.1f}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{margin_l - 8}" y="{py + 4:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="11">{ty:g}</text>'
        )
    # Axis labels.
    parts.append(
        f'<text x="{margin_l + plot_w / 2:.0f}" y="{height - 16}" '
        f'text-anchor="middle" font-family="sans-serif" '
        f'font-size="13">{xlabel}</text>'
    )
    parts.append(
        f'<text x="18" y="{margin_t + plot_h / 2:.0f}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="13" '
        f'transform="rotate(-90 18 {margin_t + plot_h / 2:.0f})">{ylabel}</text>'
    )
    # Series markers + legend.
    legend_y = margin_t + 10
    for i, (label, arr) in enumerate(arrays.items()):
        color = _COLORS[i % len(_COLORS)]
        shape = _SHAPES[i % len(_SHAPES)]
        for e, u in arr:
            parts.append(_marker_svg(shape, sx(e / x_scale), sy(u), 3.0, color))
        lx = margin_l + plot_w - 150
        parts.append(_marker_svg(shape, lx, legend_y, 3.5, color))
        parts.append(
            f'<text x="{lx + 10}" y="{legend_y + 4}" '
            f'font-family="sans-serif" font-size="11">{label}</text>'
        )
        legend_y += 16
    parts.append("</svg>")
    return "\n".join(parts)


def figure_to_svg(
    figure_result, directory: Union[str, Path]
) -> list[Path]:
    """Write one SVG per checkpoint subplot of a figure result.

    Returns the written paths (``<name>_subplot<i>.svg``).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for i, (gen, paper_gen) in enumerate(
        zip(figure_result.checkpoints, figure_result.paper_checkpoints)
    ):
        fronts = figure_result.subplot(i)
        svg = render_svg_scatter(
            {label: front.points for label, front in fronts.items()},
            title=(
                f"{figure_result.name}: through {gen} generations "
                f"(paper: {paper_gen:,})"
            ),
        )
        path = directory / f"{figure_result.name}_subplot{i + 1}.svg"
        path.write_text(svg)
        written.append(path)
    return written
