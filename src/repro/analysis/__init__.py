"""Pareto-front analysis (paper Section VI, Figures 3-6).

* :mod:`repro.analysis.pareto_front` — immutable front container,
  merging, and cross-front dominance comparisons (the Fig. 6 claim
  "seeded populations find solutions that dominate those found by the
  random population" is computed here).
* :mod:`repro.analysis.efficiency` — the Figure 5 method for locating
  the maximum utility-per-energy region of a front.
* :mod:`repro.analysis.indicators` — hypervolume, spacing, spread,
  additive epsilon, IGD.
* :mod:`repro.analysis.convergence` — indicator series across
  checkpoint generations.
* :mod:`repro.analysis.portfolio` — cross-algorithm indicator
  comparison with optional distance-to-optimal columns against the
  exact baselines of :mod:`repro.exact`.
* :mod:`repro.analysis.report` — ASCII tables and scatter plots used
  by the CLI, examples, and benchmark output.
"""

from repro.analysis.attainment import attainment_summary, attainment_surface
from repro.analysis.compare import compare_runs, render_comparison
from repro.analysis.efficiency import EfficiencyRegion, max_utility_per_energy_region
from repro.analysis.export import (
    figure_to_csv,
    figure_to_svg,
    front_to_csv,
    render_svg_scatter,
)
from repro.analysis.convergence import convergence_series, dominance_fraction
from repro.analysis.indicators import (
    additive_epsilon,
    hypervolume,
    igd,
    spacing,
    spread,
)
from repro.analysis.pareto_front import ParetoFront
from repro.analysis.portfolio import (
    AlgorithmScore,
    PortfolioComparison,
    compare_portfolio,
)
from repro.analysis.summary import experiment_report

__all__ = [
    "ParetoFront",
    "EfficiencyRegion",
    "max_utility_per_energy_region",
    "hypervolume",
    "spacing",
    "spread",
    "additive_epsilon",
    "igd",
    "convergence_series",
    "dominance_fraction",
    "attainment_surface",
    "attainment_summary",
    "front_to_csv",
    "figure_to_csv",
    "render_svg_scatter",
    "figure_to_svg",
    "experiment_report",
    "compare_runs",
    "render_comparison",
    "AlgorithmScore",
    "PortfolioComparison",
    "compare_portfolio",
]
