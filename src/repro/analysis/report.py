"""Plain-text rendering of fronts and experiment results.

The benchmark harness regenerates the paper's figures as *data*; this
module renders that data for terminals and log files: aligned tables,
and an ASCII scatter plot that makes the Pareto-front shapes (and the
circled efficient region) visible without matplotlib.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.analysis.efficiency import max_utility_per_energy_region
from repro.analysis.pareto_front import ParetoFront
from repro.errors import AnalysisError
from repro.types import FloatArray

__all__ = ["format_table", "format_front", "ascii_scatter", "format_front_summary"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_front(front: ParetoFront, max_rows: int = 20) -> str:
    """Table of a front's points (downsampled evenly when long)."""
    pts = front.points
    n = pts.shape[0]
    if n > max_rows:
        idx = np.unique(np.linspace(0, n - 1, max_rows).astype(int))
    else:
        idx = np.arange(n)
    rows = [
        [i, f"{pts[i, 0] / 1e6:.4f}", f"{pts[i, 1]:.2f}", f"{pts[i, 1] / pts[i, 0] * 1e6:.3f}"]
        for i in idx
    ]
    return format_table(
        ["#", "energy (MJ)", "utility", "utility/MJ"],
        rows,
        title=f"Pareto front '{front.label}' ({n} points)",
    )


def format_front_summary(fronts: Mapping[str, ParetoFront]) -> str:
    """One-line-per-front comparison table (the per-subplot caption data)."""
    rows = []
    for name, front in fronts.items():
        region = max_utility_per_energy_region(front)
        e_lo, e_hi = front.energy_range
        u_lo, u_hi = front.utility_range
        rows.append(
            [
                name,
                front.size,
                f"{e_lo / 1e6:.3f}-{e_hi / 1e6:.3f}",
                f"{u_lo:.1f}-{u_hi:.1f}",
                f"{region.peak_energy / 1e6:.3f}",
                f"{region.peak_utility:.1f}",
            ]
        )
    return format_table(
        ["population", "front", "energy MJ", "utility", "peak-U/E @ MJ", "@ utility"],
        rows,
    )


def ascii_scatter(
    series: Mapping[str, FloatArray],
    width: int = 72,
    height: int = 20,
    xlabel: str = "energy (MJ)",
    ylabel: str = "utility",
    x_scale: float = 1e6,
    markers: str = "o*x+#@%&",
) -> str:
    """ASCII scatter plot of several (energy, utility) point sets.

    Each named series gets one marker character (legend appended).
    Overlapping cells show the later series' marker.
    """
    if not series:
        raise AnalysisError("ascii_scatter requires at least one series")
    if width < 16 or height < 8:
        raise AnalysisError("plot must be at least 16x8 characters")
    all_pts = np.vstack([np.asarray(p, dtype=np.float64) for p in series.values()])
    x_min, x_max = all_pts[:, 0].min(), all_pts[:, 0].max()
    y_min, y_max = all_pts[:, 1].min(), all_pts[:, 1].max()
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for k, (name, pts) in enumerate(series.items()):
        marker = markers[k % len(markers)]
        legend.append(f"{marker} = {name}")
        pts = np.asarray(pts, dtype=np.float64)
        cols = ((pts[:, 0] - x_min) / x_span * (width - 1)).round().astype(int)
        rows = ((pts[:, 1] - y_min) / y_span * (height - 1)).round().astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker

    lines = [f"{ylabel} ({y_min:.1f} .. {y_max:.1f})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(
        f" {xlabel}: {x_min / x_scale:.3f} .. {x_max / x_scale:.3f}   "
        + "   ".join(legend)
    )
    return "\n".join(lines)
