"""Convergence analysis across checkpoint generations.

Turns the :class:`~repro.core.nsga2.RunHistory` snapshots of one or
more seeded populations into indicator time series — how each
population's front grows toward the combined best-known front as
generations accumulate (the across-subplot story of Figures 3, 4, 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.indicators import hypervolume, igd
from repro.analysis.pareto_front import ParetoFront
from repro.core.nsga2 import RunHistory
from repro.errors import AnalysisError
from repro.types import FloatArray

__all__ = ["ConvergencePoint", "convergence_series", "dominance_fraction", "reference_front"]


@dataclass(frozen=True, slots=True)
class ConvergencePoint:
    """Indicator values of one population at one checkpoint."""

    label: str
    generation: int
    front_size: int
    hypervolume: float
    igd_to_reference: float
    min_energy: float
    max_utility: float


def reference_front(histories: Sequence[RunHistory]) -> ParetoFront:
    """Nondominated union of every snapshot front of every history.

    The best-known front — the convergence target all populations are
    measured against.
    """
    if not histories:
        raise AnalysisError("at least one run history is required")
    all_points = np.vstack(
        [snap.front_points for h in histories for snap in h.snapshots]
    )
    return ParetoFront.from_points(all_points, label="reference")


def convergence_series(
    histories: Sequence[RunHistory],
    reference: ParetoFront | None = None,
) -> list[ConvergencePoint]:
    """Indicator series for every (history, checkpoint) pair.

    The hypervolume reference point is the worst (energy, utility)
    corner over all snapshots, inflated 1% so boundary points count.
    """
    if not histories:
        raise AnalysisError("at least one run history is required")
    ref_front = reference if reference is not None else reference_front(histories)
    all_points = np.vstack(
        [snap.front_points for h in histories for snap in h.snapshots]
    )
    ref_point = (
        float(all_points[:, 0].max() * 1.01),
        float(all_points[:, 1].min() * 0.99),
    )
    series: list[ConvergencePoint] = []
    for history in histories:
        for snap in history.snapshots:
            series.append(
                ConvergencePoint(
                    label=history.label,
                    generation=snap.generation,
                    front_size=snap.front_size,
                    hypervolume=hypervolume(snap.front_points, ref_point),
                    igd_to_reference=igd(snap.front_points, ref_front.points),
                    min_energy=float(snap.front_points[:, 0].min()),
                    max_utility=float(snap.front_points[:, 1].max()),
                )
            )
    return series


def dominance_fraction(
    target: FloatArray, by: FloatArray
) -> float:
    """Fraction of *target* points dominated by some point of *by*.

    Convenience wrapper over
    :meth:`~repro.analysis.pareto_front.ParetoFront.fraction_dominated_by`
    for raw snapshot arrays (the Fig. 6 seeded-vs-random comparison).
    """
    target_front = ParetoFront.from_points(np.asarray(target, dtype=np.float64))
    by_front = ParetoFront.from_points(np.asarray(by, dtype=np.float64))
    return target_front.fraction_dominated_by(by_front)
