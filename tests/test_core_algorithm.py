"""Tests of the pluggable ``Algorithm`` API and its compatibility story.

Acceptance gates of the portfolio redesign:

* the refactored NSGA-II produces **bit-identical** fronts to the
  pre-refactor engine on the Figure 3 scenario (golden captured from
  the pre-refactor code at ``tests/data/golden_figure3_fronts.json``);
* pre-refactor checkpoints still resume, bit-identically
  (``tests/data/golden_nsga2.checkpoint.json``);
* steady-state is the same composition with ``offspring_size=1``, and
  ``offspring_size=N`` reproduces the generational run exactly;
* the registry resolves names and rejects unknown ones through
  :class:`~repro.errors.AlgorithmLookupError`;
* the old ``NSGA2Config`` entry point survives as a deprecation shim.
"""

import json
import shutil
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.core.algorithm import AlgorithmConfig, EvolutionaryAlgorithm
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.core.operators import OperatorConfig
from repro.core.registry import ALGORITHMS, available_algorithms, make_algorithm
from repro.errors import AlgorithmLookupError, OptimizationError
from repro.sim.evaluator import ScheduleEvaluator

DATA = Path(__file__).parent / "data"


# -- golden bit-identity -------------------------------------------------------


class TestGoldenFigure3:
    def test_fronts_bit_identical_to_pre_refactor(self):
        """The composed NSGA-II replays the pre-refactor Figure 3 runs
        exactly: every population's front at every checkpoint matches
        the golden capture to the last bit."""
        from repro.experiments.figures import figure3

        golden = json.loads((DATA / "golden_figure3_fronts.json").read_text())
        # The golden capture predates the batch-kernel default; its
        # fronts are bit-exact under the "fast" kernel only.
        res = figure3(checkpoints=(1, 2, 5), population_size=16,
                      base_seed=2013, kernel_method="fast")
        for label, by_gen in golden["fronts"].items():
            for gen, points in by_gen.items():
                got = res.result.front(label, int(gen)).points
                np.testing.assert_array_equal(
                    got, np.asarray(points, dtype=np.float64),
                    err_msg=f"{label} generation {gen}",
                )


class TestGoldenCheckpointResume:
    def test_pre_refactor_checkpoint_resumes_bit_identically(self, tmp_path):
        """A checkpoint written by the pre-refactor engine at
        generation 3 resumes under the new API and finishes with the
        exact final front of the pre-refactor uninterrupted run."""
        from repro.experiments.datasets import dataset1

        golden = json.loads((DATA / "golden_nsga2_resume.json").read_text())
        shutil.copy(DATA / "golden_nsga2.checkpoint.json",
                    tmp_path / "golden.checkpoint.json")
        bundle = dataset1(2013)
        # Pinned to the kernel the golden checkpoint was captured
        # under (pre-batch-default); batch differs in last float bits.
        evaluator = ScheduleEvaluator(bundle.system, bundle.trace,
                                      check_feasibility=False,
                                      kernel_method="fast")
        ga = NSGA2(
            evaluator,
            AlgorithmConfig(population_size=12, mutation_probability=0.25),
            rng=2013,
            label="golden",
        )
        history = ga.run(6, checkpoints=[3, 6],
                         checkpoint_dir=str(tmp_path), resume=True)
        np.testing.assert_array_equal(
            history.final.front_points,
            np.asarray(golden["final_front"], dtype=np.float64),
        )


# -- steady-state composition --------------------------------------------------


class TestOffspringSize:
    def test_full_offspring_size_matches_generational(self, small_evaluator,
                                                      small_system,
                                                      small_trace):
        """``offspring_size=N`` (N even) draws the same tournaments in
        the same order as the legacy generational path, so the runs are
        bit-identical."""
        def run(offspring_size):
            ev = ScheduleEvaluator(small_system, small_trace,
                                   check_feasibility=False)
            ga = NSGA2(
                ev,
                AlgorithmConfig(population_size=20,
                                offspring_size=offspring_size,
                                mutation_probability=0.5),
                rng=7,
            )
            return ga.run(6, checkpoints=[6])

        legacy = run(None)
        explicit = run(20)
        np.testing.assert_array_equal(
            legacy.final.front_points, explicit.final.front_points
        )

    def test_steady_state_advances_one_offspring_per_step(self,
                                                          small_evaluator):
        ga = make_algorithm(
            "nsga2-ss", small_evaluator,
            AlgorithmConfig(population_size=12, mutation_probability=0.5),
            rng=3,
        )
        before = ga._evaluations
        ga.step()
        # offspring_size=1: a single candidate enters the meta-population.
        assert ga.population.size == 12
        assert ga._evaluations - before == 1

    def test_steady_state_front_still_improves(self, small_evaluator):
        from repro.analysis.indicators import hypervolume

        ga = make_algorithm(
            "nsga2-ss", small_evaluator,
            AlgorithmConfig(population_size=12, mutation_probability=0.5),
            rng=11,
        )
        ref = (1e9, 0.0)
        ga.step()
        pts0, _ = ga.current_front()
        hv0 = hypervolume(pts0, ref)
        for _ in range(40):
            ga.step()
        pts1, _ = ga.current_front()
        assert hypervolume(pts1, ref) >= hv0 - 1e-9


# -- registry ------------------------------------------------------------------


class TestRegistry:
    def test_available_algorithms_sorted_and_complete(self):
        names = available_algorithms()
        assert names == tuple(sorted(ALGORITHMS))
        assert {"nsga2", "nsga2-ss", "spea2", "moead",
                "eps-archive"} <= set(names)

    def test_unknown_name_raises_lookup_error(self, small_evaluator):
        with pytest.raises(AlgorithmLookupError) as err:
            make_algorithm("annealing", small_evaluator,
                           AlgorithmConfig(population_size=8))
        assert "annealing" in str(err.value)
        assert "nsga2" in str(err.value)  # the message lists valid names

    def test_lookup_error_is_an_optimization_error(self):
        assert issubclass(AlgorithmLookupError, OptimizationError)

    def test_every_registered_algorithm_runs(self, small_evaluator,
                                             small_system, small_trace):
        """Smoke: each registry entry completes a short run through the
        uniform Algorithm API and yields a nondominated front."""
        from repro.core.dominance import nondominated_mask

        for name in available_algorithms():
            ev = ScheduleEvaluator(small_system, small_trace,
                                   check_feasibility=False)
            ga = make_algorithm(
                name, ev,
                AlgorithmConfig(population_size=12,
                                mutation_probability=0.5),
                rng=5, label=name,
            )
            history = ga.run(3, checkpoints=[3])
            pts = history.final.front_points
            assert pts.shape[0] >= 1, name
            assert nondominated_mask(pts).all(), name

    def test_callable_factory_accepted(self, small_evaluator):
        ga = make_algorithm(NSGA2, small_evaluator,
                            AlgorithmConfig(population_size=8))
        assert ga.name == "nsga2"


# -- config API ----------------------------------------------------------------


class TestAlgorithmConfig:
    def test_keyword_only(self):
        with pytest.raises(TypeError):
            AlgorithmConfig(30)  # positional population_size rejected

    def test_mutation_probability_collapses_into_operators(self):
        config = AlgorithmConfig(population_size=10, mutation_probability=0.7)
        assert config.operators.mutation_probability == 0.7

    def test_explicit_operators_preserved_without_override(self):
        ops = OperatorConfig(mutation_probability=0.1)
        config = AlgorithmConfig(population_size=10, operators=ops)
        assert config.operators.mutation_probability == 0.1

    def test_offspring_size_validated(self):
        with pytest.raises(OptimizationError):
            AlgorithmConfig(population_size=10, offspring_size=0)


class TestNSGA2ConfigShim:
    def test_warns_and_builds_algorithm_config(self):
        with pytest.warns(DeprecationWarning):
            config = NSGA2Config(population_size=14)
        assert isinstance(config, AlgorithmConfig)
        assert config.population_size == 14

    def test_shim_config_drives_the_engine(self, small_evaluator):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            config = NSGA2Config(population_size=8)
        ga = NSGA2(small_evaluator, config, rng=1)
        ga.step()
        assert ga.population.size == 8


class TestTemplateHooks:
    def test_nsga2_is_an_evolutionary_algorithm(self):
        assert issubclass(NSGA2, EvolutionaryAlgorithm)

    def test_subclass_must_implement_replacement(self, small_evaluator):
        class Incomplete(EvolutionaryAlgorithm):
            name = "incomplete"

        ga = Incomplete(small_evaluator, AlgorithmConfig(population_size=8))
        with pytest.raises(NotImplementedError):
            ga.step()
