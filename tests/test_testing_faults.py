"""Tests for the deterministic fault-injection harness itself."""

import pickle
import time

import pytest

from repro.testing.faults import FaultPlan, FaultRule, InjectedFault, corrupt_artifact


class TestCountBasedFiring:
    def test_crash_fires_at_exact_call(self):
        plan = FaultPlan().crash("site", at_call=3)
        hook = plan.evaluation_hook("site")
        hook()
        hook()
        with pytest.raises(InjectedFault):
            hook()
        hook()  # one-shot: later calls pass
        assert plan.calls("site") == 4

    def test_transient_fails_then_succeeds(self):
        plan = FaultPlan().transient("site", failures=2)
        hook = plan.evaluation_hook("site")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                hook()
        hook()
        hook()

    def test_sites_are_independent(self):
        plan = FaultPlan().crash("a", at_call=1)
        plan.fire("b")
        with pytest.raises(InjectedFault):
            plan.fire("a")

    def test_hang_sleeps(self):
        plan = FaultPlan().hang("site", seconds=0.05)
        t0 = time.perf_counter()
        plan.fire("site")
        assert time.perf_counter() - t0 >= 0.05
        t0 = time.perf_counter()
        plan.fire("site")  # only the configured call hangs
        assert time.perf_counter() - t0 < 0.05


class TestAttemptBasedFiring:
    def test_crash_is_permanent(self):
        plan = FaultPlan().crash("pop")
        for attempt in (1, 2, 5):
            with pytest.raises(InjectedFault):
                plan.on_attempt("pop", attempt)

    def test_transient_clears_after_failures(self):
        plan = FaultPlan().transient("pop", failures=2)
        with pytest.raises(InjectedFault):
            plan.on_attempt("pop", 1)
        with pytest.raises(InjectedFault):
            plan.on_attempt("pop", 2)
        plan.on_attempt("pop", 3)

    def test_other_labels_unaffected(self):
        plan = FaultPlan().crash("pop")
        plan.on_attempt("other", 1)

    def test_hook_survives_pickling(self):
        plan = FaultPlan().transient("pop", failures=1)
        hook = pickle.loads(pickle.dumps(plan.on_attempt))
        with pytest.raises(InjectedFault):
            hook("pop", 1)
        hook("pop", 2)


class TestRuleValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultRule(site="s", kind="explode")

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            FaultRule(site="s", kind="crash", at_call=0)
        with pytest.raises(ValueError):
            FaultRule(site="s", kind="transient", failures=0)
        with pytest.raises(ValueError):
            FaultRule(site="s", kind="hang", hang_seconds=-1.0)

    def test_corrupt_needs_path(self):
        with pytest.raises(ValueError):
            FaultRule(site="s", kind="corrupt-checkpoint")


class TestCorruptArtifact:
    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        content = b'{"format": "x", "payload": ' + b"1234567890" * 20 + b"}"
        a.write_bytes(content)
        b.write_bytes(content)
        corrupt_artifact(a, seed=7)
        corrupt_artifact(b, seed=7)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != content

    def test_different_seeds_differ(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        content = b"x" * 400
        a.write_bytes(content)
        b.write_bytes(content)
        corrupt_artifact(a, seed=1)
        corrupt_artifact(b, seed=2)
        assert a.read_bytes() != b.read_bytes()

    def test_empty_file_is_noop(self, tmp_path):
        p = tmp_path / "empty"
        p.write_bytes(b"")
        corrupt_artifact(p)
        assert p.read_bytes() == b""
