"""Tests for CSV/SVG export and gantt rendering."""

import csv

import numpy as np
import pytest

from repro.analysis.export import (
    front_to_csv,
    figure_to_csv,
    figure_to_svg,
    render_svg_scatter,
)
from repro.analysis.pareto_front import ParetoFront
from repro.errors import AnalysisError, ScheduleError
from repro.sim.events import simulate_reference
from repro.sim.gantt import machine_timeline, render_gantt

from conftest import random_allocation


@pytest.fixture(scope="module")
def small_figure():
    from repro.experiments.figures import figure3

    return figure3(checkpoints=[2, 4], population_size=12, base_seed=9)


class TestCSV:
    def test_front_csv(self, tmp_path):
        front = ParetoFront.from_points(
            np.array([[1e6, 5.0], [2e6, 8.0]]), label="x"
        )
        path = tmp_path / "front.csv"
        front_to_csv(front, path)
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["population", "energy_joules", "utility"]
        assert len(rows) == 3
        assert rows[1][0] == "x"
        assert float(rows[1][1]) == 1e6

    def test_figure_csv_roundtrips_points(self, tmp_path, small_figure):
        path = tmp_path / "fig.csv"
        figure_to_csv(small_figure, path)
        rows = list(csv.reader(path.open()))[1:]
        total_points = sum(
            s.front_points.shape[0]
            for h in small_figure.result.histories.values()
            for s in h.snapshots
        )
        assert len(rows) == total_points
        labels = {r[0] for r in rows}
        assert "min-energy" in labels and "random" in labels
        # Exact float round-trip via repr.
        e0 = small_figure.result.histories["min-energy"].snapshots[0].front_points[0, 0]
        assert any(float(r[2]) == e0 for r in rows)


class TestSVG:
    def test_valid_svg_with_legend(self):
        svg = render_svg_scatter(
            {"a": np.array([[1e6, 2.0], [2e6, 3.0]]),
             "b": np.array([[1.5e6, 4.0]])},
            title="demo",
        )
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "demo" in svg
        assert svg.count("<circle") >= 2  # series 'a' markers
        assert ">a</text>" in svg and ">b</text>" in svg

    def test_degenerate_single_point(self):
        svg = render_svg_scatter({"a": np.array([[1e6, 2.0]])})
        assert "<svg" in svg

    def test_validation(self):
        with pytest.raises(AnalysisError):
            render_svg_scatter({})
        with pytest.raises(AnalysisError):
            render_svg_scatter({"a": np.empty((0, 2))})
        with pytest.raises(AnalysisError):
            render_svg_scatter({"a": np.array([[1.0, 2.0]])}, width=50, height=50)

    def test_figure_to_svg_writes_subplots(self, tmp_path, small_figure):
        paths = figure_to_svg(small_figure, tmp_path)
        assert len(paths) == len(small_figure.checkpoints)
        for p in paths:
            text = p.read_text()
            assert text.startswith("<svg")
            assert "min-energy" in text


class TestGantt:
    def test_render_structure(self, tiny_system, tiny_trace):
        alloc = random_allocation(tiny_system, tiny_trace, seed=1)
        ref = simulate_reference(tiny_system, tiny_trace, alloc)
        chart = render_gantt(ref, system=tiny_system, width=60)
        lines = chart.splitlines()
        machines_used = {e.machine for e in ref.gantt}
        assert len(lines) == len(machines_used) + 2  # rows + ruler + legend
        assert "time" in lines[-2]
        assert "idle awaiting arrival" in lines[-1]

    def test_task_cells_present(self, tiny_system, tiny_trace):
        alloc = random_allocation(tiny_system, tiny_trace, seed=2)
        ref = simulate_reference(tiny_system, tiny_trace, alloc)
        chart = render_gantt(ref, width=80)
        # Every executed task's letter appears somewhere.
        for e in ref.gantt:
            ch = "abcdefghijklmnopqrstuvwxyz0123456789"[e.task % 36]
            assert ch in chart

    def test_machine_timeline_sorted(self, small_system, small_trace):
        alloc = random_allocation(small_system, small_trace, seed=3)
        ref = simulate_reference(small_system, small_trace, alloc)
        tl = machine_timeline(ref.gantt, 0)
        starts = [e.start for e in tl]
        assert starts == sorted(starts)

    def test_validation(self, tiny_system, tiny_trace):
        alloc = random_allocation(tiny_system, tiny_trace, seed=4)
        ref = simulate_reference(tiny_system, tiny_trace, alloc)
        with pytest.raises(ScheduleError):
            render_gantt(ref, width=5)
