"""Tests for cross-run comparison."""

import numpy as np
import pytest

from repro.analysis.compare import compare_runs, render_comparison
from repro.errors import AnalysisError
from repro.experiments.figures import figure3


@pytest.fixture(scope="module")
def two_runs():
    short = figure3(checkpoints=[2], population_size=16, base_seed=55)
    longer = figure3(checkpoints=[12], population_size=16, base_seed=55)
    return short, longer


class TestCompareRuns:
    def test_structure(self, two_runs):
        short, longer = two_runs
        comparisons = compare_runs(short, longer)
        assert {c.label for c in comparisons} == set(short.result.histories)
        for c in comparisons:
            assert c.hypervolume_a >= 0 and c.hypervolume_b >= 0
            assert 0 <= c.a_dominated_by_b <= 1
            assert 0 <= c.b_dominated_by_a <= 1

    def test_longer_run_improves_hypervolume(self, two_runs):
        """12 generations beat 2 for every population (same seed stream
        start, elitist engine)."""
        short, longer = two_runs
        for c in compare_runs(short, longer):
            assert c.hypervolume_b >= c.hypervolume_a - 1e-9
            assert c.b_improves or c.hypervolume_a == c.hypervolume_b

    def test_self_comparison_is_neutral(self, two_runs):
        short, _ = two_runs
        for c in compare_runs(short, short):
            assert c.hypervolume_a == c.hypervolume_b
            assert c.a_dominated_by_b == 0.0
            assert c.b_dominated_by_a == 0.0
            assert c.min_energy_drift == 0.0
            assert c.epsilon_a_to_b == pytest.approx(0.0, abs=1e-9)

    def test_render(self, two_runs):
        short, longer = two_runs
        text = render_comparison(compare_runs(short, longer), "2-gen", "12-gen")
        assert "2-gen" in text and "12-gen" in text
        assert "min-energy" in text

    def test_disjoint_labels_rejected(self, two_runs):
        short, _ = two_runs

        class Fake:
            class result:
                histories = {}

        with pytest.raises(AnalysisError):
            compare_runs(short, Fake())
        with pytest.raises(AnalysisError):
            render_comparison([])
