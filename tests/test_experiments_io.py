"""Round-trip tests for figure-result serialization."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import figure3
from repro.experiments.io import load_figure_result, save_figure_result


@pytest.fixture(scope="module")
def small_fig():
    return figure3(checkpoints=[2, 4], population_size=12, base_seed=3)


class TestRoundTrip:
    def test_front_points_roundtrip(self, small_fig, tmp_path):
        path = tmp_path / "fig.json"
        save_figure_result(small_fig, path)
        loaded = load_figure_result(path)
        assert loaded.name == small_fig.name
        assert loaded.checkpoints == small_fig.checkpoints
        assert loaded.paper_checkpoints == small_fig.paper_checkpoints
        for label, history in small_fig.result.histories.items():
            restored = loaded.result.histories[label]
            assert restored.total_generations == history.total_generations
            assert restored.total_evaluations == history.total_evaluations
            for a, b in zip(history.snapshots, restored.snapshots):
                assert a.generation == b.generation
                np.testing.assert_allclose(a.front_points, b.front_points)

    def test_loaded_result_supports_analysis(self, small_fig, tmp_path):
        path = tmp_path / "fig.json"
        save_figure_result(small_fig, path)
        loaded = load_figure_result(path)
        regions = loaded.efficiency_regions()
        assert len(regions) == len(small_fig.result.histories)
        text = loaded.render()
        assert "figure3" in text

    def test_seed_objectives_roundtrip(self, small_fig, tmp_path):
        path = tmp_path / "fig.json"
        save_figure_result(small_fig, path)
        loaded = load_figure_result(path)
        for k, v in small_fig.result.seed_objectives.items():
            assert loaded.result.seed_objectives[k] == pytest.approx(v)

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(ExperimentError):
            load_figure_result(path)
