"""Round-trip tests for figure-result serialization."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import figure3
from repro.experiments.io import load_figure_result, save_figure_result


@pytest.fixture(scope="module")
def small_fig():
    return figure3(checkpoints=[2, 4], population_size=12, base_seed=3)


class TestRoundTrip:
    def test_front_points_roundtrip(self, small_fig, tmp_path):
        path = tmp_path / "fig.json"
        save_figure_result(small_fig, path)
        loaded = load_figure_result(path)
        assert loaded.name == small_fig.name
        assert loaded.checkpoints == small_fig.checkpoints
        assert loaded.paper_checkpoints == small_fig.paper_checkpoints
        for label, history in small_fig.result.histories.items():
            restored = loaded.result.histories[label]
            assert restored.total_generations == history.total_generations
            assert restored.total_evaluations == history.total_evaluations
            for a, b in zip(history.snapshots, restored.snapshots):
                assert a.generation == b.generation
                np.testing.assert_allclose(a.front_points, b.front_points)

    def test_loaded_result_supports_analysis(self, small_fig, tmp_path):
        path = tmp_path / "fig.json"
        save_figure_result(small_fig, path)
        loaded = load_figure_result(path)
        regions = loaded.efficiency_regions()
        assert len(regions) == len(small_fig.result.histories)
        text = loaded.render()
        assert "figure3" in text

    def test_seed_objectives_roundtrip(self, small_fig, tmp_path):
        path = tmp_path / "fig.json"
        save_figure_result(small_fig, path)
        loaded = load_figure_result(path)
        for k, v in small_fig.result.seed_objectives.items():
            assert loaded.result.seed_objectives[k] == pytest.approx(v)

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(ExperimentError):
            load_figure_result(path)


class TestAlgorithmField:
    def test_algorithm_roundtrips(self, tmp_path):
        fig = figure3(checkpoints=[2], population_size=10, base_seed=3,
                      algorithm="spea2")
        path = tmp_path / "fig.json"
        save_figure_result(fig, path)
        assert load_figure_result(path).result.config.algorithm == "spea2"

    def test_legacy_file_defaults_to_nsga2(self, small_fig, tmp_path):
        """Results saved before the portfolio redesign carry no
        algorithm field; loading treats them as the NSGA-II runs they
        were."""
        import json

        path = tmp_path / "fig.json"
        save_figure_result(small_fig, path)
        # Strip the integrity envelope and the algorithm field, as a
        # pre-redesign writer would have produced.
        payload = json.loads(path.read_text())["payload"]
        del payload["config"]["algorithm"]
        path.write_text(json.dumps(payload))
        assert load_figure_result(path).result.config.algorithm == "nsga2"
