"""Tests for the system audit."""

import numpy as np
import pytest

from repro.model.audit import AuditFinding, Severity, audit_system
from repro.model.machine import Machine, MachineCategory, MachineType
from repro.model.matrices import EPCMatrix, ETCMatrix
from repro.model.system import SystemModel
from repro.model.task import TaskCategory, TaskType

from conftest import make_tiny_system


def codes(findings):
    return {f.code for f in findings}


def warnings_of(findings):
    return [f for f in findings if f.severity is Severity.WARNING]


class TestCleanSystem:
    def test_tiny_system_no_warnings(self):
        findings = audit_system(make_tiny_system())
        assert warnings_of(findings) == []
        # The fixture's constant row IS flagged (informational).
        assert "uniform-row" in codes(findings)

    def test_historical_no_warnings(self):
        from repro.data.historical import historical_system

        findings = audit_system(historical_system())
        assert warnings_of(findings) == []
        # Cross-generation CPUs genuinely dominate older parts: the
        # 2400S beats the A8 on time and power for every program —
        # reported as informational, since queueing can still justify
        # the dominated machines.
        assert "dominated-machine-type" in codes(findings)

    def test_dataset2_clean(self, ds2_bundle):
        findings = audit_system(ds2_bundle.system)
        assert codes(findings) <= {"extreme-ratio"}  # GC tails permitted


class TestFindings:
    def test_dominated_machine_type(self):
        etc = np.array([[10.0, 20.0], [5.0, 9.0]])   # col 1 always slower
        epc = np.array([[100.0, 150.0], [80.0, 90.0]])  # and hungrier
        sys_ = SystemModel.from_matrices(etc, epc)
        findings = audit_system(sys_)
        assert "dominated-machine-type" in codes(findings)

    def test_uniform_row(self):
        etc = np.array([[10.0, 10.0], [5.0, 9.0]])
        epc = np.array([[100.0, 90.0], [80.0, 95.0]])
        sys_ = SystemModel.from_matrices(etc, epc)
        assert "uniform-row" in codes(audit_system(sys_))

    def test_extreme_ratio(self):
        etc = np.array([[10.0, 2000.0], [5.0, 9.0]])  # 200x slower
        epc = np.array([[100.0, 90.0], [80.0, 95.0]])
        sys_ = SystemModel.from_matrices(etc, epc)
        assert "extreme-ratio" in codes(audit_system(sys_))

    def test_power_scale(self):
        etc = np.array([[10.0, 12.0]])
        epc = np.array([[0.001, 90.0]])  # milliwatt machine: unit bug
        sys_ = SystemModel.from_matrices(etc, epc)
        assert "etc-epc-scale" in codes(audit_system(sys_))

    def test_idle_power_note(self):
        mt = (
            MachineType(name="a", index=0, idle_power_watts=50.0),
            MachineType(name="b", index=1),
        )
        machines = tuple(
            Machine(name=f"m{i}", index=i, machine_type=mt[i]) for i in range(2)
        )
        tts = (TaskType(name="t", index=0),)
        sys_ = SystemModel(
            machine_types=mt,
            machines=machines,
            task_types=tts,
            etc=ETCMatrix(np.array([[10.0, 12.0]])),
            epc=EPCMatrix(np.array([[100.0, 90.0]])),
        )
        assert "idle-power-without-dvfs" in codes(audit_system(sys_))

    def test_unreferenced_special(self):
        # Special machine supports task 0, but task 0 is categorized
        # general-purpose... which SystemModel validation actually
        # allows (feasibility matches declaration); audit flags it.
        mt = (
            MachineType(name="g", index=0),
            MachineType(
                name="s",
                index=1,
                category=MachineCategory.SPECIAL_PURPOSE,
                supported_task_types=frozenset({0}),
            ),
        )
        machines = tuple(
            Machine(name=f"m{i}", index=i, machine_type=mt[i]) for i in range(2)
        )
        tts = (TaskType(name="t0", index=0),)  # general-purpose!
        etc = np.array([[10.0, 1.0]])
        epc = np.array([[100.0, 90.0]])
        sys_ = SystemModel(
            machine_types=mt,
            machines=machines,
            task_types=tts,
            etc=ETCMatrix(etc),
            epc=EPCMatrix(epc),
        )
        assert "unreferenced-special" in codes(audit_system(sys_))


class TestFindingShape:
    def test_messages_are_informative(self):
        etc = np.array([[10.0, 20.0], [5.0, 9.0]])
        epc = np.array([[100.0, 150.0], [80.0, 90.0]])
        findings = audit_system(SystemModel.from_matrices(etc, epc))
        for f in findings:
            assert isinstance(f, AuditFinding)
            assert f.message
            assert f.code
