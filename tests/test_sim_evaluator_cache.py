"""Evaluation cache, batch-composition independence, and kernel exactness.

The cache contract is that caching is invisible: any sequence of
``evaluate_batch`` calls returns bit-identical objectives with the
cache on, off, or pre-warmed, in any batch composition.  That only
holds because the segmented kernel is *exact* — each row's finish
times depend on that row alone (row-local cumulative sums) and the
segmented running maximum is the true maximum, never an
offset-approximation.  These tests pin down both halves, including a
pure-Python bitwise mirror of the kernel at extreme magnitudes where
the retired offset trick loses bits.
"""

import math

import numpy as np
import pytest

from repro.core.operators import FeasibleMachines
from repro.errors import ScheduleError
from repro.sim.evaluator import (
    EvaluationCache,
    ScheduleEvaluator,
    _segmented_finish_times,
    _segmented_finish_times_reference,
    _KernelScratch,
)
from repro.sim.schedule import ResourceAllocation


def make_batch(system, trace, n_rows, seed):
    """Random feasible (assignments, orders) rows for (system, trace)."""
    rng = np.random.default_rng(seed)
    feasible = FeasibleMachines.from_system_trace(system, trace)
    assignments = feasible.sample_matrix(n_rows, rng)
    orders = np.array(
        [rng.permutation(trace.num_tasks) for _ in range(n_rows)]
    )
    return assignments, orders


def make_evaluator(system, trace, **kwargs):
    kwargs.setdefault("check_feasibility", False)
    # This suite exercises the *chromosome* cache, which only exists on
    # the per-row kernels (batch mode replaces it with the kernel's
    # queue-state tables — see tests/test_sim_batchkernel.py).
    kwargs.setdefault("kernel_method", "fast")
    return ScheduleEvaluator(system, trace, **kwargs)


# -- cache transparency -------------------------------------------------------


class TestCacheTransparency:
    def test_cache_on_off_bit_identical(self, small_system, small_trace):
        assignments, orders = make_batch(small_system, small_trace, 40, 0)
        cold = make_evaluator(small_system, small_trace, cache_size=0)
        warm = make_evaluator(small_system, small_trace, cache_size=1000)
        e0, u0 = cold.evaluate_batch(assignments, orders)
        e1, u1 = warm.evaluate_batch(assignments, orders)
        np.testing.assert_array_equal(e0, e1)
        np.testing.assert_array_equal(u0, u1)
        # Second pass: all hits, still bit-identical.
        e2, u2 = warm.evaluate_batch(assignments, orders)
        np.testing.assert_array_equal(e0, e2)
        np.testing.assert_array_equal(u0, u2)
        assert warm.cache_stats["hits"] == 40

    def test_repeated_rows_within_a_batch(self, small_system, small_trace):
        assignments, orders = make_batch(small_system, small_trace, 6, 1)
        dup = np.array([0, 1, 0, 2, 1, 0, 5, 5])
        cold = make_evaluator(small_system, small_trace, cache_size=0)
        warm = make_evaluator(small_system, small_trace)
        e0, u0 = cold.evaluate_batch(assignments[dup], orders[dup])
        e1, u1 = warm.evaluate_batch(assignments[dup], orders[dup])
        np.testing.assert_array_equal(e0, e1)
        np.testing.assert_array_equal(u0, u1)

    def test_partial_hit_batch(self, small_system, small_trace):
        """A batch mixing cached and new rows must equal a cold pass."""
        assignments, orders = make_batch(small_system, small_trace, 30, 2)
        warm = make_evaluator(small_system, small_trace)
        warm.evaluate_batch(assignments[:17], orders[:17])  # pre-warm a prefix
        cold = make_evaluator(small_system, small_trace, cache_size=0)
        e0, u0 = cold.evaluate_batch(assignments, orders)
        e1, u1 = warm.evaluate_batch(assignments, orders)
        np.testing.assert_array_equal(e0, e1)
        np.testing.assert_array_equal(u0, u1)
        stats = warm.cache_stats
        assert stats["hits"] == 17 and stats["misses"] == 30

    def test_batch_composition_independence(self, small_system, small_trace):
        """Row-by-row evaluation equals one full batch, bit for bit —
        the property that makes cache hits indistinguishable from
        fresh kernel runs under any interleaving."""
        assignments, orders = make_batch(small_system, small_trace, 25, 3)
        ev = make_evaluator(small_system, small_trace, cache_size=0)
        e_full, u_full = ev.evaluate_batch(assignments, orders)
        for i in range(25):
            e_i, u_i = ev.evaluate_batch(
                assignments[i : i + 1], orders[i : i + 1]
            )
            assert e_i[0] == e_full[i]
            assert u_i[0] == u_full[i]

    def test_single_evaluate_matches_batch_row(self, small_system, small_trace):
        assignments, orders = make_batch(small_system, small_trace, 8, 4)
        ev = make_evaluator(small_system, small_trace, cache_size=0)
        e_b, u_b = ev.evaluate_batch(assignments, orders)
        for i in range(8):
            result = ev.evaluate(
                ResourceAllocation(
                    machine_assignment=assignments[i],
                    scheduling_order=orders[i],
                )
            )
            assert result.energy == e_b[i]
            assert result.utility == u_b[i]

    def test_large_order_keys_use_int64_digest(self, small_system, small_trace):
        """Order keys beyond int32 take the fallback digest path; results
        stay identical to the uncached kernel (ordering is unchanged
        by the constant shift)."""
        assignments, orders = make_batch(small_system, small_trace, 10, 5)
        big_orders = orders + 2**40
        cold = make_evaluator(small_system, small_trace, cache_size=0)
        warm = make_evaluator(small_system, small_trace)
        e0, u0 = cold.evaluate_batch(assignments, big_orders)
        e1, u1 = warm.evaluate_batch(assignments, big_orders)
        np.testing.assert_array_equal(e0, e1)
        np.testing.assert_array_equal(u0, u1)
        e2, u2 = warm.evaluate_batch(assignments, big_orders)
        np.testing.assert_array_equal(e0, e2)
        np.testing.assert_array_equal(u0, u2)

    def test_workspace_growth_across_batch_sizes(self, small_system, small_trace):
        """Grow-only scratch/workspace buffers serve shrinking and
        growing batches without contaminating results."""
        assignments, orders = make_batch(small_system, small_trace, 32, 6)
        ev = make_evaluator(small_system, small_trace, cache_size=0)
        fresh = make_evaluator(small_system, small_trace, cache_size=0)
        e_all, u_all = fresh.evaluate_batch(assignments, orders)
        for lo, hi in [(0, 3), (3, 25), (25, 30), (0, 32), (30, 32)]:
            e, u = ev.evaluate_batch(assignments[lo:hi], orders[lo:hi])
            np.testing.assert_array_equal(e, e_all[lo:hi])
            np.testing.assert_array_equal(u, u_all[lo:hi])


# -- cache mechanics ----------------------------------------------------------


class TestCacheMechanics:
    def test_clear_on_full(self):
        cache = EvaluationCache(max_entries=3)
        rows = [np.array([i], dtype=np.int64) for i in range(5)]
        keys = [EvaluationCache.key(r, r) for r in rows]
        for i, k in enumerate(keys[:3]):
            cache.put(k, float(i), float(i))
        assert len(cache) == 3
        cache.put(keys[3], 3.0, 3.0)  # at capacity: clears, then stores
        assert len(cache) == 1
        assert cache.get(keys[3]) == (3.0, 3.0)
        assert cache.get(keys[0]) is None

    def test_stats_and_clear(self, small_system, small_trace):
        assignments, orders = make_batch(small_system, small_trace, 5, 7)
        ev = make_evaluator(small_system, small_trace)
        ev.evaluate_batch(assignments, orders)
        ev.evaluate_batch(assignments, orders)
        stats = ev.cache_stats
        assert stats == {
            "hits": 5,
            "misses": 5,
            "evictions": 0,
            "entries": 5,
            "hit_rate": 0.5,
            "lifetime_hits": 5,
            "lifetime_misses": 5,
        }
        ev.clear_cache()
        assert ev.cache_stats["entries"] == 0
        # Window counters restart with the empty store (no stale
        # hit_rate across clears); lifetime totals stay monotonic.
        assert ev.cache_stats["hits"] == 0
        assert ev.cache_stats["misses"] == 0
        ev.evaluate_batch(assignments, orders)
        stats = ev.cache_stats
        assert stats["misses"] == 5
        assert stats["hit_rate"] == 0.0
        assert stats["lifetime_misses"] == 10
        assert stats["lifetime_hits"] == 5

    def test_window_stats_reset_on_capacity_clear(self):
        cache = EvaluationCache(max_entries=2)
        keys = [EvaluationCache.key(np.array([i], dtype=np.int64),
                                    np.array([i], dtype=np.int64))
                for i in range(3)]
        for i in range(2):
            cache.get(keys[i])
            cache.put(keys[i], float(i), float(i))
        cache.get(keys[0])  # window: 1 hit, 2 misses
        assert cache.stats["hit_rate"] == pytest.approx(1 / 3)
        cache.get(keys[2])
        cache.put(keys[2], 2.0, 2.0)  # at capacity: clears the window
        stats = cache.stats
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert stats["hit_rate"] == 0.0
        assert stats["lifetime_hits"] == 1
        assert stats["lifetime_misses"] == 3

    def test_disabled_cache_stats(self, small_system, small_trace):
        ev = make_evaluator(small_system, small_trace, cache_size=0)
        assert ev.cache is None
        assert ev.cache_stats["hit_rate"] == 0.0
        ev.clear_cache()  # no-op, must not raise

    def test_distinct_chromosomes_distinct_keys(self):
        a = np.arange(6, dtype=np.int64)
        b = a.copy()
        b[3] = 99
        assert EvaluationCache.key(a, a) != EvaluationCache.key(b, a)
        assert EvaluationCache.key(a, a) != EvaluationCache.key(a, b)

    def test_invalid_construction(self, small_system, small_trace):
        with pytest.raises(ScheduleError):
            make_evaluator(small_system, small_trace, cache_size=-1)
        with pytest.raises(ScheduleError):
            make_evaluator(small_system, small_trace, kernel_method="turbo")
        with pytest.raises(ScheduleError):
            EvaluationCache(max_entries=0)


# -- kernel exactness ---------------------------------------------------------


def mirror_finish_times(group, order_key, arrivals, exec_times, row_block=None):
    """Pure-Python bitwise mirror of ``_segmented_finish_times``.

    Replays the kernel's exact floating-point operation order — stable
    (group, order) sort, row-local sequential cumulative sum, segment
    offset subtraction, ``a − (cse − e)`` keys, true running maximum —
    one scalar at a time.
    """
    n = group.shape[0]
    if row_block is None:
        row_block = n
    idx = np.lexsort((np.arange(n), order_key, group))
    g = group[idx]
    e = exec_times[idx]
    a = arrivals[idx]
    cs = np.empty(n, dtype=np.float64)
    for r0 in range(0, n, row_block):
        acc = 0.0
        for i in range(r0, r0 + row_block):
            acc = acc + float(e[i])
            cs[i] = acc
    finish_sorted = np.empty(n, dtype=np.float64)
    offset = 0.0
    runmax = -math.inf
    for i in range(n):
        if i == 0 or g[i] != g[i - 1]:
            offset = 0.0 if i % row_block == 0 else float(cs[i - 1])
            runmax = -math.inf
        cse = float(cs[i]) - offset
        key = float(a[i]) - (cse - float(e[i]))
        runmax = max(runmax, key)
        finish_sorted[i] = cse + runmax
    finish = np.empty(n, dtype=np.float64)
    finish[idx] = finish_sorted
    return finish


def random_kernel_inputs(rng, n, queues, arrival_scale=1.0, order_span=None):
    group = rng.integers(0, queues, size=n)
    span = order_span if order_span is not None else n
    order_key = rng.integers(0, span, size=n)
    arrivals = rng.uniform(0.0, 100.0, size=n) * arrival_scale
    exec_times = rng.uniform(0.1, 30.0, size=n)
    return group, order_key, arrivals, exec_times


class TestKernelExactness:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("use_scratch", [False, True])
    def test_fast_matches_python_mirror(self, seed, use_scratch):
        rng = np.random.default_rng(seed)
        inputs = random_kernel_inputs(rng, 200, queues=9)
        scratch = _KernelScratch() if use_scratch else None
        fast = _segmented_finish_times(*inputs, scratch=scratch)
        np.testing.assert_array_equal(fast, mirror_finish_times(*inputs))

    @pytest.mark.parametrize("row_block", [10, 50])
    def test_row_block_matches_mirror(self, row_block):
        """Batch mode: group ids strictly separate rows, cumsums reset
        per row — exactly as ``evaluate_batch`` drives the kernel."""
        rng = np.random.default_rng(10)
        rows = 200 // row_block
        group, order_key, arrivals, exec_times = random_kernel_inputs(
            rng, 200, queues=5
        )
        group = group + np.repeat(np.arange(rows), row_block) * 5
        fast = _segmented_finish_times(
            group, order_key, arrivals, exec_times, row_block=row_block,
            scratch=_KernelScratch(),
        )
        np.testing.assert_array_equal(
            fast,
            mirror_finish_times(
                group, order_key, arrivals, exec_times, row_block=row_block
            ),
        )

    def test_fast_close_to_reference_at_normal_magnitudes(self):
        rng = np.random.default_rng(20)
        inputs = random_kernel_inputs(rng, 300, queues=12)
        fast = _segmented_finish_times(*inputs, scratch=_KernelScratch())
        ref = _segmented_finish_times_reference(*inputs)
        np.testing.assert_allclose(fast, ref, rtol=1e-12, atol=0.0)

    @pytest.mark.parametrize("seed", range(3))
    def test_exact_at_extreme_magnitudes(self, seed):
        """Arrivals around 2⁴⁰ with full mantissas across many segments:
        the regime where ``seg_id × big`` offsets round away low bits.
        The production kernel must still match the scalar mirror bit
        for bit (its offset trick is validated and falls back to the
        exact scan when lossy)."""
        rng = np.random.default_rng(100 + seed)
        n = 400
        group, order_key, _, _ = random_kernel_inputs(rng, n, queues=50)
        arrivals = 2.0**40 + rng.uniform(0.0, 1.0, size=n)
        exec_times = rng.uniform(1e-6, 1e-3, size=n)
        fast = _segmented_finish_times(
            group, order_key, arrivals, exec_times, scratch=_KernelScratch()
        )
        np.testing.assert_array_equal(
            fast, mirror_finish_times(group, order_key, arrivals, exec_times)
        )

    def test_negative_and_huge_order_keys(self):
        """The composite-key sort handles extreme int64 order keys (falls
        back to lexsort past the overflow guard) without changing the
        result."""
        rng = np.random.default_rng(30)
        group, _, arrivals, exec_times = random_kernel_inputs(rng, 64, queues=4)
        order_key = rng.integers(-(2**62), 2**62, size=64)
        fast = _segmented_finish_times(
            group, order_key, arrivals, exec_times, scratch=_KernelScratch()
        )
        np.testing.assert_array_equal(
            fast, mirror_finish_times(group, order_key, arrivals, exec_times)
        )

    def test_row_block_must_divide_input(self):
        with pytest.raises(ScheduleError):
            _segmented_finish_times(
                np.zeros(5, dtype=np.int64),
                np.arange(5),
                np.zeros(5),
                np.ones(5),
                row_block=2,
            )

    def test_kernel_method_dispatch(self, small_system, small_trace):
        """Both configured kernels agree on realistic workloads (to
        float precision) while the engines stay bit-identical per
        kernel."""
        assignments, orders = make_batch(small_system, small_trace, 12, 8)
        fast = make_evaluator(
            small_system, small_trace, cache_size=0, kernel_method="fast"
        )
        ref = make_evaluator(
            small_system, small_trace, cache_size=0, kernel_method="reference"
        )
        e0, u0 = fast.evaluate_batch(assignments, orders)
        e1, u1 = ref.evaluate_batch(assignments, orders)
        np.testing.assert_allclose(e0, e1, rtol=1e-12)
        np.testing.assert_allclose(u0, u1, rtol=1e-9)
