"""Tests for baseline mappers."""

import numpy as np
import pytest

from repro.heuristics import MinEnergy
from repro.heuristics.baselines import (
    RandomMapper,
    RoundRobinMapper,
    SufferageCompletionTime,
)


class TestRandomMapper:
    def test_feasible(self, small_system, small_trace):
        alloc = RandomMapper(seed=1).build(small_system, small_trace)
        alloc.validate_against(
            small_system.num_machines,
            small_system.feasible_task_machine,
            small_trace.task_types,
        )

    def test_seeded_determinism(self, small_system, small_trace):
        a = RandomMapper(seed=7).build(small_system, small_trace)
        b = RandomMapper(seed=7).build(small_system, small_trace)
        np.testing.assert_array_equal(a.machine_assignment, b.machine_assignment)

    def test_seed_sensitivity(self, small_system, small_trace):
        a = RandomMapper(seed=1).build(small_system, small_trace)
        b = RandomMapper(seed=2).build(small_system, small_trace)
        assert not np.array_equal(a.machine_assignment, b.machine_assignment)


class TestRoundRobin:
    def test_cycles_machines(self, small_system, small_trace):
        alloc = RoundRobinMapper().build(small_system, small_trace)
        M = small_system.num_machines
        expected = np.arange(small_trace.num_tasks) % M
        np.testing.assert_array_equal(alloc.machine_assignment, expected)

    def test_balanced_load(self, small_system, small_trace):
        alloc = RoundRobinMapper().build(small_system, small_trace)
        counts = np.bincount(alloc.machine_assignment,
                             minlength=small_system.num_machines)
        assert counts.max() - counts.min() <= 1

    def test_skips_infeasible(self):
        from test_model_system import make_special_system
        from repro.utility.tuf import TimeUtilityFunction
        from repro.workload.trace import Trace

        sys_ = make_special_system().with_utility_functions(
            [TimeUtilityFunction.linear(5.0, 0.01)] * 2
        )
        # All tasks type 1: machine 2 (special) infeasible for them.
        trace = Trace(np.array([1, 1, 1, 1]), np.array([0.0, 1.0, 2.0, 3.0]), 10.0)
        alloc = RoundRobinMapper().build(sys_, trace)
        assert np.all(alloc.machine_assignment < 2)


class TestSufferage:
    def test_feasible_and_deterministic(self, small_system, small_trace):
        a = SufferageCompletionTime().build(small_system, small_trace)
        b = SufferageCompletionTime().build(small_system, small_trace)
        np.testing.assert_array_equal(a.machine_assignment, b.machine_assignment)
        a.validate_against(
            small_system.num_machines,
            small_system.feasible_task_machine,
            small_trace.task_types,
        )

    def test_orders_all_tasks(self, small_system, small_trace):
        alloc = SufferageCompletionTime().build(small_system, small_trace)
        np.testing.assert_array_equal(
            np.sort(alloc.scheduling_order), np.arange(small_trace.num_tasks)
        )


class TestBaselinesAreWorse:
    def test_random_uses_more_energy_than_min_energy(
        self, small_system, small_trace, small_evaluator
    ):
        e_min = small_evaluator.evaluate(
            MinEnergy().build(small_system, small_trace)
        ).energy
        e_rand = small_evaluator.evaluate(
            RandomMapper(seed=3).build(small_system, small_trace)
        ).energy
        assert e_rand > e_min


class TestClassicHeuristics:
    """OLB / MET / MCT from Braun et al. (paper reference [24])."""

    def test_all_feasible(self, small_system, small_trace):
        from repro.heuristics.classic import MCT, MET, OLB

        for cls in (OLB, MET, MCT):
            alloc = cls().build(small_system, small_trace)
            alloc.validate_against(
                small_system.num_machines,
                small_system.feasible_task_machine,
                small_trace.task_types,
            )

    def test_met_picks_fastest_machine(self, small_system, small_trace):
        from repro.heuristics.classic import MET

        alloc = MET().build(small_system, small_trace)
        etc = small_system.etc_task_machine[small_trace.task_types]
        chosen = etc[np.arange(small_trace.num_tasks), alloc.machine_assignment]
        np.testing.assert_allclose(chosen, etc.min(axis=1))

    def test_met_overloads_fast_machines(self, small_system, small_trace):
        """MET ignores queues: it uses strictly fewer distinct machines
        than MCT on a loaded trace."""
        from repro.heuristics.classic import MCT, MET

        met = MET().build(small_system, small_trace)
        mct = MCT().build(small_system, small_trace)
        assert len(set(met.machine_assignment.tolist())) <= len(
            set(mct.machine_assignment.tolist())
        )

    def test_mct_beats_olb_and_met_on_makespan(self, small_system, small_trace):
        """The Braun et al. ordering: MCT's queue-aware choice yields a
        makespan no worse than the two strawmen."""
        from repro.heuristics.classic import MCT, MET, OLB
        from repro.sim.evaluator import ScheduleEvaluator

        ev = ScheduleEvaluator(small_system, small_trace)
        makespans = {
            cls.name: ev.evaluate(cls().build(small_system, small_trace)).makespan
            for cls in (OLB, MET, MCT)
        }
        assert makespans["mct"] <= makespans["met"]
        assert makespans["mct"] <= makespans["olb"]

    def test_olb_balances_busy_time(self, small_system, small_trace):
        """OLB spreads work: its busiest/idlest machine gap is finite
        and it uses every machine on a sufficiently long trace."""
        from repro.heuristics.classic import OLB

        alloc = OLB().build(small_system, small_trace)
        used = set(alloc.machine_assignment.tolist())
        assert used == set(range(small_system.num_machines))

    def test_mct_equals_min_min_first_pick(self, small_system, small_trace):
        """For the first arriving task (empty queues) MCT and Min-Min
        agree on the machine."""
        from repro.heuristics.classic import MCT

        mct = MCT().build(small_system, small_trace)
        etc = small_system.etc_task_machine[small_trace.task_types]
        assert mct.machine_assignment[0] == int(np.argmin(etc[0]))
