"""Tests for the ParetoFront container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.pareto_front import ParetoFront
from repro.errors import AnalysisError


def front_abc() -> ParetoFront:
    return ParetoFront.from_points(
        np.array([[1.0, 5.0], [2.0, 8.0], [3.0, 9.0], [2.5, 6.0]])
    )


class TestConstruction:
    def test_from_points_filters(self):
        f = front_abc()
        assert f.size == 3  # (2.5, 6) dominated by (2, 8)
        np.testing.assert_allclose(f.points[:, 0], [1.0, 2.0, 3.0])

    def test_sorted_and_increasing_utility(self):
        f = front_abc()
        assert np.all(np.diff(f.energies) > 0)
        assert np.all(np.diff(f.utilities) > 0)

    def test_duplicates_dropped(self):
        f = ParetoFront.from_points(np.array([[1.0, 5.0], [1.0, 5.0]]))
        assert f.size == 1

    def test_dominated_input_rejected_by_strict_ctor(self):
        with pytest.raises(AnalysisError):
            ParetoFront(points=np.array([[1.0, 5.0], [2.0, 4.0]]))

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            ParetoFront.from_points(np.empty((0, 2)))

    def test_ranges(self):
        f = front_abc()
        assert f.energy_range == (1.0, 3.0)
        assert f.utility_range == (5.0, 9.0)


class TestMerge:
    def test_merge_keeps_best_of_both(self):
        a = ParetoFront.from_points(np.array([[1.0, 5.0], [3.0, 9.0]]))
        b = ParetoFront.from_points(np.array([[2.0, 8.0], [3.0, 8.5]]))
        merged = a.merge(b)
        assert merged.size == 3
        np.testing.assert_allclose(merged.points[:, 1], [5.0, 8.0, 9.0])


class TestCrossDominance:
    def test_fraction_dominated(self):
        better = ParetoFront.from_points(np.array([[1.0, 9.0]]))
        worse = ParetoFront.from_points(np.array([[2.0, 8.0], [0.5, 1.0]]))
        # (2, 8) dominated by (1, 9); (0.5, 1.0) is not.
        assert worse.fraction_dominated_by(better) == pytest.approx(0.5)
        assert better.fraction_dominated_by(worse) == 0.0
        assert not better.dominates_front(worse)

    def test_dominates_front_complete(self):
        better = ParetoFront.from_points(np.array([[0.5, 9.5]]))
        worse = ParetoFront.from_points(np.array([[2.0, 8.0], [1.0, 5.0]]))
        assert better.dominates_front(worse)

    def test_self_dominance_zero(self):
        f = front_abc()
        assert f.fraction_dominated_by(f) == 0.0


class TestBudgetQueries:
    def test_utility_at_energy(self):
        f = front_abc()
        assert f.utility_at_energy(2.4) == 8.0
        assert f.utility_at_energy(10.0) == 9.0
        with pytest.raises(AnalysisError):
            f.utility_at_energy(0.5)

    def test_energy_for_utility(self):
        f = front_abc()
        assert f.energy_for_utility(7.0) == 2.0
        assert f.energy_for_utility(9.0) == 3.0
        with pytest.raises(AnalysisError):
            f.energy_for_utility(100.0)


@settings(max_examples=40, deadline=None)
@given(
    pts=st.lists(
        st.tuples(st.floats(0.1, 100.0), st.floats(0.1, 100.0)),
        min_size=1,
        max_size=40,
    )
)
def test_property_front_is_monotone_curve(pts):
    """Along any constructed front, utility strictly increases with
    energy — the defining shape of the paper's trade-off curves."""
    f = ParetoFront.from_points(np.asarray(pts))
    if f.size > 1:
        assert np.all(np.diff(f.energies) > 0)
        assert np.all(np.diff(f.utilities) > 0)
