"""Tests for special-purpose machine-type construction."""

import numpy as np
import pytest

from repro.data.historical import HISTORICAL_EPC, HISTORICAL_ETC
from repro.data.special_purpose import (
    SpecialPurposePlan,
    append_special_purpose_columns,
    choose_accelerated_sets,
)
from repro.errors import DataGenerationError


class TestPlan:
    def test_disjoint_groups_required(self):
        with pytest.raises(DataGenerationError):
            SpecialPurposePlan(accelerated=((0, 1), (1, 2)))

    def test_empty_group_rejected(self):
        with pytest.raises(DataGenerationError):
            SpecialPurposePlan(accelerated=((0,), ()))

    def test_machine_for_task(self):
        plan = SpecialPurposePlan(accelerated=((0, 1), (3,)))
        assert plan.machine_for_task(1) == 0
        assert plan.machine_for_task(3) == 1
        assert plan.machine_for_task(2) is None
        assert plan.accelerated_task_types == frozenset({0, 1, 3})


class TestChooseSets:
    def test_default_sizes_alternate_3_2(self):
        plan = choose_accelerated_sets(30, 4, seed=1)
        sizes = [len(g) for g in plan.accelerated]
        assert sizes == [3, 2, 3, 2]

    def test_deterministic(self):
        a = choose_accelerated_sets(30, 4, seed=5)
        b = choose_accelerated_sets(30, 4, seed=5)
        assert a.accelerated == b.accelerated

    def test_too_many_rejected(self):
        with pytest.raises(DataGenerationError):
            choose_accelerated_sets(4, 2, group_sizes=[3, 3])

    def test_custom_sizes(self):
        plan = choose_accelerated_sets(10, 2, seed=0, group_sizes=[2, 2])
        assert [len(g) for g in plan.accelerated] == [2, 2]


class TestAppendColumns:
    def test_paper_rules(self):
        plan = SpecialPurposePlan(accelerated=((0, 2), (4,)))
        etc, epc, feasible = append_special_purpose_columns(
            HISTORICAL_ETC, HISTORICAL_EPC, plan
        )
        assert etc.shape == (5, 11)
        # ETC of accelerated types: row average / 10.
        assert etc[0, 9] == pytest.approx(HISTORICAL_ETC[0].mean() / 10.0)
        assert etc[2, 9] == pytest.approx(HISTORICAL_ETC[2].mean() / 10.0)
        assert etc[4, 10] == pytest.approx(HISTORICAL_ETC[4].mean() / 10.0)
        # EPC: row average, NOT divided by 10 (paper Section III-D2).
        assert epc[0, 9] == pytest.approx(HISTORICAL_EPC[0].mean())
        # Non-accelerated types infeasible on the special column.
        assert np.isinf(etc[1, 9]) and not feasible[1, 9]
        assert np.isinf(etc[0, 10]) and not feasible[0, 10]
        # General block untouched and fully feasible.
        np.testing.assert_array_equal(etc[:, :9], HISTORICAL_ETC)
        assert feasible[:, :9].all()

    def test_special_execution_saves_energy(self):
        """EEC on the special machine is ~10x lower: (avg_etc/10) * avg_epc
        vs roughly avg_etc * avg_epc on general machines."""
        plan = SpecialPurposePlan(accelerated=((0,),))
        etc, epc, feasible = append_special_purpose_columns(
            HISTORICAL_ETC, HISTORICAL_EPC, plan
        )
        eec_special = etc[0, 9] * epc[0, 9]
        eec_general_avg = (HISTORICAL_ETC[0] * HISTORICAL_EPC[0]).mean()
        assert eec_special < eec_general_avg / 5.0

    def test_out_of_range_task_rejected(self):
        plan = SpecialPurposePlan(accelerated=((7,),))
        with pytest.raises(DataGenerationError):
            append_special_purpose_columns(HISTORICAL_ETC, HISTORICAL_EPC, plan)

    def test_bad_speedup_rejected(self):
        plan = SpecialPurposePlan(accelerated=((0,),))
        with pytest.raises(DataGenerationError):
            append_special_purpose_columns(
                HISTORICAL_ETC, HISTORICAL_EPC, plan, speedup=0.0
            )
