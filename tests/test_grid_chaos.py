"""Chaos drill: kill a worker and the coordinator; resume; compare.

The durable-grid acceptance test.  A grid run that loses a pool worker
to SIGKILL, and a grid run whose *coordinator* is SIGKILL'd mid-sweep
and then re-driven with ``repro grid resume``, must both end with
fronts byte-identical to an uninterrupted run — and leave no
shared-memory segments behind.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.experiments.datasets import dataset1
from repro.experiments.grid import grid_status, resume_grid
from repro.experiments.repetitions import run_repetitions
from repro.parallel import shm
from repro.parallel.manifest import GridManifest

REPS = dict(repetitions=4, generations=3, population_size=10)


def _kill_r1_first_attempt(r, attempt):
    """Repetition cell fault hook: SIGKILL the worker once, on cell 1."""
    if r == 1 and attempt == 1:
        os.kill(os.getpid(), signal.SIGKILL)


@pytest.fixture(scope="module")
def clean_fronts():
    return [f.tobytes() for f in run_repetitions(dataset1(), **REPS).fronts]


class TestWorkerChaos:
    def test_worker_sigkill_mid_grid_is_survived(self, tmp_path, clean_fronts):
        leaked_before = set(shm.leaked_segments())
        grid_dir = tmp_path / "grid"
        result = run_repetitions(
            dataset1(), **REPS, workers=2, grid_dir=str(grid_dir),
            fault_hook=_kill_r1_first_attempt,
        )
        # Byte-identical to the uninterrupted serial run.
        assert [f.tobytes() for f in result.fronts] == clean_fronts
        # The journal shows the crash and the recovery.
        loaded = GridManifest.load(grid_dir)
        assert loaded.cells[1].state == "done"
        assert any(
            f["kind"] == "worker-death" for f in loaded.cells[1].failures
        ) or loaded.cells[1].attempt >= 2
        assert grid_status(grid_dir).complete
        # No shared-memory segments were stranded.
        assert set(shm.leaked_segments()) <= leaked_before


class TestChaosTelemetry:
    def test_done_cells_keep_worker_lineage_through_worker_kill(
        self, tmp_path, clean_fronts
    ):
        """Every ``done`` cell of a SIGKILL-drilled grid is attributable:
        the merged trace holds a worker-stamped ``cell.run`` span for it,
        parented under the coordinator's ``grid.run`` span — and the
        telemetry changes nothing about the recovered fronts."""
        from repro.obs import RunContext, validate_run_dir
        from repro.obs.distributed import CELL_SPAN_NAME, GRID_SPAN_NAME

        grid_dir = tmp_path / "grid"
        obs = RunContext.create(obs_dir=grid_dir / "obs", run_id="chaos")
        result = run_repetitions(
            dataset1(), **REPS, workers=2, grid_dir=str(grid_dir),
            fault_hook=_kill_r1_first_attempt, obs=obs,
        )
        obs.flush()
        assert [f.tobytes() for f in result.fronts] == clean_fronts

        merged = grid_dir / "obs" / "merged"
        assert validate_run_dir(merged) == []
        spans = [
            json.loads(line)
            for line in (merged / "trace.jsonl").read_text().splitlines()
            if line.strip()
        ]
        grid_spans = [s for s in spans if s["name"] == GRID_SPAN_NAME]
        assert len(grid_spans) == 1
        cell_spans = [
            s for s in spans
            if s["name"] == CELL_SPAN_NAME
            and s["parent_id"] == grid_spans[0]["span_id"]
        ]
        for span in cell_spans:
            assert span["attrs"].get("worker")  # worker attribution
        covered = {s["attrs"]["cell"] for s in cell_spans}
        for key in GridManifest.load(grid_dir).cells_in("done"):
            assert key in covered
        # The SIGKILL'd attempt can leave no closed span; the cell's
        # lineage comes from the retry on a fresh worker.
        retried = [s for s in cell_spans if s["attrs"]["cell"] == 1]
        assert retried
        assert any(s["attrs"]["attempt"] >= 2 for s in retried)


class TestCoordinatorChaos:
    def test_coordinator_sigkill_then_resume_bit_identical(
        self, tmp_path, clean_fronts
    ):
        grid_dir = tmp_path / "grid"
        script = textwrap.dedent(
            """
            import sys, time
            from repro.experiments.datasets import dataset1
            from repro.experiments.repetitions import run_repetitions

            def slow(r, attempt):
                time.sleep(0.4)

            run_repetitions(
                dataset1(), repetitions=4, generations=3,
                population_size=10, grid_dir=sys.argv[1], fault_hook=slow,
            )
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(grid_dir)],
            cwd="/root/repo", env=env,
        )
        try:
            # Wait for at least one completed cell, then kill -9.
            results_dir = grid_dir / "results"
            deadline = time.time() + 60.0
            while time.time() < deadline:
                if results_dir.is_dir() and list(results_dir.glob("*.json")):
                    break
                if proc.poll() is not None:
                    pytest.fail("coordinator finished before it was killed")
                time.sleep(0.05)
            else:
                pytest.fail("no cell completed within 60s")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # The grid is genuinely half-finished.
        interrupted = grid_status(grid_dir)
        assert 0 < interrupted.counts["done"] < interrupted.total

        # Resume in this process (parallel, for good measure): the
        # surviving cells are verified and skipped, the rest re-driven.
        resumed = resume_grid(str(grid_dir), workers=2)
        assert [f.tobytes() for f in resumed.fronts] == clean_fronts
        assert grid_status(grid_dir).complete
