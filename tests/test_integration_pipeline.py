"""Cross-module integration tests: full pipelines end to end.

Each test exercises a realistic multi-subsystem flow, asserting the
handoffs (not re-testing each unit): data generation → system → GA →
analysis → export → reload.
"""

import json

import numpy as np
import pytest

from repro.analysis.export import figure_to_csv, render_svg_scatter
from repro.analysis.pareto_front import ParetoFront
from repro.analysis.efficiency import max_utility_per_energy_region
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.core.termination import HypervolumeStagnation
from repro.data.historical import HISTORICAL_EPC, HISTORICAL_ETC
from repro.data.special_purpose import append_special_purpose_columns, choose_accelerated_sets
from repro.data.synthetic import expand_matrix_pair
from repro.extensions.dvfs import DVFS_PRESETS, make_dvfs_evaluator
from repro.extensions.online import BudgetedUtilityPolicy, OnlineDispatcher, budget_from_front
from repro.heuristics import SEEDING_HEURISTICS, MinEnergy
from repro.model.serialization import load_system, save_system
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.events import simulate_reference
from repro.utility.builder import TUFBuilder
from repro.utility.presets import assign_presets
from repro.workload.generator import WorkloadGenerator
from repro.workload.importers import parse_swf_text, trace_from_swf

from repro.experiments.datasets import build_expanded_system
from test_workload_importers import SAMPLE as SWF_SAMPLE


class TestSyntheticToOptimization:
    """Section III-D2 data feeding the Section IV optimization."""

    def test_generated_system_optimizes(self):
        system = build_expanded_system(seed=51, horizon_seconds=600.0)
        trace = WorkloadGenerator.uniform_for(system.num_task_types).generate(
            120, 600.0, seed=52
        )
        evaluator = ScheduleEvaluator(system, trace, check_feasibility=False)
        seeds = [
            cls().build(system, trace) for cls in SEEDING_HEURISTICS.values()
        ]
        ga = NSGA2(evaluator, NSGA2Config(population_size=20), seeds=seeds, rng=53)
        hist = ga.run(12)
        front = ParetoFront(points=hist.final.front_points)
        region = max_utility_per_energy_region(front)
        assert region.peak_ratio > 0
        # The min-energy seed point survives on the front edge.
        e_seed, _ = evaluator.objectives(seeds[list(SEEDING_HEURISTICS).index("min-energy")])
        assert front.energy_range[0] <= e_seed + 1e-6

    def test_special_purpose_attracts_accelerated_tasks(self):
        """On the expanded system the min-energy mapping routes every
        accelerated task type to its special machine (10x less energy)."""
        system = build_expanded_system(seed=54, horizon_seconds=600.0)
        trace = WorkloadGenerator.uniform_for(system.num_task_types).generate(
            200, 600.0, seed=55
        )
        alloc = MinEnergy().build(system, trace)
        for i in range(trace.num_tasks):
            tt = system.task_types[int(trace.task_types[i])]
            if tt.is_special_purpose:
                machine = system.machines[int(alloc.machine_assignment[i])]
                assert machine.machine_type.index == tt.special_machine_type


class TestSerializationRoundTrips:
    def test_system_roundtrip_preserves_optimization(self, tmp_path):
        """A serialized+reloaded system produces bit-identical GA runs."""
        system = build_expanded_system(seed=56, horizon_seconds=600.0)
        path = tmp_path / "system.json"
        save_system(system, path)
        reloaded = load_system(path)
        trace = WorkloadGenerator.uniform_for(system.num_task_types).generate(
            60, 600.0, seed=57
        )
        h1 = NSGA2(
            ScheduleEvaluator(system, trace, check_feasibility=False),
            NSGA2Config(population_size=12), rng=58,
        ).run(6)
        h2 = NSGA2(
            ScheduleEvaluator(reloaded, trace, check_feasibility=False),
            NSGA2Config(population_size=12), rng=58,
        ).run(6)
        np.testing.assert_array_equal(
            h1.final.front_points, h2.final.front_points
        )


class TestSWFToAnalysis:
    def test_swf_through_full_stack(self, small_system, tmp_path):
        trace = trace_from_swf(
            parse_swf_text(SWF_SAMPLE),
            num_task_types=small_system.num_task_types,
            window=600.0,
        )
        evaluator = ScheduleEvaluator(small_system, trace)
        ga = NSGA2(evaluator, NSGA2Config(population_size=10), rng=60)
        hist = ga.run(5)
        front = ParetoFront(points=hist.final.front_points)
        svg = render_svg_scatter({"swf": front.points})
        assert svg.startswith("<svg")


class TestTerminationInPipeline:
    def test_stagnation_on_trivial_problem(self, tiny_system, tiny_trace):
        """On a tiny problem the GA converges and the stagnation
        criterion fires well before the generation bound."""
        evaluator = ScheduleEvaluator(tiny_system, tiny_trace,
                                      check_feasibility=False)
        ga = NSGA2(evaluator, NSGA2Config(population_size=12), rng=61)
        pts, _ = ga.current_front()
        ref = (float(pts[:, 0].max() * 10), 0.0)
        hist = ga.run_until(
            HypervolumeStagnation(window=8, reference=ref, min_generations=5),
            max_generations=2000,
        )
        assert hist.total_generations < 2000


class TestOfflineOnlineDVFSLoop:
    def test_three_extension_stack(self, small_system, small_trace):
        """DVFS offline optimization -> budget -> online dispatch, all
        on one scenario."""
        dvfs_ev = make_dvfs_evaluator(small_system, small_trace, DVFS_PRESETS)
        seed = MinEnergy().build(dvfs_ev.system, small_trace)
        ga = NSGA2(dvfs_ev, NSGA2Config(population_size=16), seeds=[seed], rng=62)
        front = ParetoFront(points=ga.run(15).final.front_points)
        budget = budget_from_front(front, slack=1.2)

        dispatcher = OnlineDispatcher(small_system, small_trace)
        outcome = dispatcher.run(BudgetedUtilityPolicy(), energy_budget=budget)
        assert outcome.energy <= budget + 1e-6


class TestCustomTUFPipeline:
    def test_builder_tufs_through_simulation(self):
        etc = np.array([[10.0, 30.0], [20.0, 5.0]])
        epc = np.array([[100.0, 60.0], [90.0, 140.0]])
        from repro.model.system import SystemModel

        system = SystemModel.from_matrices(etc, epc)
        tufs = [
            TUFBuilder(priority=5.0, urgency=0.01).hold(20.0).linear_to_zero().build(),
            TUFBuilder(priority=2.0, urgency=0.02).exponential_to(0.05).build(),
        ]
        system = system.with_utility_functions(tufs)
        trace = WorkloadGenerator.uniform_for(2).generate(30, 120.0, seed=63)
        evaluator = ScheduleEvaluator(system, trace)
        alloc = MinEnergy().build(system, trace)
        fast = evaluator.evaluate(alloc)
        ref = simulate_reference(system, trace, alloc)
        assert fast.utility == pytest.approx(ref.utility)
        assert fast.energy == pytest.approx(ref.energy)
