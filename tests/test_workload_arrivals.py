"""Tests for arrival processes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workload.arrivals import BurstyArrivals, PoissonArrivals, UniformArrivals


ALL_PROCESSES = [PoissonArrivals(), UniformArrivals(), BurstyArrivals()]


@pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
class TestCommonContract:
    def test_sorted_in_window(self, process):
        times = process.generate(100, 900.0, seed=1)
        assert times.shape == (100,)
        assert np.all(np.diff(times) >= 0)
        assert np.all((times >= 0) & (times < 900.0))

    def test_zero_count(self, process):
        assert process.generate(0, 10.0, seed=1).shape == (0,)

    def test_negative_count_rejected(self, process):
        with pytest.raises(WorkloadError):
            process.generate(-1, 10.0)

    def test_bad_window_rejected(self, process):
        with pytest.raises(WorkloadError):
            process.generate(5, 0.0)


class TestPoisson:
    def test_deterministic(self):
        p = PoissonArrivals()
        np.testing.assert_array_equal(
            p.generate(50, 100.0, seed=3), p.generate(50, 100.0, seed=3)
        )

    def test_approximately_uniform(self):
        times = PoissonArrivals().generate(100_000, 1.0, seed=4)
        # Mean of Uniform(0,1) order statistics is 0.5.
        assert times.mean() == pytest.approx(0.5, abs=0.01)


class TestUniform:
    def test_exact_spacing(self):
        times = UniformArrivals().generate(4, 100.0)
        np.testing.assert_allclose(times, [0.0, 25.0, 50.0, 75.0])

    def test_seed_irrelevant(self):
        u = UniformArrivals()
        np.testing.assert_array_equal(
            u.generate(10, 50.0, seed=1), u.generate(10, 50.0, seed=999)
        )


class TestBursty:
    def test_clustering(self):
        """Bursty arrivals concentrate mass near burst centers."""
        b = BurstyArrivals(num_bursts=2, spread_fraction=0.05)
        times = b.generate(10_000, 100.0, seed=5)
        # Centers at 25 and 75; count arrivals within +-10 of centers.
        near = np.sum((np.abs(times - 25.0) < 10.0) | (np.abs(times - 75.0) < 10.0))
        assert near / times.size > 0.95

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BurstyArrivals(num_bursts=0)
        with pytest.raises(WorkloadError):
            BurstyArrivals(spread_fraction=0.0)


@settings(max_examples=30, deadline=None)
@given(
    count=st.integers(1, 200),
    window=st.floats(0.1, 1e5),
    seed=st.integers(0, 2**31),
)
def test_property_all_processes_respect_window(count, window, seed):
    for process in ALL_PROCESSES:
        times = process.generate(count, window, seed=seed)
        assert times.shape == (count,)
        assert np.all((times >= 0) & (times < window))
        assert np.all(np.diff(times) >= 0)
