"""Tests for arrival processes."""

import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workload.arrivals import (
    BurstyArrivals,
    PoissonArrivals,
    ProfileArrivals,
    UniformArrivals,
)


ALL_PROCESSES = [
    PoissonArrivals(),
    UniformArrivals(),
    BurstyArrivals(),
    ProfileArrivals(weights=(1.0, 3.0, 1.0)),
]


@pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
class TestCommonContract:
    def test_sorted_in_window(self, process):
        times = process.generate(100, 900.0, seed=1)
        assert times.shape == (100,)
        assert np.all(np.diff(times) >= 0)
        assert np.all((times >= 0) & (times < 900.0))

    def test_zero_count(self, process):
        assert process.generate(0, 10.0, seed=1).shape == (0,)

    def test_negative_count_rejected(self, process):
        with pytest.raises(WorkloadError):
            process.generate(-1, 10.0)

    def test_bad_window_rejected(self, process):
        with pytest.raises(WorkloadError):
            process.generate(5, 0.0)


class TestPoisson:
    def test_deterministic(self):
        p = PoissonArrivals()
        np.testing.assert_array_equal(
            p.generate(50, 100.0, seed=3), p.generate(50, 100.0, seed=3)
        )

    def test_approximately_uniform(self):
        times = PoissonArrivals().generate(100_000, 1.0, seed=4)
        # Mean of Uniform(0,1) order statistics is 0.5.
        assert times.mean() == pytest.approx(0.5, abs=0.01)


class TestUniform:
    def test_exact_spacing(self):
        times = UniformArrivals().generate(4, 100.0)
        np.testing.assert_allclose(times, [0.0, 25.0, 50.0, 75.0])

    def test_seed_irrelevant(self):
        u = UniformArrivals()
        np.testing.assert_array_equal(
            u.generate(10, 50.0, seed=1), u.generate(10, 50.0, seed=999)
        )


class TestBursty:
    def test_clustering(self):
        """Bursty arrivals concentrate mass near burst centers."""
        b = BurstyArrivals(num_bursts=2, spread_fraction=0.05)
        times = b.generate(10_000, 100.0, seed=5)
        # Centers at 25 and 75; count arrivals within +-10 of centers.
        near = np.sum((np.abs(times - 25.0) < 10.0) | (np.abs(times - 75.0) < 10.0))
        assert near / times.size > 0.95

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BurstyArrivals(num_bursts=0)
        with pytest.raises(WorkloadError):
            BurstyArrivals(spread_fraction=0.0)


class TestSingleBurst:
    def test_single_burst_clusters_at_center(self):
        """num_bursts=1 degenerates to one Gaussian cluster at W/2."""
        b = BurstyArrivals(num_bursts=1, spread_fraction=0.02)
        times = b.generate(5_000, 100.0, seed=11)
        assert times.shape == (5_000,)
        assert times.mean() == pytest.approx(50.0, abs=0.5)
        # Essentially everything within 4 sigma of the single center.
        assert np.sum(np.abs(times - 50.0) < 8.0) / times.size > 0.999

    def test_single_burst_stays_half_open(self):
        """Extreme jitter clamps to [0, window) — the right boundary is
        excluded even when the Gaussian tail lands far past it."""
        b = BurstyArrivals(num_bursts=1, spread_fraction=50.0)
        times = b.generate(2_000, 10.0, seed=12)
        assert np.all((times >= 0.0) & (times < 10.0))
        # With sigma = 500 on a 10s window, both clamp rails are hit:
        # the max sits exactly one ulp below the window edge.
        assert times.min() == 0.0
        assert times.max() == np.nextafter(10.0, 0.0)


class TestBoundaryArrivals:
    def test_profile_never_emits_window_edge(self):
        """The last bucket's samples stay strictly below the window."""
        p = ProfileArrivals(weights=(0.0, 0.0, 1.0))  # all mass at the end
        times = p.generate(10_000, 30.0, seed=13)
        assert np.all(times >= 20.0)
        assert np.all(times < 30.0)

    def test_uniform_first_arrival_is_zero(self):
        """UniformArrivals includes the left boundary (arrival at 0.0),
        matching the half-open [0, window) contract."""
        times = UniformArrivals().generate(5, 10.0)
        assert times[0] == 0.0
        assert times[-1] < 10.0


class TestCrossProcessDeterminism:
    """A fixed seed regenerates bit-identical arrivals in a fresh
    interpreter — the property SWF replay, the online service stream,
    and multi-process grid drivers all rely on."""

    SCRIPT = (
        "import json\n"
        "from repro.workload.arrivals import (BurstyArrivals,\n"
        "    PoissonArrivals, ProfileArrivals, UniformArrivals)\n"
        "procs = [PoissonArrivals(), UniformArrivals(), BurstyArrivals(),\n"
        "    ProfileArrivals(weights=(1.0, 3.0, 1.0))]\n"
        "print(json.dumps([p.generate(40, 120.0, seed=99).tolist()\n"
        "    for p in procs]))\n"
    )

    def test_fixed_seed_identical_across_interpreters(self):
        import json

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True, text=True, env=env, check=True,
        )
        remote = json.loads(proc.stdout)
        local = [
            p.generate(40, 120.0, seed=99).tolist() for p in ALL_PROCESSES
        ]
        assert remote == local


@settings(max_examples=30, deadline=None)
@given(
    count=st.integers(1, 200),
    window=st.floats(0.1, 1e5),
    seed=st.integers(0, 2**31),
)
def test_property_all_processes_respect_window(count, window, seed):
    for process in ALL_PROCESSES:
        times = process.generate(count, window, seed=seed)
        assert times.shape == (count,)
        assert np.all((times >= 0) & (times < window))
        assert np.all(np.diff(times) >= 0)
