"""Shared fixtures for the test suite.

Fixture tiers:

* ``tiny_*`` — handcrafted 3-task-type / 4-machine systems where every
  expected number can be verified by hand;
* ``small_*`` — randomized but seeded 20-80 task scenarios for
  behavioural tests;
* ``ds1_bundle`` / ``expanded_bundle`` — session-scoped paper data sets
  (built once; several minutes of tests share them).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.datasets import dataset1, dataset2
from repro.model.system import SystemModel
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.schedule import ResourceAllocation
from repro.utility.intervals import DecayShape, UtilityClass, UtilityInterval
from repro.utility.presets import assign_presets
from repro.utility.tuf import TimeUtilityFunction
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import Trace


# -- tiny handcrafted system --------------------------------------------------

TINY_ETC = np.array(
    [
        [10.0, 20.0, 5.0, 40.0],
        [30.0, 15.0, 25.0, 10.0],
        [8.0, 8.0, 8.0, 8.0],
    ]
)
TINY_EPC = np.array(
    [
        [100.0, 50.0, 200.0, 30.0],
        [80.0, 120.0, 90.0, 150.0],
        [60.0, 70.0, 110.0, 40.0],
    ]
)


def make_tiny_system(with_tufs: bool = True) -> SystemModel:
    """3 task types x 4 machine types, one machine each, linear TUFs."""
    system = SystemModel.from_matrices(TINY_ETC.copy(), TINY_EPC.copy())
    if with_tufs:
        tufs = [
            TimeUtilityFunction.linear(priority=10.0, urgency=1.0 / 100.0),
            TimeUtilityFunction.exponential(priority=5.0, urgency=1.0 / 50.0),
            TimeUtilityFunction.hard_deadline(priority=8.0, deadline_seconds=60.0),
        ]
        system = system.with_utility_functions(tufs)
    return system


@pytest.fixture
def tiny_system() -> SystemModel:
    """The handcrafted 3x4 system with TUFs."""
    return make_tiny_system()


@pytest.fixture
def tiny_trace() -> Trace:
    """Six tasks, two of each type, arrivals every 5 seconds."""
    return Trace(
        task_types=np.array([0, 1, 2, 0, 1, 2]),
        arrival_times=np.array([0.0, 5.0, 10.0, 15.0, 20.0, 25.0]),
        window=30.0,
    )


@pytest.fixture
def tiny_evaluator(tiny_system, tiny_trace) -> ScheduleEvaluator:
    """Evaluator over the tiny fixtures."""
    return ScheduleEvaluator(tiny_system, tiny_trace)


# -- seeded random small scenario ----------------------------------------------


@pytest.fixture
def small_system() -> SystemModel:
    """Seeded random 5 task types x 6 machine types system with TUFs."""
    rng = np.random.default_rng(42)
    etc = rng.uniform(5.0, 120.0, size=(5, 6))
    epc = rng.uniform(40.0, 250.0, size=(5, 6))
    system = SystemModel.from_matrices(etc, epc, machines_per_type=[1, 2, 1, 1, 2, 1])
    return system.with_utility_functions(assign_presets(5, 600.0, seed=43))


@pytest.fixture
def small_trace() -> Trace:
    """Eighty tasks over a 600-second window."""
    return WorkloadGenerator.uniform_for(5).generate(80, 600.0, seed=44)


@pytest.fixture
def small_evaluator(small_system, small_trace) -> ScheduleEvaluator:
    """Evaluator over the small fixtures."""
    return ScheduleEvaluator(small_system, small_trace)


def random_allocation(
    system: SystemModel, trace: Trace, seed: int
) -> ResourceAllocation:
    """A random feasible allocation for (system, trace)."""
    rng = np.random.default_rng(seed)
    T = trace.num_tasks
    assignment = np.empty(T, dtype=np.int64)
    for t in range(T):
        feasible = np.flatnonzero(
            system.feasible_task_machine[trace.task_types[t]]
        )
        assignment[t] = rng.choice(feasible)
    return ResourceAllocation(
        machine_assignment=assignment,
        scheduling_order=rng.permutation(T),
    )


# -- paper data sets (session-scoped: expensive) ---------------------------------


@pytest.fixture(scope="session")
def ds1_bundle():
    """Data set 1 (real data, 250 tasks / 15 min)."""
    return dataset1(seed=123)


@pytest.fixture(scope="session")
def ds2_bundle():
    """Data set 2 (expanded system, 1000 tasks / 15 min)."""
    return dataset2(seed=123)
