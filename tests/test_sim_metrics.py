"""Tests for auxiliary schedule metrics."""

import numpy as np
import pytest

from repro.sim.metrics import compute_metrics
from repro.sim.schedule import ResourceAllocation
from repro.sim.evaluator import ScheduleEvaluator
from repro.workload.trace import Trace

from conftest import random_allocation


@pytest.fixture
def evaluated(tiny_system):
    trace = Trace(
        task_types=np.array([0, 1, 2]),
        arrival_times=np.array([0.0, 0.0, 0.0]),
        window=10.0,
    )
    alloc = ResourceAllocation(
        machine_assignment=np.array([0, 0, 1]),
        scheduling_order=np.array([0, 1, 2]),
    )
    ev = ScheduleEvaluator(tiny_system, trace)
    return tiny_system, trace, alloc, ev.evaluate(alloc)


class TestMetrics:
    def test_makespan(self, evaluated):
        system, trace, alloc, res = evaluated
        m = compute_metrics(system, trace, alloc, res)
        # Machine 0: type 0 (10s) then type 1 (30s) -> 40; machine 1:
        # type 2 -> 8.
        assert m.makespan == pytest.approx(40.0)

    def test_busy_time_and_utilization(self, evaluated):
        system, trace, alloc, res = evaluated
        m = compute_metrics(system, trace, alloc, res)
        np.testing.assert_allclose(m.machine_busy_time, [40.0, 8.0, 0.0, 0.0])
        np.testing.assert_allclose(m.machine_utilization, [1.0, 0.2, 0.0, 0.0])

    def test_machine_energy_sums_to_total(self, evaluated):
        system, trace, alloc, res = evaluated
        m = compute_metrics(system, trace, alloc, res)
        assert m.machine_energy.sum() == pytest.approx(res.energy)

    def test_waiting_and_flow(self, evaluated):
        system, trace, alloc, res = evaluated
        m = compute_metrics(system, trace, alloc, res)
        # Waiting: task 0: 0, task 1: 10, task 2: 0.
        assert m.mean_waiting_time == pytest.approx(10.0 / 3.0)
        assert m.max_waiting_time == pytest.approx(10.0)
        assert m.total_flow_time == pytest.approx(40.0 + 8.0 + 10.0)

    def test_utility_fraction_in_unit_interval(self, small_system, small_trace,
                                               small_evaluator):
        alloc = random_allocation(small_system, small_trace, seed=3)
        res = small_evaluator.evaluate(alloc)
        m = compute_metrics(small_system, small_trace, alloc, res)
        assert 0.0 <= m.utility_fraction <= 1.0
