"""Tests for the four seeding heuristics (Section V-B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.heuristics import (
    SEEDING_HEURISTICS,
    MaxUtility,
    MaxUtilityPerEnergy,
    MinEnergy,
    MinMinCompletionTime,
)
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.events import simulate_reference

from conftest import random_allocation
from test_sim_events_equivalence import random_scenario


ALL = [MinEnergy, MaxUtility, MaxUtilityPerEnergy, MinMinCompletionTime]


@pytest.mark.parametrize("cls", ALL, ids=lambda c: c.name)
class TestCommonContract:
    def test_produces_feasible_allocation(self, small_system, small_trace, cls):
        alloc = cls().build(small_system, small_trace)
        assert alloc.num_tasks == small_trace.num_tasks
        alloc.validate_against(
            small_system.num_machines,
            small_system.feasible_task_machine,
            small_trace.task_types,
        )

    def test_deterministic(self, small_system, small_trace, cls):
        a = cls().build(small_system, small_trace)
        b = cls().build(small_system, small_trace)
        np.testing.assert_array_equal(a.machine_assignment, b.machine_assignment)
        np.testing.assert_array_equal(a.scheduling_order, b.scheduling_order)

    def test_evaluates_cleanly(self, small_system, small_trace, small_evaluator, cls):
        alloc = cls().build(small_system, small_trace)
        res = small_evaluator.evaluate(alloc)
        assert res.energy > 0 and res.utility >= 0


class TestMinEnergy:
    def test_every_task_on_min_eec_machine(self, small_system, small_trace):
        alloc = MinEnergy().build(small_system, small_trace)
        eec = small_system.eec_task_machine[small_trace.task_types]
        chosen = eec[np.arange(small_trace.num_tasks), alloc.machine_assignment]
        np.testing.assert_allclose(chosen, eec.min(axis=1))

    def test_global_energy_optimality(self, small_system, small_trace,
                                      small_evaluator):
        """The paper: "This heuristic will create a solution with the
        minimum possible energy consumption" — no random allocation can
        beat it."""
        best = small_evaluator.evaluate(
            MinEnergy().build(small_system, small_trace)
        ).energy
        for seed in range(10):
            alloc = random_allocation(small_system, small_trace, seed=seed)
            assert small_evaluator.evaluate(alloc).energy >= best - 1e-9


class TestMaxUtility:
    def test_beats_min_energy_on_utility(self, small_system, small_trace,
                                         small_evaluator):
        u_max = small_evaluator.evaluate(
            MaxUtility().build(small_system, small_trace)
        ).utility
        u_min_e = small_evaluator.evaluate(
            MinEnergy().build(small_system, small_trace)
        ).utility
        assert u_max >= u_min_e

    def test_greedy_choice_is_locally_optimal_for_first_task(
        self, small_system, small_trace, small_evaluator
    ):
        """The first task (empty queues) must go to a machine whose
        utility is maximal over all machines."""
        alloc = MaxUtility().build(small_system, small_trace)
        tt = int(small_trace.task_types[0])
        arr = float(small_trace.arrival_times[0])
        tuf = small_system.task_types[tt].utility_function
        etc = small_system.etc_task_machine[tt]
        utilities = np.array([
            tuf(arr + etc[m] - arr) if np.isfinite(etc[m]) else -np.inf
            for m in range(small_system.num_machines)
        ])
        chosen = utilities[alloc.machine_assignment[0]]
        assert chosen == pytest.approx(utilities.max())


class TestMaxUtilityPerEnergy:
    def test_intermediate_character(self, small_system, small_trace,
                                    small_evaluator):
        """U/E of the ratio heuristic is at least that of both pure
        heuristics (it directly optimizes the ratio greedily; allow
        a small slack for greedy non-optimality)."""
        def upe(cls):
            res = small_evaluator.evaluate(cls().build(small_system, small_trace))
            return res.utility / res.energy

        ratio = upe(MaxUtilityPerEnergy)
        assert ratio >= upe(MinEnergy) * 0.8
        assert ratio >= 0  # sanity


class TestMinMin:
    def test_matches_naive_min_min(self, tiny_system, tiny_trace):
        """The incremental-cache implementation equals a naive O(T^2 M)
        reference on a small instance."""
        alloc = MinMinCompletionTime().build(tiny_system, tiny_trace)

        # Naive reference.
        etc = tiny_system.etc_task_machine[tiny_trace.task_types]
        arrivals = tiny_trace.arrival_times
        T, M = etc.shape
        available = np.zeros(M)
        unmapped = set(range(T))
        naive_assign = np.empty(T, dtype=int)
        naive_order = np.empty(T, dtype=int)
        for k in range(T):
            best = None
            for t in sorted(unmapped):
                comp = np.maximum(available, arrivals[t]) + etc[t]
                m = int(np.argmin(comp))
                if best is None or comp[m] < best[0]:
                    best = (comp[m], t, m)
            _, t, m = best
            naive_assign[t] = m
            naive_order[t] = k
            unmapped.discard(t)
            available[m] = best[0]

        np.testing.assert_array_equal(alloc.machine_assignment, naive_assign)
        np.testing.assert_array_equal(alloc.scheduling_order, naive_order)

    def test_order_reproduces_queue_semantics(self, small_system, small_trace):
        """Simulated completion times equal the heuristic's internal
        bookkeeping — the scheduling keys encode Min-Min's mapping
        sequence faithfully."""
        alloc = MinMinCompletionTime().build(small_system, small_trace)
        ref = simulate_reference(small_system, small_trace, alloc)
        # Re-derive availability by walking tasks in mapping order.
        etc = small_system.etc_task_machine[small_trace.task_types]
        order = np.argsort(alloc.scheduling_order)
        available = np.zeros(small_system.num_machines)
        for t in order:
            m = int(alloc.machine_assignment[t])
            start = max(available[m], float(small_trace.arrival_times[t]))
            finish = start + float(etc[t, m])
            assert ref.completion_times[t] == pytest.approx(finish)
            available[m] = finish

    def test_best_utility_of_the_four(self, small_system, small_trace,
                                      small_evaluator):
        """On queue-bound workloads Min-Min's reordering typically earns
        the most utility (the paper's Fig. 4 narrative)."""
        utilities = {
            name: small_evaluator.evaluate(
                cls().build(small_system, small_trace)
            ).utility
            for name, cls in SEEDING_HEURISTICS.items()
        }
        assert utilities["min-min-completion-time"] >= utilities["min-energy"]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_heuristics_feasible_on_random_systems(seed):
    system, trace = random_scenario(seed, 30, 4, 5)
    evaluator = ScheduleEvaluator(system, trace)
    for cls in ALL:
        alloc = cls().build(system, trace)
        res = evaluator.evaluate(alloc)
        assert np.isfinite(res.energy) and np.isfinite(res.utility)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_min_energy_lower_bounds_all_heuristics(seed):
    system, trace = random_scenario(seed, 30, 4, 5)
    evaluator = ScheduleEvaluator(system, trace)
    energies = {
        cls.name: evaluator.evaluate(cls().build(system, trace)).energy
        for cls in ALL
    }
    for name, e in energies.items():
        assert e >= energies["min-energy"] - 1e-9, name
