"""Tests for the machine-checkable paper claims."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.claims import ClaimResult, verify_paper_claims
from repro.experiments.figures import figure3


@pytest.fixture(scope="module")
def fig():
    return figure3(checkpoints=[3, 15], population_size=24, base_seed=31)


class TestVerifyClaims:
    def test_all_claims_evaluated(self, fig):
        results = verify_paper_claims(fig)
        names = {r.claim for r in results}
        assert names == {
            "fronts-improve",
            "min-energy-owns-low-end",
            "min-min-best-utility-early",
            "seeded-dominate-random-early",
            "efficient-region-exists",
            "convergence-trend",
        }

    def test_structural_claims_pass_on_real_run(self, fig):
        results = {r.claim: r for r in verify_paper_claims(fig)}
        # These hold for any correct engine regardless of scale.
        assert results["fronts-improve"].passed, results["fronts-improve"].detail
        assert results["min-energy-owns-low-end"].passed
        assert results["min-min-best-utility-early"].passed
        assert results["efficient-region-exists"].passed

    def test_details_are_informative(self, fig):
        for r in verify_paper_claims(fig):
            assert isinstance(r, ClaimResult)
            assert r.detail

    def test_convergence_claim_optional(self, fig):
        results = verify_paper_claims(fig, include_convergence=False)
        assert all(r.claim != "convergence-trend" for r in results)

    def test_missing_populations_rejected(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.datasets import dataset1
        from repro.experiments.figures import FigureResult
        from repro.experiments.runner import run_seeded_populations

        cfg = ExperimentConfig(
            population_size=10, generations=2, checkpoints=(2,), base_seed=1
        )
        partial = run_seeded_populations(
            dataset1(seed=1), cfg, labels=["random"]
        )
        fig_like = FigureResult(
            name="figure3", result=partial, paper_checkpoints=(100,)
        )
        with pytest.raises(ExperimentError):
            verify_paper_claims(fig_like)

    def test_dominate_fraction_threshold(self, fig):
        loose = {r.claim: r for r in verify_paper_claims(fig, dominate_fraction=0.0)}
        assert loose["seeded-dominate-random-early"].passed
        strict = {r.claim: r for r in verify_paper_claims(fig, dominate_fraction=1.01)}
        assert not strict["seeded-dominate-random-early"].passed
