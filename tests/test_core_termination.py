"""Tests for termination criteria and NSGA2.run_until."""

import numpy as np
import pytest

from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.core.termination import (
    AnyOf,
    HypervolumeStagnation,
    MaxEvaluations,
    MaxGenerations,
    MaxWallClock,
    TerminationContext,
)
from repro.errors import OptimizationError


def ctx(generation=0, evaluations=0, elapsed=0.0, front=None):
    if front is None:
        front = np.array([[1.0, 1.0]])
    return TerminationContext(
        generation=generation,
        evaluations=evaluations,
        elapsed_seconds=elapsed,
        front_points=front,
    )


class TestCriteria:
    def test_max_generations(self):
        c = MaxGenerations(5)
        assert not c.should_stop(ctx(generation=4))
        assert c.should_stop(ctx(generation=5))

    def test_max_evaluations(self):
        c = MaxEvaluations(100)
        assert not c.should_stop(ctx(evaluations=99))
        assert c.should_stop(ctx(evaluations=100))

    def test_max_wall_clock(self):
        c = MaxWallClock(1.0)
        assert not c.should_stop(ctx(elapsed=0.5))
        assert c.should_stop(ctx(elapsed=1.5))

    def test_any_of(self):
        c = AnyOf([MaxGenerations(10), MaxEvaluations(50)])
        assert not c.should_stop(ctx(generation=5, evaluations=40))
        assert c.should_stop(ctx(generation=5, evaluations=60))
        assert c.should_stop(ctx(generation=10, evaluations=10))

    def test_validation(self):
        with pytest.raises(OptimizationError):
            MaxGenerations(-1)
        with pytest.raises(OptimizationError):
            MaxEvaluations(0)
        with pytest.raises(OptimizationError):
            MaxWallClock(0.0)
        with pytest.raises(OptimizationError):
            AnyOf([])
        with pytest.raises(OptimizationError):
            HypervolumeStagnation(window=0, reference=(1.0, 0.0))


class TestStagnation:
    def test_stops_on_flat_front(self):
        c = HypervolumeStagnation(window=3, reference=(10.0, 0.0),
                                  min_generations=0)
        front = np.array([[1.0, 5.0]])
        stops = [c.should_stop(ctx(generation=g, front=front)) for g in range(6)]
        # First call establishes the best; next three stall; 4th stalled
        # call fires.
        assert True in stops
        assert stops.index(True) == 3

    def test_improvement_resets(self):
        c = HypervolumeStagnation(window=2, reference=(10.0, 0.0),
                                  min_generations=0)
        assert not c.should_stop(ctx(generation=0, front=np.array([[1.0, 5.0]])))
        assert not c.should_stop(ctx(generation=1, front=np.array([[1.0, 5.0]])))
        # Improvement: larger utility.
        assert not c.should_stop(ctx(generation=2, front=np.array([[1.0, 7.0]])))
        assert not c.should_stop(ctx(generation=3, front=np.array([[1.0, 7.0]])))
        assert c.should_stop(ctx(generation=4, front=np.array([[1.0, 7.0]])))

    def test_min_generations_respected(self):
        c = HypervolumeStagnation(window=1, reference=(10.0, 0.0),
                                  min_generations=5)
        front = np.array([[1.0, 5.0]])
        for g in range(5):
            assert not c.should_stop(ctx(generation=g, front=front))
        assert c.should_stop(ctx(generation=5, front=front))

    def test_reset(self):
        c = HypervolumeStagnation(window=1, reference=(10.0, 0.0),
                                  min_generations=0)
        front = np.array([[1.0, 5.0]])
        c.should_stop(ctx(generation=0, front=front))
        c.should_stop(ctx(generation=1, front=front))
        c.reset()
        assert not c.should_stop(ctx(generation=0, front=front))


class TestRunUntil:
    def test_stops_at_generation_budget(self, small_evaluator):
        ga = NSGA2(small_evaluator, NSGA2Config(population_size=12), rng=0)
        hist = ga.run_until(MaxGenerations(7))
        assert hist.total_generations == 7
        assert hist.final.front_assignments is not None

    def test_stops_at_evaluation_budget(self, small_evaluator):
        ga = NSGA2(small_evaluator, NSGA2Config(population_size=10), rng=1)
        hist = ga.run_until(MaxEvaluations(55))
        # init 10 + 5 generations x 10 = 60 >= 55 (fires after gen 5).
        assert hist.total_evaluations == 60

    def test_periodic_snapshots(self, small_evaluator):
        ga = NSGA2(small_evaluator, NSGA2Config(population_size=10), rng=2)
        hist = ga.run_until(MaxGenerations(6), snapshot_every=2)
        gens = [s.generation for s in hist.snapshots]
        assert gens == [2, 4, 6]

    def test_stagnation_terminates_before_bound(self, small_evaluator):
        ga = NSGA2(small_evaluator, NSGA2Config(population_size=12), rng=3)
        pts, _ = ga.current_front()
        ref = (float(pts[:, 0].max() * 10), 0.0)
        hist = ga.run_until(
            HypervolumeStagnation(window=5, reference=ref, min_generations=5),
            max_generations=500,
        )
        assert hist.total_generations < 500
