"""Tests for the Section III-D2 synthetic expansion pipeline."""

import numpy as np
import pytest

from repro.data.heterogeneity import compare_stats, mvsk
from repro.data.historical import HISTORICAL_EPC, HISTORICAL_ETC
from repro.data.synthetic import expand_matrix, expand_matrix_pair
from repro.errors import DataGenerationError


class TestExpandMatrix:
    def test_real_rows_preserved(self):
        exp = expand_matrix(HISTORICAL_ETC, 25, seed=1)
        np.testing.assert_array_equal(exp.values[:5], HISTORICAL_ETC)
        assert exp.num_real == 5 and exp.num_new == 25
        assert exp.values.shape == (30, 9)

    def test_new_rows_strictly_positive(self):
        exp = expand_matrix(HISTORICAL_ETC, 50, seed=2)
        assert np.all(exp.new_rows() > 0)
        assert np.all(np.isfinite(exp.new_rows()))

    def test_zero_new_rows(self):
        exp = expand_matrix(HISTORICAL_ETC, 0, seed=3)
        assert exp.num_new == 0
        np.testing.assert_array_equal(exp.values, HISTORICAL_ETC)

    def test_deterministic(self):
        a = expand_matrix(HISTORICAL_ETC, 10, seed=7)
        b = expand_matrix(HISTORICAL_ETC, 10, seed=7)
        np.testing.assert_array_equal(a.values, b.values)

    def test_seed_sensitivity(self):
        a = expand_matrix(HISTORICAL_ETC, 10, seed=7)
        b = expand_matrix(HISTORICAL_ETC, 10, seed=8)
        assert not np.array_equal(a.new_rows(), b.new_rows())

    def test_negative_count_rejected(self):
        with pytest.raises(DataGenerationError):
            expand_matrix(HISTORICAL_ETC, -1)

    def test_infeasible_base_rejected(self):
        bad = HISTORICAL_ETC.copy()
        bad[0, 0] = np.inf
        with pytest.raises(DataGenerationError):
            expand_matrix(bad, 5)

    def test_nonpositive_base_rejected(self):
        bad = HISTORICAL_ETC.copy()
        bad[0, 0] = 0.0
        with pytest.raises(DataGenerationError):
            expand_matrix(bad, 5)


class TestHeterogeneityPreservation:
    """The paper's core claim for the method: synthetic data exhibits
    similar heterogeneity characteristics to the real data."""

    def test_row_average_stats_similar(self):
        exp = expand_matrix(HISTORICAL_ETC, 400, seed=11)
        real = exp.row_average_stats
        synth = mvsk(exp.new_rows().mean(axis=1))
        assert compare_stats(real, synth)

    def test_ratio_stats_similar_per_machine(self):
        exp = expand_matrix(HISTORICAL_ETC, 400, seed=12)
        new_rows = exp.new_rows()
        new_ratios = new_rows / new_rows.mean(axis=1)[:, None]
        similar = 0
        for j in range(HISTORICAL_ETC.shape[1]):
            if compare_stats(exp.ratio_stats[j], mvsk(new_ratios[:, j])):
                similar += 1
        # The product of two sampled quantities distorts per-machine
        # ratios slightly; require a clear majority to track.
        assert similar >= 6

    def test_epc_expansion_also_similar(self):
        _, epc_exp = expand_matrix_pair(HISTORICAL_ETC, HISTORICAL_EPC, 400, seed=13)
        synth = mvsk(epc_exp.new_rows().mean(axis=1))
        assert compare_stats(epc_exp.row_average_stats, synth)


class TestExpandPair:
    def test_shapes_match(self):
        etc_exp, epc_exp = expand_matrix_pair(HISTORICAL_ETC, HISTORICAL_EPC, 25, seed=5)
        assert etc_exp.values.shape == epc_exp.values.shape == (30, 9)

    def test_etc_independent_of_epc(self):
        """The ETC expansion must be identical whether or not an EPC
        expansion follows (independent spawned streams)."""
        etc_only = expand_matrix_pair(HISTORICAL_ETC, HISTORICAL_EPC, 10, seed=9)[0]
        etc_again = expand_matrix_pair(HISTORICAL_ETC, HISTORICAL_EPC, 10, seed=9)[0]
        np.testing.assert_array_equal(etc_only.values, etc_again.values)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataGenerationError):
            expand_matrix_pair(HISTORICAL_ETC, HISTORICAL_EPC[:, :4], 5)
