"""Tests for the durable-write receipt returned by atomic_write_json."""

import json

from repro.storage import WriteReceipt, atomic_write_json, read_json_artifact


class TestWriteReceipt:
    def test_receipt_reports_bytes_and_fsync(self, tmp_path):
        path = tmp_path / "artifact.json"
        receipt = atomic_write_json(path, {"rows": list(range(50))})
        assert isinstance(receipt, WriteReceipt)
        assert receipt.bytes_written == path.stat().st_size
        assert receipt.fsync_seconds >= 0.0
        assert read_json_artifact(path) == {"rows": list(range(50))}

    def test_receipt_tracks_payload_size(self, tmp_path):
        small = atomic_write_json(tmp_path / "s.json", {"k": 1})
        large = atomic_write_json(tmp_path / "l.json", {"k": "x" * 4096})
        assert large.bytes_written > small.bytes_written

    def test_receipt_is_frozen(self, tmp_path):
        receipt = atomic_write_json(tmp_path / "a.json", {})
        try:
            receipt.bytes_written = 0
            raised = False
        except AttributeError:
            raised = True
        assert raised
