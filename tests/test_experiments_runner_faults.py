"""Fault tolerance of the seeded-population runner.

Recovery paths (retry with backoff, graceful degradation, checkpointed
retries, per-attempt timeouts) are exercised with deterministic
injected faults — see :mod:`repro.testing.faults`.
"""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import DatasetBundle
from repro.experiments.runner import (
    PopulationFailure,
    RetryPolicy,
    run_seeded_populations,
)
from repro.model.system import SystemModel
from repro.testing.faults import FaultPlan
from repro.utility.presets import assign_presets
from repro.workload.generator import WorkloadGenerator

# Pinned to the per-row kernel: the sub-second per-attempt timeouts
# below are calibrated against its startup cost at this tiny scale
# (the batch kernel's table setup would eat most of the budget).
CFG = ExperimentConfig(
    population_size=10, generations=4, checkpoints=(2, 4), base_seed=5,
    kernel_method="fast",
)

#: No-delay policy so retry tests run in milliseconds.
FAST = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def bundle() -> DatasetBundle:
    rng = np.random.default_rng(42)
    etc = rng.uniform(5.0, 120.0, size=(5, 6))
    epc = rng.uniform(40.0, 250.0, size=(5, 6))
    system = SystemModel.from_matrices(
        etc, epc, machines_per_type=[1, 2, 1, 1, 2, 1]
    ).with_utility_functions(assign_presets(5, 600.0, seed=43))
    trace = WorkloadGenerator.uniform_for(5).generate(40, 600.0, seed=44)
    return DatasetBundle(
        name="tiny", system=system, trace=trace,
        horizon_seconds=600.0, seed=0,
    )


class TestLabelValidation:
    def test_duplicate_labels_rejected(self, bundle):
        with pytest.raises(ExperimentError, match="duplicate"):
            run_seeded_populations(
                bundle, CFG, labels=["random", "min-energy", "random"]
            )

    def test_unknown_label_still_rejected(self, bundle):
        with pytest.raises(ExperimentError, match="unknown"):
            run_seeded_populations(bundle, CFG, labels=["bogus"])


class TestRetry:
    def test_transient_fault_recovers(self, bundle):
        """A worker that fails twice then succeeds still yields a
        complete result."""
        plan = FaultPlan().transient("min-energy", failures=2)
        sleeps = []
        result = run_seeded_populations(
            bundle, CFG, labels=["min-energy", "random"],
            retry=RetryPolicy(max_attempts=3, backoff_base=0.5, jitter=0.0),
            fault_hook=plan.on_attempt,
            sleep=sleeps.append,
        )
        assert set(result.histories) == {"min-energy", "random"}
        assert result.failures == ()
        # Two failed attempts => two exponential backoffs (0.5, 1.0).
        assert sleeps == [0.5, 1.0]

    def test_retry_matches_unfaulted_run(self, bundle):
        """Retries do not perturb results: derived RNG streams restart
        identically on every attempt."""
        clean = run_seeded_populations(bundle, CFG, labels=["random"])
        plan = FaultPlan().transient("random", failures=1)
        retried = run_seeded_populations(
            bundle, CFG, labels=["random"], retry=FAST,
            fault_hook=plan.on_attempt, sleep=lambda s: None,
        )
        np.testing.assert_array_equal(
            clean.histories["random"].final.front_points,
            retried.histories["random"].final.front_points,
        )

    def test_checkpointed_retry_resumes_bit_identical(self, bundle, tmp_path):
        """A mid-run crash retried with a checkpoint_dir resumes from
        the durable checkpoint and finishes bit-identical to an
        uninterrupted run."""
        clean = run_seeded_populations(bundle, CFG, labels=["random"])
        # Evaluation calls: 1 = init population, +1 per generation.
        # Crashing at call 4 kills attempt 1 inside generation 3.
        plan = FaultPlan().crash("evaluate", at_call=4)
        result = run_seeded_populations(
            bundle, CFG, labels=["random"], retry=FAST,
            evaluation_fault_hook=plan.evaluation_hook(),
            checkpoint_dir=str(tmp_path),
            sleep=lambda s: None,
        )
        assert result.failures == ()
        history = result.histories["random"]
        reference = clean.histories["random"]
        assert history.total_evaluations == reference.total_evaluations
        for a, b in zip(reference.snapshots, history.snapshots):
            assert a.generation == b.generation
            np.testing.assert_array_equal(a.front_points, b.front_points)


class TestGracefulDegradation:
    def test_permanent_failure_degrades(self, bundle):
        plan = FaultPlan().crash("min-energy")
        result = run_seeded_populations(
            bundle, CFG, labels=["min-energy", "min-min-completion-time", "random"],
            retry=FAST, fault_hook=plan.on_attempt, sleep=lambda s: None,
        )
        assert set(result.histories) == {"min-min-completion-time", "random"}
        assert result.failed_labels == ("min-energy",)
        failure = result.failures[0]
        assert isinstance(failure, PopulationFailure)
        assert failure.attempts == 3
        assert "InjectedFault" in failure.error
        # Surviving populations still support front analysis.
        assert result.combined_front().size >= 1
        assert set(result.fronts_at(2)) == set(result.histories)

    def test_front_of_failed_population_explains(self, bundle):
        plan = FaultPlan().crash("min-energy")
        result = run_seeded_populations(
            bundle, CFG, labels=["min-energy", "random"],
            retry=FAST, fault_hook=plan.on_attempt, sleep=lambda s: None,
        )
        with pytest.raises(ExperimentError, match="failed after 3"):
            result.front("min-energy")

    def test_strict_reraises(self, bundle):
        plan = FaultPlan().crash("min-energy")
        with pytest.raises(ExperimentError, match="min-energy"):
            run_seeded_populations(
                bundle, CFG, labels=["min-energy", "random"],
                retry=FAST, strict=True,
                fault_hook=plan.on_attempt, sleep=lambda s: None,
            )

    def test_total_loss_raises(self, bundle):
        plan = FaultPlan().crash("min-energy").crash("random")
        with pytest.raises(ExperimentError, match="every population failed"):
            run_seeded_populations(
                bundle, CFG, labels=["min-energy", "random"],
                retry=FAST, fault_hook=plan.on_attempt, sleep=lambda s: None,
            )


class TestParallelFaults:
    def test_parallel_degrades_gracefully(self, bundle):
        plan = FaultPlan().crash("min-energy")
        result = run_seeded_populations(
            bundle, CFG, labels=["min-energy", "random"], workers=2,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
            fault_hook=plan.on_attempt,
        )
        assert "random" in result.histories
        assert result.failed_labels == ("min-energy",)
        assert result.failures[0].attempts == 2

    def test_parallel_transient_recovers_and_matches(self, bundle):
        clean = run_seeded_populations(bundle, CFG, labels=["min-energy", "random"])
        plan = FaultPlan().transient("random", failures=1)
        result = run_seeded_populations(
            bundle, CFG, labels=["min-energy", "random"], workers=2,
            retry=FAST, fault_hook=plan.on_attempt,
        )
        assert result.failures == ()
        for label in ("min-energy", "random"):
            np.testing.assert_array_equal(
                clean.histories[label].final.front_points,
                result.histories[label].final.front_points,
            )

    def test_parallel_timeout_retries(self, bundle):
        """A hung first attempt trips the per-attempt timeout; the
        retry (which does not hang) completes the population."""
        plan = FaultPlan().hang("random", seconds=1.5, failures=1)
        result = run_seeded_populations(
            bundle, CFG, labels=["min-energy", "random"], workers=3,
            retry=RetryPolicy(
                max_attempts=2, timeout=0.4, backoff_base=0.0, jitter=0.0
            ),
            fault_hook=plan.on_attempt,
        )
        assert set(result.histories) == {"min-energy", "random"}
        assert result.failures == ()

    def test_parallel_permanent_timeout_degrades(self, bundle):
        plan = FaultPlan().hang("random", seconds=1.5, failures=2)
        result = run_seeded_populations(
            bundle, CFG, labels=["min-energy", "random"], workers=3,
            retry=RetryPolicy(
                max_attempts=2, timeout=0.4, backoff_base=0.0, jitter=0.0
            ),
            fault_hook=plan.on_attempt,
        )
        assert "min-energy" in result.histories
        assert result.failed_labels == ("random",)
        assert "TimeoutError" in result.failures[0].error


class TestRetryPolicyValidation:
    def test_bounds(self):
        with pytest.raises(ExperimentError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ExperimentError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ExperimentError):
            RetryPolicy(backoff_base=-1.0)

    def test_delay_schedule(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_max=3.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert [policy.delay(k, rng) for k in (1, 2, 3, 4)] == [1.0, 2.0, 3.0, 3.0]

    def test_jitter_is_bounded(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.5)
        rng = np.random.default_rng(0)
        for k in range(1, 5):
            delay = policy.delay(1, rng)
            assert 1.0 <= delay <= 1.5

    def test_jitter_mode_validated(self):
        with pytest.raises(ExperimentError, match="jitter_mode"):
            RetryPolicy(jitter_mode="thundering-herd")


class TestDecorrelatedJitter:
    POLICY = RetryPolicy(
        backoff_base=0.5, backoff_max=8.0, jitter_mode="decorrelated"
    )

    def _chain(self, seed, n=6):
        """The prev-chained delay sequence a retrying cell would see."""
        rng = np.random.default_rng(seed)
        delays, prev = [], None
        for attempt in range(1, n + 1):
            prev = self.POLICY.delay(attempt, rng, prev=prev)
            delays.append(prev)
        return delays

    def test_deterministic_under_seeded_rng(self):
        assert self._chain(seed=42) == self._chain(seed=42)

    def test_bounded_by_floor_and_cap(self):
        for seed in range(20):
            for delay in self._chain(seed, n=10):
                assert (
                    self.POLICY.backoff_base
                    <= delay
                    <= self.POLICY.backoff_max
                )

    def test_distinct_streams_decorrelate(self):
        # Two cells that failed at the same instant (same attempt
        # number) draw different schedules from their per-label
        # streams — the herd fans out.
        assert self._chain(seed=1) != self._chain(seed=2)

    def test_delays_spread_within_one_stream(self):
        delays = self._chain(seed=3, n=10)
        assert len(set(delays)) > 1

    def test_first_retry_ignores_missing_prev(self):
        rng = np.random.default_rng(0)
        delay = self.POLICY.delay(1, rng, prev=None)
        # With no history the draw is over [floor, 3 * floor].
        assert 0.5 <= delay <= 1.5
