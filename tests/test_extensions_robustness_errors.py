"""Error paths of the robustness extension.

Companion to test_extensions_robustness.py: that file checks the happy
Monte-Carlo statistics; this one pins down the failure contract —
snapshots without chromosomes, allocation/trace mismatches, placements
on infeasible machines, and constructor validation.
"""

import numpy as np
import pytest

from repro.core.nsga2 import GenerationSnapshot
from repro.errors import ScheduleError, WorkloadError
from repro.extensions.robustness import (
    NoiseModel,
    RobustnessAnalyzer,
    front_robustness,
)
from repro.model.machine import Machine, MachineCategory, MachineType
from repro.model.matrices import EPCMatrix, ETCMatrix
from repro.model.system import SystemModel
from repro.model.task import TaskCategory, TaskType
from repro.sim.schedule import ResourceAllocation
from repro.utility.tuf import TimeUtilityFunction
from repro.workload.trace import Trace

INF = np.inf


@pytest.fixture
def special_system() -> SystemModel:
    """2 task types x 2 machine types; machine type 1 is special-purpose
    and executes only task type 1, so (task 0, machine 1) is infeasible."""
    machine_types = (
        MachineType(name="general", index=0),
        MachineType(
            name="accel",
            index=1,
            category=MachineCategory.SPECIAL_PURPOSE,
            supported_task_types=frozenset({1}),
        ),
    )
    machines = tuple(
        Machine(name=f"{mt.name}#0", index=i, machine_type=mt)
        for i, mt in enumerate(machine_types)
    )
    tuf = TimeUtilityFunction.linear(priority=10.0, urgency=0.01)
    task_types = (
        TaskType(name="plain", index=0, utility_function=tuf),
        TaskType(
            name="accelerated",
            index=1,
            category=TaskCategory.SPECIAL_PURPOSE,
            special_machine_type=1,
            utility_function=tuf,
        ),
    )
    etc = np.array([[10.0, INF], [12.0, 2.0]])
    epc = np.array([[100.0, INF], [90.0, 30.0]])
    return SystemModel(
        machine_types=machine_types,
        machines=machines,
        task_types=task_types,
        etc=ETCMatrix(etc),
        epc=EPCMatrix(epc),
    )


@pytest.fixture
def special_trace() -> Trace:
    return Trace(
        task_types=np.array([0, 1, 0, 1]),
        arrival_times=np.array([0.0, 2.0, 4.0, 6.0]),
        window=10.0,
    )


class TestConstructorValidation:
    def test_samples_lower_bound(self, small_system, small_trace):
        with pytest.raises(ScheduleError, match="samples"):
            RobustnessAnalyzer(small_system, small_trace, samples=0)
        with pytest.raises(ScheduleError, match="samples"):
            RobustnessAnalyzer(small_system, small_trace, samples=-3)

    def test_tolerance_range(self, small_system, small_trace):
        with pytest.raises(ScheduleError, match="tolerance"):
            RobustnessAnalyzer(small_system, small_trace, tolerance=1.0)
        with pytest.raises(ScheduleError, match="tolerance"):
            RobustnessAnalyzer(small_system, small_trace, tolerance=-0.01)
        # Boundary values inside [0, 1) are accepted.
        RobustnessAnalyzer(small_system, small_trace, samples=1, tolerance=0.0)

    def test_trace_system_mismatch(self, small_system):
        """A trace naming task types the system lacks is a workload
        contract violation, caught at construction."""
        bad = Trace(
            task_types=np.array([0, small_system.num_task_types]),
            arrival_times=np.array([0.0, 1.0]),
            window=5.0,
        )
        with pytest.raises(WorkloadError):
            RobustnessAnalyzer(small_system, bad, samples=2)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ScheduleError, match="sigma"):
            NoiseModel(sigma=-0.5)


class TestAnalyzeValidation:
    def test_task_count_mismatch(self, small_system, small_trace):
        analyzer = RobustnessAnalyzer(small_system, small_trace, samples=2)
        short = ResourceAllocation(
            machine_assignment=np.zeros(3, dtype=np.int64),
            scheduling_order=np.arange(3),
        )
        with pytest.raises(ScheduleError, match="tasks"):
            analyzer.analyze(short)

    def test_infeasible_machine_placement(self, special_system, special_trace):
        """Assigning a plain task to the special-purpose machine hits an
        inf ETC entry; analyze must refuse rather than propagate inf
        through the queue recurrence."""
        analyzer = RobustnessAnalyzer(
            special_system, special_trace, samples=2, seed=1
        )
        bad = ResourceAllocation(
            machine_assignment=np.array([1, 1, 0, 1]),  # task 0 -> accel
            scheduling_order=np.arange(4),
        )
        with pytest.raises(ScheduleError, match="infeasible"):
            analyzer.analyze(bad)

    def test_feasible_placement_on_same_system_passes(
        self, special_system, special_trace
    ):
        """Control: the same system accepts a placement respecting the
        feasibility mask, and reports finite statistics."""
        analyzer = RobustnessAnalyzer(
            special_system, special_trace, samples=4, seed=2
        )
        ok = ResourceAllocation(
            machine_assignment=np.array([0, 1, 0, 1]),
            scheduling_order=np.arange(4),
        )
        report = analyzer.analyze(ok)
        assert np.isfinite(report.nominal_energy)
        assert np.isfinite(report.mean_utility)


class TestFrontRobustnessValidation:
    def test_snapshot_without_chromosomes(self, small_system, small_trace):
        analyzer = RobustnessAnalyzer(small_system, small_trace, samples=2)
        bare = GenerationSnapshot(
            generation=3,
            front_points=np.array([[1.0, 2.0]]),
            front_assignments=None,
            front_orders=None,
            evaluations=40,
        )
        with pytest.raises(ScheduleError, match="chromosomes"):
            front_robustness(analyzer, bare)
