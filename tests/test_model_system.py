"""Tests for the validated SystemModel."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.machine import Machine, MachineCategory, MachineType
from repro.model.matrices import EPCMatrix, ETCMatrix
from repro.model.system import SystemModel
from repro.model.task import TaskCategory, TaskType

from conftest import TINY_EPC, TINY_ETC, make_tiny_system


class TestFromMatrices:
    def test_counts(self):
        sys_ = SystemModel.from_matrices(TINY_ETC, TINY_EPC)
        assert sys_.num_task_types == 3
        assert sys_.num_machine_types == 4
        assert sys_.num_machines == 4

    def test_machines_per_type(self):
        sys_ = SystemModel.from_matrices(
            TINY_ETC, TINY_EPC, machines_per_type=[2, 1, 3, 1]
        )
        assert sys_.num_machines == 7
        np.testing.assert_array_equal(
            sys_.machine_type_of_machine, [0, 0, 1, 2, 2, 2, 3]
        )

    def test_zero_machines_rejected(self):
        with pytest.raises(ModelError):
            SystemModel.from_matrices(TINY_ETC, TINY_EPC, machines_per_type=[0, 1, 1, 1])

    def test_name_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            SystemModel.from_matrices(TINY_ETC, TINY_EPC, machine_type_names=["a"])
        with pytest.raises(ModelError):
            SystemModel.from_matrices(TINY_ETC, TINY_EPC, task_type_names=["a"])


class TestDerivedMatrices:
    def test_eec_is_product(self):
        sys_ = SystemModel.from_matrices(TINY_ETC, TINY_EPC)
        np.testing.assert_allclose(sys_.eec.values, TINY_ETC * TINY_EPC)

    def test_task_machine_expansion(self):
        sys_ = SystemModel.from_matrices(
            TINY_ETC, TINY_EPC, machines_per_type=[1, 2, 1, 1]
        )
        assert sys_.etc_task_machine.shape == (3, 5)
        # Machine 1 and 2 are both type 1.
        np.testing.assert_allclose(
            sys_.etc_task_machine[:, 1], sys_.etc_task_machine[:, 2]
        )
        np.testing.assert_allclose(sys_.etc_task_machine[:, 0], TINY_ETC[:, 0])

    def test_feasible_machines(self):
        sys_ = make_special_system()
        # Task 0 is accelerated by the special machine (index 2).
        np.testing.assert_array_equal(sys_.feasible_machines(0), [0, 1, 2])
        # Task 1 is general-purpose: cannot use the special machine.
        np.testing.assert_array_equal(sys_.feasible_machines(1), [0, 1])


def make_special_system() -> SystemModel:
    """2 general types + 1 special type accelerating task 0."""
    etc = np.array([[10.0, 20.0, 1.5], [30.0, 15.0, np.inf]])
    epc = np.array([[100.0, 50.0, 75.0], [80.0, 120.0, np.inf]])
    machine_types = (
        MachineType(name="g0", index=0),
        MachineType(name="g1", index=1),
        MachineType(
            name="s0",
            index=2,
            category=MachineCategory.SPECIAL_PURPOSE,
            supported_task_types=frozenset({0}),
        ),
    )
    machines = tuple(
        Machine(name=f"m{i}", index=i, machine_type=machine_types[i])
        for i in range(3)
    )
    task_types = (
        TaskType(
            name="t0",
            index=0,
            category=TaskCategory.SPECIAL_PURPOSE,
            special_machine_type=2,
        ),
        TaskType(name="t1", index=1),
    )
    return SystemModel(
        machine_types=machine_types,
        machines=machines,
        task_types=task_types,
        etc=ETCMatrix(etc),
        epc=EPCMatrix(epc),
    )


class TestCategoryValidation:
    def test_special_system_valid(self):
        sys_ = make_special_system()
        assert sys_.num_machines == 3

    def test_special_machine_feasibility_must_match_declaration(self):
        etc = np.array([[10.0, 20.0, 1.5], [30.0, 15.0, 2.0]])  # task 1 feasible!
        epc = np.array([[100.0, 50.0, 75.0], [80.0, 120.0, 60.0]])
        machine_types = (
            MachineType(name="g0", index=0),
            MachineType(name="g1", index=1),
            MachineType(
                name="s0",
                index=2,
                category=MachineCategory.SPECIAL_PURPOSE,
                supported_task_types=frozenset({0}),
            ),
        )
        machines = tuple(
            Machine(name=f"m{i}", index=i, machine_type=machine_types[i])
            for i in range(3)
        )
        task_types = (
            TaskType(name="t0", index=0, category=TaskCategory.SPECIAL_PURPOSE,
                     special_machine_type=2),
            TaskType(name="t1", index=1),
        )
        with pytest.raises(ModelError):
            SystemModel(
                machine_types=machine_types,
                machines=machines,
                task_types=task_types,
                etc=ETCMatrix(etc),
                epc=EPCMatrix(epc),
            )

    def test_general_machine_must_run_everything(self):
        etc = np.array([[10.0, np.inf], [30.0, 15.0]])
        epc = np.array([[100.0, np.inf], [80.0, 120.0]])
        with pytest.raises(ModelError):
            SystemModel.from_matrices(etc, epc)


class TestIndexValidation:
    def test_wrong_machine_type_index_rejected(self):
        mt = (MachineType(name="a", index=1),)  # should be 0
        m = (Machine(name="m", index=0, machine_type=mt[0]),)
        tt = (TaskType(name="t", index=0),)
        with pytest.raises(ModelError):
            SystemModel(
                machine_types=mt, machines=m, task_types=tt,
                etc=ETCMatrix(np.array([[1.0]])), epc=EPCMatrix(np.array([[1.0]])),
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            SystemModel.from_matrices(TINY_ETC, TINY_EPC[:, :3])


class TestUtilityAttachment:
    def test_with_utility_functions(self):
        sys_ = make_tiny_system(with_tufs=True)
        assert all(tt.utility_function is not None for tt in sys_.task_types)

    def test_wrong_count_rejected(self):
        sys_ = SystemModel.from_matrices(TINY_ETC, TINY_EPC)
        with pytest.raises(ModelError):
            sys_.with_utility_functions([None])

    def test_describe_mentions_counts(self):
        text = make_tiny_system().describe()
        assert "4 machines" in text and "3 task types" in text
