"""Tests for crowding distance and truncation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.crowding import crowding_distance, crowding_truncate
from repro.errors import OptimizationError


class TestCrowdingDistance:
    def test_boundaries_infinite(self):
        pts = np.array([[1.0, 9.0], [2.0, 8.0], [3.0, 5.0], [4.0, 1.0]])
        d = crowding_distance(pts)
        assert np.isinf(d[0]) and np.isinf(d[3])
        assert np.isfinite(d[1]) and np.isfinite(d[2])

    def test_two_points_infinite(self):
        d = crowding_distance(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert np.all(np.isinf(d))

    def test_interior_value(self):
        # Evenly spaced colinear points: interior distances equal.
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        d = crowding_distance(pts)
        assert d[1] == pytest.approx(d[2])
        # Each axis contributes (x_{i+1} - x_{i-1}) / span = 2/3.
        assert d[1] == pytest.approx(4.0 / 3.0)

    def test_dense_cluster_penalized(self):
        pts = np.array([[0.0, 10.0], [5.0, 5.0], [5.1, 4.9], [10.0, 0.0]])
        d = crowding_distance(pts)
        # Clustered middle points have smaller distance than an
        # equally-spaced alternative.
        assert d[1] < 4.0 / 3.0 and d[2] < 4.0 / 3.0

    def test_degenerate_axis_ignored(self):
        pts = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        d = crowding_distance(pts)
        assert np.isinf(d[0]) and np.isinf(d[2])
        assert d[1] == pytest.approx(1.0)  # only axis 0 contributes

    def test_empty(self):
        assert crowding_distance(np.empty((0, 2))).shape == (0,)

    def test_1d_rejected(self):
        with pytest.raises(OptimizationError):
            crowding_distance(np.array([1.0, 2.0]))


class TestTruncate:
    def test_keeps_boundaries_first(self):
        pts = np.array([[0.0, 10.0], [4.9, 5.1], [5.0, 5.0], [10.0, 0.0]])
        keep = crowding_truncate(pts, 3)
        assert 0 in keep and 3 in keep
        assert len(keep) == 3

    def test_keep_all(self):
        pts = np.array([[0.0, 1.0], [1.0, 0.0]])
        np.testing.assert_array_equal(crowding_truncate(pts, 5), [0, 1])

    def test_keep_zero(self):
        pts = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert crowding_truncate(pts, 0).shape == (0,)

    def test_negative_rejected(self):
        with pytest.raises(OptimizationError):
            crowding_truncate(np.ones((2, 2)), -1)

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 1, size=(20, 2))
        np.testing.assert_array_equal(
            crowding_truncate(pts, 7), crowding_truncate(pts, 7)
        )


@settings(max_examples=40, deadline=None)
@given(
    pts=st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        min_size=1,
        max_size=30,
    ),
    keep_frac=st.floats(0.0, 1.0),
)
def test_property_truncate_size_and_subset(pts, keep_frac):
    arr = np.asarray(pts, dtype=np.float64)
    keep = int(keep_frac * arr.shape[0])
    idx = crowding_truncate(arr, keep)
    assert len(idx) == min(keep, arr.shape[0])
    assert len(set(idx.tolist())) == len(idx)
    assert np.all((idx >= 0) & (idx < arr.shape[0]))
