"""MOEA/D tests: decomposition machinery and engine behaviour."""

import numpy as np
import pytest

from repro.core.algorithm import AlgorithmConfig
from repro.core.dominance import nondominated_mask
from repro.core.moead import MOEAD
from repro.errors import OptimizationError
from repro.sim.evaluator import ScheduleEvaluator


def make_engine(evaluator, rng=0, pop=16, **kwargs):
    return MOEAD(
        evaluator,
        AlgorithmConfig(population_size=pop, mutation_probability=0.5),
        rng=rng,
        **kwargs,
    )


class TestDecomposition:
    def test_offspring_size_pinned_to_population(self, small_evaluator):
        ga = make_engine(small_evaluator, pop=14)
        assert ga.config.offspring_size == 14

    def test_weights_uniform_and_positive(self, small_evaluator):
        ga = make_engine(small_evaluator, pop=11)
        assert ga.weights.shape == (11, 2)
        assert (ga.weights > 0).all()
        # Rows sweep the simplex ends (up to the 1e-6 floor).
        np.testing.assert_allclose(ga.weights[0], [1e-6, 1.0])
        np.testing.assert_allclose(ga.weights[-1], [1.0, 1e-6])

    def test_neighborhoods_contain_self_and_are_local(self, small_evaluator):
        ga = make_engine(small_evaluator, pop=16, neighborhood_size=4)
        for i in range(16):
            assert i in ga.neighborhoods[i]
        # Neighbours of the extreme subproblems stay near the extremes.
        assert set(ga.neighborhoods[0]) <= set(range(4))
        assert set(ga.neighborhoods[15]) <= set(range(12, 16))

    def test_tchebycheff_prefers_points_nearer_the_ideal(self,
                                                         small_evaluator):
        ga = make_engine(small_evaluator, pop=8)
        ga._ideal = np.array([0.0, 0.0])
        near = np.array([[1.0, 1.0]])
        far = np.array([[5.0, 5.0]])
        sub = np.array([4])
        assert ga._tchebycheff(near, sub) < ga._tchebycheff(far, sub)

    def test_replace_limit_validated(self, small_evaluator):
        with pytest.raises(OptimizationError):
            make_engine(small_evaluator, replace_limit=0)


class TestEngine:
    def test_population_size_constant(self, small_evaluator):
        ga = make_engine(small_evaluator)
        for _ in range(5):
            ga.step()
            assert ga.population.size == 16

    def test_run_is_deterministic(self, small_system, small_trace):
        def run():
            ev = ScheduleEvaluator(small_system, small_trace,
                                   check_feasibility=False)
            return make_engine(ev, rng=9).run(5, checkpoints=[5])

        a, b = run(), run()
        np.testing.assert_array_equal(
            a.final.front_points, b.final.front_points
        )

    def test_front_is_nondominated(self, small_evaluator):
        ga = make_engine(small_evaluator, rng=2)
        history = ga.run(5, checkpoints=[5])
        assert nondominated_mask(history.final.front_points).all()

    def test_ideal_point_only_improves(self, small_evaluator):
        ga = make_engine(small_evaluator, rng=3)
        before = ga._ideal.copy()
        for _ in range(8):
            ga.step()
            assert (ga._ideal <= before + 1e-12).all()
            before = ga._ideal.copy()

    def test_front_quality_improves_over_random_start(self, small_system,
                                                      small_trace):
        from repro.analysis.indicators import hypervolume

        ev = ScheduleEvaluator(small_system, small_trace,
                               check_feasibility=False)
        ga = make_engine(ev, rng=4)
        ref = (1e9, 0.0)
        pts0, _ = ga.current_front()
        hv0 = hypervolume(pts0, ref)
        ga.run(15, checkpoints=[15])
        pts1, _ = ga.current_front()
        assert hypervolume(pts1, ref) > hv0

    def test_checkpoint_resume_restores_ideal_point(self, small_system,
                                                    small_trace, tmp_path):
        """The running ideal point rides in ``algo_state``: a crashed
        run resumes bit-identically, which can only happen when z* is
        restored rather than rebuilt from the population."""
        from repro.testing.faults import FaultPlan, InjectedFault

        def engine(fault_hook=None):
            ev = ScheduleEvaluator(small_system, small_trace,
                                   check_feasibility=False,
                                   fault_hook=fault_hook)
            return MOEAD(
                ev, AlgorithmConfig(population_size=12,
                                    mutation_probability=0.5),
                rng=6, label="moead-ckpt",
            )

        straight = engine().run(6, checkpoints=[3, 6])
        plan = FaultPlan().crash("evaluate", at_call=5)
        with pytest.raises(InjectedFault):
            engine(plan.evaluation_hook()).run(
                6, checkpoints=[3, 6], checkpoint_dir=str(tmp_path)
            )
        resumed = engine().run(6, checkpoints=[3, 6],
                               checkpoint_dir=str(tmp_path), resume=True)
        np.testing.assert_array_equal(
            straight.final.front_points, resumed.final.front_points
        )
