"""Distributed telemetry: context propagation, worker sinks, merging.

The load-bearing guarantees of the cross-process pipeline:

* **determinism** — parallel fronts are bit-identical with worker
  telemetry on vs off, on both transports;
* **causal linkage** — the merged trace is one tree: every worker
  ``cell.run`` span is parented under the coordinator's ``grid.run``
  span and carries worker attribution, and the merged directory passes
  the unchanged ``repro.obs/1`` validators;
* **crash safety** — a SIGKILL'd worker leaves schema-valid sink files
  holding everything up to its last completed cell, and every ``done``
  cell of a chaos-drilled grid has worker-attributed span lineage;
* **loss accounting** — dropped manifest heartbeats surface as the
  ``worker_heartbeat_dropped_total`` counter plus one warning event
  per worker, never as a silent ``pass``.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.experiments.datasets import dataset1
from repro.experiments.repetitions import run_repetitions
from repro.obs import (
    NULL_CONTEXT,
    RunContext,
    TraceContext,
    WorkerTelemetryConfig,
    merge_obs_dir,
    validate_run_dir,
    worker_dirs,
)
from repro.obs.collect import MERGED_DIR_NAME
from repro.obs.distributed import CELL_SPAN_NAME, GRID_SPAN_NAME


@pytest.fixture(scope="module")
def bundle():
    return dataset1(seed=321)


def _read_spans(run_dir: Path) -> list:
    return [
        json.loads(line)
        for line in (run_dir / "trace.jsonl").read_text().splitlines()
        if line.strip()
    ]


def _run(bundle, tmp, *, obs=None, transport="auto", grid_dir=None):
    return run_repetitions(
        bundle, repetitions=4, generations=3, population_size=12,
        base_seed=77, workers=2, transport=transport, obs=obs,
        grid_dir=grid_dir,
    )


class TestTraceContext:
    def test_child_and_attrs(self):
        ctx = TraceContext(run_id="r1", grid_id="g1")
        cell = ctx.child(cell=3, attempt=2, worker=123)
        assert cell.run_id == "r1"
        assert cell.as_attrs() == {
            "grid_id": "g1", "cell": 3, "attempt": 2, "worker": 123,
        }
        # run-scoped context: empty/zero fields are omitted.
        assert ctx.as_attrs() == {"grid_id": "g1"}

    def test_non_scalar_cell_keys_coerced(self):
        ctx = TraceContext(run_id="r", cell=("a", 1))
        assert ctx.as_attrs()["cell"] == str(("a", 1))

    def test_config_is_none_when_dark_or_in_memory(self, tmp_path):
        assert WorkerTelemetryConfig.from_context(None) is None
        assert WorkerTelemetryConfig.from_context(NULL_CONTEXT) is None
        # Enabled but in-memory: no destination, stays coordinator-only.
        assert WorkerTelemetryConfig.from_context(RunContext.create()) is None
        obs = RunContext.create(obs_dir=tmp_path / "obs", run_id="x")
        config = WorkerTelemetryConfig.from_context(obs, grid_id="g")
        assert config is not None
        assert config.run_id == "x"
        assert config.grid_id == "g"
        assert Path(config.root) == tmp_path / "obs" / "workers"


class TestWorkerTelemetrySink:
    def test_open_creates_schema_valid_dir_eagerly(self, tmp_path):
        """A worker killed before its first checkpoint must still leave
        a complete (empty) sink directory."""
        obs = RunContext.create(obs_dir=tmp_path / "obs", run_id="run")
        telem = WorkerTelemetryConfig.from_context(obs).open()
        assert validate_run_dir(telem.dir) == []
        meta = json.loads((telem.dir / "meta.json").read_text())
        assert meta["fields"]["worker"] == telem.pid
        assert "monotonic_s" in meta["clock"]

    def test_checkpoint_appends_incrementally(self, tmp_path):
        obs = RunContext.create(obs_dir=tmp_path / "obs", run_id="run")
        telem = WorkerTelemetryConfig.from_context(obs).open()
        with telem.obs.span(CELL_SPAN_NAME, cell=0):
            pass
        telem.checkpoint()
        assert len(_read_spans(telem.dir)) == 1
        with telem.obs.span(CELL_SPAN_NAME, cell=1):
            pass
        telem.checkpoint()
        spans = _read_spans(telem.dir)
        assert len(spans) == 2
        assert validate_run_dir(telem.dir) == []

    def test_heartbeat_drop_counted_and_warned_once(self, tmp_path):
        obs = RunContext.create(obs_dir=tmp_path / "obs", run_id="run")
        telem = WorkerTelemetryConfig.from_context(obs).open()
        for attempt in (1, 2, 3):
            telem.heartbeat_dropped(0, attempt, OSError("disk gone"))
        telem.checkpoint()
        metrics = json.loads((telem.dir / "metrics.json").read_text())
        assert metrics["worker_heartbeat_dropped_total"]["value"] == 3.0
        events = [
            json.loads(line)
            for line in (telem.dir / "events.jsonl").read_text().splitlines()
        ]
        warned = [
            e for e in events if e["event"] == "worker.heartbeat_dropped"
        ]
        assert len(warned) == 1  # once per worker, not per drop
        assert warned[0]["level"] == "warning"
        assert "disk gone" in warned[0]["fields"]["error"]


class TestCollector:
    def test_no_worker_dirs_is_a_noop(self, tmp_path):
        obs = RunContext.create(obs_dir=tmp_path / "obs", run_id="serial")
        obs.flush()
        assert merge_obs_dir(tmp_path / "obs") is None
        assert not (tmp_path / "obs" / MERGED_DIR_NAME).exists()

    def test_unflushed_dir_raises(self, tmp_path):
        (tmp_path / "obs" / "workers" / "worker-1-aa").mkdir(parents=True)
        (tmp_path / "obs" / "workers" / "worker-1-aa" / "meta.json").write_text(
            "{}"
        )
        with pytest.raises(ObservabilityError):
            merge_obs_dir(tmp_path / "obs")

    def test_clock_alignment_shifts_worker_timestamps(self, tmp_path):
        """A worker whose monotonic anchor differs by delta lands on the
        coordinator timeline shifted by exactly delta."""
        obs = RunContext.create(obs_dir=tmp_path / "obs", run_id="coord")
        with obs.span(GRID_SPAN_NAME, grid_id="g"):
            pass
        telem = WorkerTelemetryConfig.from_context(obs).open()
        with telem.obs.span(CELL_SPAN_NAME, cell=0):
            pass
        telem.checkpoint()
        obs.flush()
        # Skew the worker's anchor 100 s earlier than the coordinator's:
        # its local timestamps are then 100 s "too large" and the
        # collector must subtract the delta.
        meta = json.loads((telem.dir / "meta.json").read_text())
        coord_meta = json.loads((Path(obs.obs_dir) / "meta.json").read_text())
        meta["clock"]["monotonic_s"] = (
            coord_meta["clock"]["monotonic_s"] - 100.0
        )
        (telem.dir / "meta.json").write_text(json.dumps(meta))
        out = merge_obs_dir(tmp_path / "obs")
        merged = _read_spans(out)
        cell = next(s for s in merged if s["name"] == CELL_SPAN_NAME)
        local = _read_spans(telem.dir)[0]
        assert cell["start_s"] == pytest.approx(local["start_s"] - 100.0)

    def test_damaged_worker_lines_skipped_and_counted(self, tmp_path):
        obs = RunContext.create(obs_dir=tmp_path / "obs", run_id="coord")
        telem = WorkerTelemetryConfig.from_context(obs).open()
        with telem.obs.span(CELL_SPAN_NAME, cell=0):
            pass
        telem.checkpoint()
        # Simulate a SIGKILL mid-append: a torn half-line at the tail.
        with open(telem.dir / "trace.jsonl", "a") as fh:
            fh.write('{"span_id": 99, "name": "cell.ru')
        obs.flush()
        out = tmp_path / "obs" / MERGED_DIR_NAME
        assert validate_run_dir(out) == []
        merged_meta = json.loads((out / "meta.json").read_text())
        assert merged_meta["damaged_lines"] == 1
        assert [s["name"] for s in _read_spans(out)].count(CELL_SPAN_NAME) == 1


class TestParallelRunEndToEnd:
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_fronts_bit_identical_with_worker_telemetry(
        self, bundle, tmp_path, transport
    ):
        dark = _run(bundle, tmp_path, transport=transport)
        obs = RunContext.create(
            obs_dir=tmp_path / f"obs-{transport}", run_id="lit"
        )
        lit = _run(bundle, tmp_path, obs=obs, transport=transport)
        obs.flush()
        for d, l in zip(dark.fronts, lit.fronts):
            np.testing.assert_array_equal(d, l)
        assert dark.hypervolume == lit.hypervolume

    def test_merged_trace_is_causally_linked_and_valid(
        self, bundle, tmp_path
    ):
        obs = RunContext.create(obs_dir=tmp_path / "obs", run_id="lit")
        _run(bundle, tmp_path, obs=obs)
        obs.flush()
        assert worker_dirs(tmp_path / "obs")
        merged = tmp_path / "obs" / MERGED_DIR_NAME
        assert validate_run_dir(merged) == []
        spans = _read_spans(merged)
        grid = [s for s in spans if s["name"] == GRID_SPAN_NAME]
        cells = [s for s in spans if s["name"] == CELL_SPAN_NAME]
        assert len(grid) == 1
        assert len(cells) == 4
        for cell in cells:
            assert cell["parent_id"] == grid[0]["span_id"]
            assert "worker" in cell["attrs"]
            assert cell["attrs"]["cell"] in (0, 1, 2, 3)
        # Worker-recorded GA spans nest under their cell spans.
        by_id = {s["span_id"]: s for s in spans}
        ga_runs = [s for s in spans if s["name"] == "ga.run"]
        assert len(ga_runs) == 4
        for span in ga_runs:
            assert by_id[span["parent_id"]]["name"] == CELL_SPAN_NAME
        # Spans are stable-sorted and events time-monotone.
        keys = [
            (s["start_s"], str(s["attrs"].get("worker", "")), s["span_id"])
            for s in spans
        ]
        assert keys == sorted(keys)

    def test_merged_metrics_aggregate_and_per_worker_series(
        self, bundle, tmp_path
    ):
        obs = RunContext.create(obs_dir=tmp_path / "obs", run_id="lit")
        _run(bundle, tmp_path, obs=obs)
        obs.flush()
        metrics = json.loads(
            (tmp_path / "obs" / MERGED_DIR_NAME / "metrics.json").read_text()
        )
        assert metrics["worker_cells_total"]["value"] == 4.0
        labeled = [
            key for key in metrics
            if key.startswith('worker_cells_total{worker="')
        ]
        assert labeled  # per-worker breakdown survives aggregation
        assert sum(metrics[key]["value"] for key in labeled) == 4.0
        hist = metrics["worker_cell_seconds"]
        assert hist["count"] == 4
        # Cumulative bucket counts (the validator checks this too).
        counts = [b["count"] for b in hist["buckets"]]
        assert counts == sorted(counts)

    def test_flush_is_idempotent(self, bundle, tmp_path):
        obs = RunContext.create(obs_dir=tmp_path / "obs", run_id="lit")
        _run(bundle, tmp_path, obs=obs)
        obs.flush()
        first = (
            tmp_path / "obs" / MERGED_DIR_NAME / "trace.jsonl"
        ).read_text()
        obs.flush()
        second = (
            tmp_path / "obs" / MERGED_DIR_NAME / "trace.jsonl"
        ).read_text()
        assert first == second
