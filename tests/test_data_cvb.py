"""Tests for the CVB baseline ETC generator."""

import numpy as np
import pytest

from repro.data.cvb import CVBParameters, generate_cvb_etc
from repro.data.heterogeneity import mvsk
from repro.errors import DataGenerationError


class TestParameters:
    def test_gamma_mapping(self):
        p = CVBParameters(mean_task=100.0, v_task=0.5, v_machine=0.25)
        assert p.alpha_task == pytest.approx(4.0)
        assert p.beta_task == pytest.approx(25.0)
        assert p.alpha_machine == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(DataGenerationError):
            CVBParameters(mean_task=0.0, v_task=0.5, v_machine=0.5)
        with pytest.raises(DataGenerationError):
            CVBParameters(mean_task=1.0, v_task=0.0, v_machine=0.5)
        with pytest.raises(DataGenerationError):
            CVBParameters(mean_task=1.0, v_task=0.5, v_machine=-1.0)


class TestGeneration:
    def test_shape_and_positivity(self):
        p = CVBParameters(100.0, 0.5, 0.3)
        etc = generate_cvb_etc(20, 8, p, seed=1)
        assert etc.shape == (20, 8)
        assert np.all(etc > 0)

    def test_deterministic(self):
        p = CVBParameters(100.0, 0.5, 0.3)
        np.testing.assert_array_equal(
            generate_cvb_etc(5, 5, p, seed=2), generate_cvb_etc(5, 5, p, seed=2)
        )

    def test_moments_track_parameters(self):
        p = CVBParameters(mean_task=50.0, v_task=0.4, v_machine=0.2)
        etc = generate_cvb_etc(3000, 40, p, seed=3)
        # Mean of everything ~ mean_task.
        assert etc.mean() == pytest.approx(50.0, rel=0.05)
        # Within-row CV ~ v_machine.
        row_cv = (etc.std(axis=1) / etc.mean(axis=1)).mean()
        assert row_cv == pytest.approx(0.2, rel=0.1)
        # Across-task CV of row means ~ v_task (machine noise averages out).
        s = mvsk(etc.mean(axis=1))
        assert s.cov == pytest.approx(0.4, rel=0.15)

    def test_high_task_heterogeneity(self):
        lo = generate_cvb_etc(500, 10, CVBParameters(100.0, 0.1, 0.1), seed=4)
        hi = generate_cvb_etc(500, 10, CVBParameters(100.0, 1.0, 0.1), seed=4)
        assert mvsk(hi.mean(axis=1)).cov > mvsk(lo.mean(axis=1)).cov * 3

    def test_bad_dimensions_rejected(self):
        p = CVBParameters(1.0, 0.5, 0.5)
        with pytest.raises(DataGenerationError):
            generate_cvb_etc(0, 5, p)
        with pytest.raises(DataGenerationError):
            generate_cvb_etc(5, -1, p)
