"""The content-addressed result store: keying, verification, drift."""

import json

import numpy as np
import pytest

from repro.experiments.datasets import DatasetBundle
from repro.model.system import SystemModel
from repro.parallel.resultstore import (
    ResultStore,
    cell_key_hash,
    dataset_fingerprint,
    grid_fingerprint,
)
from repro.utility.presets import assign_presets
from repro.workload.generator import WorkloadGenerator


def _bundle(name="store-test", seed=0, gen_seed=21) -> DatasetBundle:
    rng = np.random.default_rng(gen_seed)
    etc = rng.uniform(5.0, 120.0, size=(4, 5))
    epc = rng.uniform(40.0, 250.0, size=(4, 5))
    system = SystemModel.from_matrices(
        etc, epc, machines_per_type=[1, 1, 2, 1, 1]
    ).with_utility_functions(assign_presets(4, 500.0, seed=22))
    trace = WorkloadGenerator.uniform_for(4).generate(25, 500.0, seed=23)
    return DatasetBundle(
        name=name, system=system, trace=trace,
        horizon_seconds=500.0, seed=seed,
    )


class TestFingerprints:
    def test_dataset_fingerprint_is_stable(self):
        assert dataset_fingerprint(_bundle()) == dataset_fingerprint(_bundle())

    def test_dataset_fingerprint_tracks_content(self):
        base = dataset_fingerprint(_bundle())
        assert dataset_fingerprint(_bundle(gen_seed=99)) != base
        assert dataset_fingerprint(_bundle(name="other")) != base
        assert dataset_fingerprint(_bundle(seed=7)) != base

    def test_grid_fingerprint_tracks_spec_and_dataset(self):
        fp = dataset_fingerprint(_bundle())
        base = grid_fingerprint({"generations": 10}, fp)
        assert grid_fingerprint({"generations": 10}, fp) == base
        assert grid_fingerprint({"generations": 11}, fp) != base
        assert grid_fingerprint({"generations": 10}, "other-fp") != base

    def test_grid_fingerprint_key_order_invariant(self):
        fp = dataset_fingerprint(_bundle())
        assert grid_fingerprint({"a": 1, "b": 2}, fp) == grid_fingerprint(
            {"b": 2, "a": 1}, fp
        )

    def test_cell_key_hash_separates_cells_and_grids(self):
        assert cell_key_hash("fp", 0) != cell_key_hash("fp", 1)
        assert cell_key_hash("fp", 0) != cell_key_hash("fp2", 0)


class TestStore:
    def test_round_trip_is_exact(self, tmp_path):
        store = ResultStore(tmp_path, "fp")
        payload = {"front": [[0.1 + 0.2, 1e-308], [3.0, np.pi]]}
        checksum = store.put(7, payload)
        got = store.get(7, expected_checksum=checksum)
        assert got == payload
        # Float64 survives JSON shortest-repr byte-for-byte.
        assert np.asarray(got["front"]).tobytes() == np.asarray(
            payload["front"]
        ).tobytes()

    def test_missing_cell_returns_none(self, tmp_path):
        store = ResultStore(tmp_path, "fp")
        assert store.get(0) is None
        assert store.checksum_of(0) is None

    def test_checksum_mismatch_returns_none(self, tmp_path):
        store = ResultStore(tmp_path, "fp")
        store.put(0, {"x": 1})
        assert store.get(0, expected_checksum="not-the-checksum") is None
        # Without an expectation the (self-consistent) artifact loads.
        assert store.get(0) == {"x": 1}

    def test_corrupt_artifact_returns_none(self, tmp_path):
        store = ResultStore(tmp_path, "fp")
        checksum = store.put(0, {"x": 1})
        path = store.path_for(0)
        path.write_bytes(path.read_bytes()[:-20] + b"}" * 20)
        assert store.get(0, expected_checksum=checksum) is None

    def test_fingerprint_drift_returns_none(self, tmp_path):
        old = ResultStore(tmp_path, "fp-old")
        old.put(0, {"x": 1})
        new = ResultStore(tmp_path, "fp-new")
        # Drifted artifacts do not even share a path; even a forced
        # collision would fail the embedded-fingerprint check.
        assert new.get(0) is None
        assert old.get(0) == {"x": 1}

    def test_wrong_cell_identity_returns_none(self, tmp_path):
        store = ResultStore(tmp_path, "fp")
        store.put(0, {"x": 1})
        # Copy cell 0's artifact over cell 1's path: identity mismatch.
        store.path_for(1).write_bytes(store.path_for(0).read_bytes())
        assert store.get(1) is None

    def test_checksum_of_matches_put(self, tmp_path):
        store = ResultStore(tmp_path, "fp")
        checksum = store.put(3, {"y": [1, 2, 3]})
        assert store.checksum_of(3) == checksum

    def test_rejects_nan_payloads(self, tmp_path):
        store = ResultStore(tmp_path, "fp")
        with pytest.raises(ValueError):
            store.put(0, {"x": float("nan")})

    def test_keys_may_be_ints_or_strings(self, tmp_path):
        store = ResultStore(tmp_path, "fp")
        store.put(0, {"v": "int-key"})
        store.put("0", {"v": "str-key"})
        assert store.get(0) == {"v": "int-key"}
        assert store.get("0") == {"v": "str-key"}
