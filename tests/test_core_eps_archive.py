"""ε-dominance archive and the archive-reporting NSGA-II variant."""

import numpy as np
import pytest

from repro.core.algorithm import AlgorithmConfig
from repro.core.archive import EpsilonParetoArchive
from repro.core.dominance import nondominated_mask
from repro.core.nsga2 import NSGA2, EpsilonArchiveNSGA2
from repro.errors import OptimizationError
from repro.sim.evaluator import ScheduleEvaluator


class TestEpsilonParetoArchive:
    def test_one_representative_per_box(self):
        archive = EpsilonParetoArchive(epsilons=(1.0, 1.0))
        # Two points in the same ε-box: only one survives.
        archive.update(np.array([[0.2, 10.2], [0.4, 10.4]]))
        assert len(archive) == 1

    def test_box_dominance_prunes(self):
        archive = EpsilonParetoArchive(epsilons=(1.0, 1.0))
        # (energy, utility): box (0, 10) dominates box (5, 3).
        archive.update(np.array([[0.5, 10.5], [5.5, 3.5]]))
        assert len(archive) == 1
        np.testing.assert_allclose(archive.points, [[0.5, 10.5]])

    def test_incomparable_boxes_coexist(self):
        archive = EpsilonParetoArchive(epsilons=(1.0, 1.0))
        archive.update(np.array([[0.5, 3.5], [5.5, 10.5]]))
        assert len(archive) == 2

    def test_epsilons_validated(self):
        with pytest.raises(OptimizationError):
            EpsilonParetoArchive(epsilons=(0.0, 1.0))
        with pytest.raises(OptimizationError):
            EpsilonParetoArchive(epsilons=(1.0,))

    def test_size_stays_bounded(self):
        """The Laumanns guarantee: archive size is bounded by the
        objective ranges over ε, no matter how many points stream in."""
        rng = np.random.default_rng(0)
        archive = EpsilonParetoArchive(epsilons=(0.1, 0.1))
        for _ in range(50):
            pts = np.column_stack([rng.random(40), rng.random(40)])
            archive.update(pts)
        assert len(archive) <= (1.0 / 0.1 + 1) ** 2


class TestEpsilonArchiveNSGA2:
    def make_engine(self, evaluator, rng=0, pop=16, epsilon=1e-3):
        return EpsilonArchiveNSGA2(
            evaluator,
            AlgorithmConfig(population_size=pop, mutation_probability=0.5),
            rng=rng,
            epsilon=epsilon,
        )

    def test_epsilon_validated(self, small_evaluator):
        with pytest.raises(OptimizationError):
            self.make_engine(small_evaluator, epsilon=0.0)

    def test_population_trajectory_matches_plain_nsga2(self, small_system,
                                                       small_trace):
        """The archive is an observer: the generational loop draws the
        same RNG stream as plain NSGA-II, so the *populations* evolve
        bit-identically."""
        def run(cls):
            ev = ScheduleEvaluator(small_system, small_trace,
                                   check_feasibility=False)
            ga = cls(ev, AlgorithmConfig(population_size=16,
                                         mutation_probability=0.5), rng=8)
            for _ in range(5):
                ga.step()
            return ga.population

        plain = run(NSGA2)
        archived = run(EpsilonArchiveNSGA2)
        np.testing.assert_array_equal(plain.assignments,
                                      archived.assignments)
        np.testing.assert_array_equal(plain.orders, archived.orders)

    def test_snapshots_report_the_archive_front(self, small_evaluator):
        ga = self.make_engine(small_evaluator, rng=1)
        history = ga.run(5, checkpoints=[5])
        pts = history.final.front_points
        assert pts.shape[0] == len(ga.archive)
        assert nondominated_mask(pts).all()

    def test_archive_front_covers_population_front(self, small_evaluator):
        """Every population-front point is ε-dominated by (or coincides
        with) an archived point — the archive never loses the front."""
        ga = self.make_engine(small_evaluator, rng=2, epsilon=1e-6)
        for _ in range(5):
            ga.step()
        pop_front = ga.population.objectives[
            nondominated_mask(ga.population.objectives)
        ]
        archived = ga.archive.points
        eps_e, eps_u = ga.archive.epsilons
        for energy, utility in pop_front:
            covered = (
                (archived[:, 0] <= energy + eps_e)
                & (archived[:, 1] >= utility - eps_u)
            ).any()
            assert covered, (energy, utility)

    def test_checkpoint_resume_restores_archive(self, small_system,
                                                small_trace, tmp_path):
        from repro.testing.faults import FaultPlan, InjectedFault

        def engine(fault_hook=None):
            ev = ScheduleEvaluator(small_system, small_trace,
                                   check_feasibility=False,
                                   fault_hook=fault_hook)
            return EpsilonArchiveNSGA2(
                ev, AlgorithmConfig(population_size=12,
                                    mutation_probability=0.5),
                rng=6, label="eps-ckpt",
            )

        straight = engine().run(6, checkpoints=[3, 6])
        plan = FaultPlan().crash("evaluate", at_call=5)
        with pytest.raises(InjectedFault):
            engine(plan.evaluation_hook()).run(
                6, checkpoints=[3, 6], checkpoint_dir=str(tmp_path)
            )
        resumed = engine().run(6, checkpoints=[3, 6],
                               checkpoint_dir=str(tmp_path), resume=True)
        np.testing.assert_array_equal(
            straight.final.front_points, resumed.final.front_points
        )
