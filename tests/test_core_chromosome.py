"""Tests for the Gene/Chromosome API view."""

import numpy as np
import pytest

from repro.core.chromosome import Chromosome, Gene
from repro.errors import OptimizationError
from repro.sim.schedule import ResourceAllocation


class TestChromosome:
    def test_genes_carry_arrival_times(self, tiny_trace):
        chrom = Chromosome(
            machine_assignment=np.array([0, 1, 2, 3, 0, 1]),
            scheduling_order=np.arange(6),
            trace=tiny_trace,
        )
        g = chrom.gene(2)
        assert isinstance(g, Gene)
        assert g.task == 2
        assert g.machine == 2
        assert g.arrival_time == tiny_trace.arrival_times[2]
        assert g.scheduling_order == 2

    def test_iteration_yields_all_genes(self, tiny_trace):
        chrom = Chromosome(
            machine_assignment=np.zeros(6, dtype=int),
            scheduling_order=np.arange(6),
            trace=tiny_trace,
        )
        genes = list(chrom)
        assert len(genes) == 6
        assert [g.task for g in genes] == list(range(6))

    def test_allocation_roundtrip(self, tiny_trace):
        alloc = ResourceAllocation(
            machine_assignment=np.array([3, 2, 1, 0, 3, 2]),
            scheduling_order=np.array([5, 4, 3, 2, 1, 0]),
        )
        chrom = Chromosome.from_allocation(alloc, tiny_trace)
        back = chrom.to_allocation()
        np.testing.assert_array_equal(back.machine_assignment, alloc.machine_assignment)
        np.testing.assert_array_equal(back.scheduling_order, alloc.scheduling_order)

    def test_size_mismatch_rejected(self, tiny_trace):
        with pytest.raises(OptimizationError):
            Chromosome(
                machine_assignment=np.zeros(3, dtype=int),
                scheduling_order=np.arange(3),
                trace=tiny_trace,
            )

    def test_gene_out_of_range(self, tiny_trace):
        chrom = Chromosome(
            machine_assignment=np.zeros(6, dtype=int),
            scheduling_order=np.arange(6),
            trace=tiny_trace,
        )
        with pytest.raises(OptimizationError):
            chrom.gene(6)
