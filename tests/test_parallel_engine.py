"""The parallel engine: pool lifecycle, retries, timeouts, leases.

Cell bodies live at module level so pool workers (fork or spawn) can
unpickle them by qualified name.
"""

import multiprocessing
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ParallelExecutionError
from repro.experiments.datasets import DatasetBundle
from repro.experiments.runner import RetryPolicy
from repro.model.system import SystemModel
from repro.parallel import descriptors, shm
from repro.parallel.engine import ParallelEngine
from repro.utility.presets import assign_presets
from repro.workload.generator import WorkloadGenerator

FAST = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def bundle() -> DatasetBundle:
    rng = np.random.default_rng(11)
    etc = rng.uniform(5.0, 120.0, size=(4, 5))
    epc = rng.uniform(40.0, 250.0, size=(4, 5))
    system = SystemModel.from_matrices(
        etc, epc, machines_per_type=[1, 1, 2, 1, 1]
    ).with_utility_functions(assign_presets(4, 500.0, seed=12))
    trace = WorkloadGenerator.uniform_for(4).generate(25, 500.0, seed=13)
    return DatasetBundle(
        name="engine-test", system=system, trace=trace,
        horizon_seconds=500.0, seed=0,
    )


# -- cell bodies (module-level, picklable) ------------------------------------


def _echo_cell(restored, extra, key, attempt, payload):
    return (key, attempt, payload, extra["tag"])


def _sum_etc_cell(restored, extra, key, attempt, payload):
    # Touch the shared views to prove the worker sees real data.
    return float(restored.evaluator_arrays.etc_rows.sum())


def _flaky_cell(restored, extra, key, attempt, payload):
    if attempt <= extra["failures"].get(key, 0):
        raise RuntimeError(f"{key} fails on attempt {attempt}")
    return f"{key}-ok-{attempt}"


def _lease_probe_cell(restored, extra, key, attempt, payload):
    start = time.monotonic()
    if attempt == 1:
        time.sleep(extra["hang"])
    end = time.monotonic()
    Path(extra["dir"], f"{key}.attempt{attempt}").write_text(f"{start} {end}")
    if attempt == 1:
        raise RuntimeError("attempt 1 fails after hanging")
    return "recovered"


def _die_cell(restored, extra, key, attempt, payload):
    os._exit(3)


# -- tests --------------------------------------------------------------------


class TestBasics:
    def test_cells_fan_out_and_collect(self, bundle):
        results = {}
        with descriptors.publish_dataset(bundle) as published:
            with ParallelEngine(
                2, handle=published.handle, extra={"tag": "t"}
            ) as engine:
                engine.run(
                    _echo_cell, ["a", "b", "c", "d"],
                    payload_for=lambda k, a: f"p-{k}",
                    policy=FAST,
                    backoff_for=lambda k, a: 0.0,
                    give_up=lambda k, a, e: pytest.fail(f"gave up on {k}: {e}"),
                    on_result=lambda r: results.__setitem__(r.key, r),
                )
        assert set(results) == {"a", "b", "c", "d"}
        for key, reply in results.items():
            assert reply.result == (key, 1, f"p-{key}", "t")
            assert reply.attempt == 1
            assert reply.queue_wait >= 0.0
            assert reply.elapsed >= 0.0
        # One attach per worker process, at most the pool size.
        assert 1 <= len({r.pid for r in results.values()}) <= 2

    def test_workers_see_shared_arrays(self, bundle):
        results = []
        expected = float(
            bundle.system.etc_task_machine[bundle.trace.task_types].sum()
        )
        with descriptors.publish_dataset(bundle) as published:
            with ParallelEngine(2, handle=published.handle) as engine:
                engine.run(
                    _sum_etc_cell, [0, 1, 2],
                    payload_for=lambda k, a: None,
                    policy=FAST,
                    backoff_for=lambda k, a: 0.0,
                    give_up=lambda k, a, e: pytest.fail(str(e)),
                    on_result=lambda r: results.append(r.result),
                )
        assert results == [expected] * 3

    def test_invalid_worker_count(self):
        with pytest.raises(ParallelExecutionError, match="workers"):
            ParallelEngine(0)

    def test_closed_engine_rejects_run(self):
        engine = ParallelEngine(1)
        engine.close()
        with pytest.raises(ParallelExecutionError, match="closed"):
            engine.run(
                _echo_cell, ["a"], payload_for=lambda k, a: None,
                policy=FAST, backoff_for=lambda k, a: 0.0,
                give_up=lambda k, a, e: None, on_result=lambda r: None,
            )


class TestRetries:
    def test_heap_scheduled_retries_recover(self):
        """Transient failures retry after their backoff and recover;
        backoff_for is consulted exactly once per scheduled retry."""
        results = {}
        backoff_calls = []

        def backoff_for(key, attempt):
            backoff_calls.append((key, attempt))
            return 0.01 * (1 + hash(key) % 3)

        with ParallelEngine(
            2, extra={"failures": {"x": 2, "y": 1, "z": 0}}
        ) as engine:
            engine.run(
                _flaky_cell, ["x", "y", "z"],
                payload_for=lambda k, a: None,
                policy=FAST,
                backoff_for=backoff_for,
                give_up=lambda k, a, e: pytest.fail(f"gave up on {k}"),
                on_result=lambda r: results.__setitem__(r.key, r.result),
            )
        assert results == {"x": "x-ok-3", "y": "y-ok-2", "z": "z-ok-1"}
        assert sorted(backoff_calls) == [("x", 1), ("x", 2), ("y", 1)]

    def test_give_up_after_max_attempts(self):
        failures = []
        with ParallelEngine(2, extra={"failures": {"x": 99}}) as engine:
            engine.run(
                _flaky_cell, ["x", "y"],
                payload_for=lambda k, a: None,
                policy=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
                backoff_for=lambda k, a: 0.0,
                give_up=lambda k, a, e: failures.append((k, a, str(e))),
                on_result=lambda r: None,
            )
        assert len(failures) == 1
        assert failures[0][0] == "x"
        assert failures[0][1] == 2

    def test_give_up_raise_fails_fast(self):
        with ParallelEngine(2, extra={"failures": {"x": 99}}) as engine:
            with pytest.raises(RuntimeError, match="fail fast"):
                engine.run(
                    _flaky_cell, ["x"],
                    payload_for=lambda k, a: None,
                    policy=RetryPolicy(max_attempts=1),
                    backoff_for=lambda k, a: 0.0,
                    give_up=lambda k, a, e: (_ for _ in ()).throw(
                        RuntimeError("fail fast")
                    ),
                    on_result=lambda r: None,
                )


class TestTimeoutLease:
    def test_timed_out_attempt_never_overlaps_its_retry(self, tmp_path):
        """Regression: a hung attempt past its deadline keeps its cell
        lease, so the retry starts only after the zombie finishes —
        previously both ran concurrently (racing on checkpoints and
        double-consuming pool slots)."""
        results = {}
        with ParallelEngine(
            3, extra={"dir": str(tmp_path), "hang": 0.8}
        ) as engine:
            engine.run(
                _lease_probe_cell, ["cell"],
                payload_for=lambda k, a: None,
                policy=RetryPolicy(
                    max_attempts=2, timeout=0.15,
                    backoff_base=0.0, jitter=0.0,
                ),
                backoff_for=lambda k, a: 0.0,
                give_up=lambda k, a, e: pytest.fail(f"gave up: {e}"),
                on_result=lambda r: results.__setitem__(r.key, r.result),
            )
        assert results == {"cell": "recovered"}
        first_start, first_end = map(
            float, (tmp_path / "cell.attempt1").read_text().split()
        )
        second_start, _ = map(
            float, (tmp_path / "cell.attempt2").read_text().split()
        )
        # With 3 workers and a 0.15 s timeout, an unleased retry would
        # start ~0.6 s before the zombie's hang ends.
        assert second_start >= first_end

    def test_permanent_timeout_gives_up_with_timeout_error(self, tmp_path):
        failures = []
        with ParallelEngine(
            2, extra={"dir": str(tmp_path), "hang": 0.4}
        ) as engine:
            engine.run(
                _lease_probe_cell, ["cell"],
                payload_for=lambda k, a: None,
                policy=RetryPolicy(
                    max_attempts=1, timeout=0.1,
                    backoff_base=0.0, jitter=0.0,
                ),
                backoff_for=lambda k, a: 0.0,
                give_up=lambda k, a, e: failures.append(e),
                on_result=lambda r: None,
            )
        assert len(failures) == 1
        assert isinstance(failures[0], TimeoutError)


class TestCrashLifecycle:
    def test_worker_death_does_not_leak_segments(self, bundle):
        """A worker that dies hard breaks the pool, but the published
        segment is still unlinked by the coordinator's cleanup."""
        published = descriptors.publish_dataset(bundle)
        name = published.handle.segment.segment
        try:
            with pytest.raises(Exception):
                with ParallelEngine(2, handle=published.handle) as engine:
                    engine.run(
                        _die_cell, ["a", "b"],
                        payload_for=lambda k, a: None,
                        policy=RetryPolicy(max_attempts=1),
                        backoff_for=lambda k, a: 0.0,
                        give_up=lambda k, a, e: (_ for _ in ()).throw(e),
                        on_result=lambda r: None,
                    )
        finally:
            published.close()
        assert name not in shm.owned_segments()
        assert name not in shm.leaked_segments()


class TestTransports:
    def test_pickle_and_shm_workers_agree(self, bundle):
        outcomes = {}
        for transport in ("shm", "pickle"):
            results = []
            with descriptors.publish_dataset(
                bundle, transport=transport
            ) as published:
                assert published.transport == transport
                with ParallelEngine(2, handle=published.handle) as engine:
                    engine.run(
                        _sum_etc_cell, [0, 1],
                        payload_for=lambda k, a: None,
                        policy=FAST,
                        backoff_for=lambda k, a: 0.0,
                        give_up=lambda k, a, e: pytest.fail(str(e)),
                        on_result=lambda r: results.append(r.result),
                    )
            outcomes[transport] = results
        assert outcomes["shm"] == outcomes["pickle"]

    def test_spawn_context_smoke(self, bundle):
        """The engine also works under the spawn start method (workers
        import the handle fresh instead of inheriting memory)."""
        results = []
        with descriptors.publish_dataset(bundle) as published:
            with ParallelEngine(
                2, handle=published.handle,
                mp_context=multiprocessing.get_context("spawn"),
            ) as engine:
                engine.run(
                    _sum_etc_cell, [0, 1],
                    payload_for=lambda k, a: None,
                    policy=FAST,
                    backoff_for=lambda k, a: 0.0,
                    give_up=lambda k, a, e: pytest.fail(str(e)),
                    on_result=lambda r: results.append(r.result),
                )
        expected = float(
            bundle.system.etc_task_machine[bundle.trace.task_types].sum()
        )
        assert results == [expected] * 2


class TestObservability:
    def test_coordinator_metrics_recorded(self, bundle):
        from repro.obs.context import RunContext

        obs = RunContext.create()
        with descriptors.publish_dataset(bundle, obs=obs) as published:
            with ParallelEngine(
                2, handle=published.handle, obs=obs
            ) as engine:
                engine.run(
                    _sum_etc_cell, [0, 1, 2, 3],
                    payload_for=lambda k, a: None,
                    policy=FAST,
                    backoff_for=lambda k, a: 0.0,
                    give_up=lambda k, a, e: pytest.fail(str(e)),
                    on_result=lambda r: None,
                )
            workers_seen = len(engine.seen_pids)
        snap = obs.metrics.as_dict()
        assert snap["parallel_segment_bytes"]["value"] == published.nbytes
        assert snap["parallel_cells_total"]["value"] == 4
        assert snap["parallel_attach_total"]["value"] == workers_seen
        assert snap["parallel_queue_wait_seconds"]["count"] == 4
