"""Portfolio comparison tests: analysis scoring, the driver, and the CLI."""

import numpy as np
import pytest

from repro.analysis.portfolio import compare_portfolio
from repro.errors import AnalysisError
from repro.exact import ExactFront
from repro.core.objectives import ENERGY_UTILITY


class TestComparePortfolio:
    FRONTS = {
        # (energy, utility): "good" dominates part of "bad".
        "good": np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 25.0]]),
        "bad": np.array([[2.0, 8.0], [3.0, 15.0]]),
    }

    def test_requires_fronts(self):
        with pytest.raises(AnalysisError):
            compare_portfolio({})

    def test_reference_front_is_nondominated_union(self):
        comparison = compare_portfolio(self.FRONTS)
        # "bad" is fully dominated by "good" here.
        np.testing.assert_allclose(
            comparison.reference_front, self.FRONTS["good"]
        )

    def test_dominating_front_scores_better(self):
        comparison = compare_portfolio(self.FRONTS)
        by_name = {s.algorithm: s for s in comparison.scores}
        assert by_name["good"].hypervolume > by_name["bad"].hypervolume
        assert by_name["good"].igd < by_name["bad"].igd
        assert by_name["good"].additive_epsilon < by_name["bad"].additive_epsilon
        assert comparison.best_by_hypervolume().algorithm == "good"

    def test_distance_columns_absent_without_exact(self):
        comparison = compare_portfolio(self.FRONTS)
        assert comparison.exact is None
        for score in comparison.scores:
            assert score.igd_to_exact is None
            assert score.epsilon_to_exact is None
        assert "igd-to-exact" not in comparison.render()

    def test_distance_columns_with_exact(self):
        exact = ExactFront(
            points=np.array([[0.5, 12.0], [1.5, 22.0], [2.5, 30.0]]),
            space=ENERGY_UTILITY,
        )
        comparison = compare_portfolio(self.FRONTS, exact=exact)
        by_name = {s.algorithm: s for s in comparison.scores}
        assert by_name["good"].igd_to_exact < by_name["bad"].igd_to_exact
        rendered = comparison.render()
        assert "igd-to-exact" in rendered and "exact baseline: 3 points" in rendered

    def test_front_reaching_exact_has_zero_gap(self):
        pts = np.array([[1.0, 10.0], [2.0, 20.0]])
        exact = ExactFront(points=pts.copy(), space=ENERGY_UTILITY)
        comparison = compare_portfolio({"perfect": pts}, exact=exact)
        assert comparison.scores[0].igd_to_exact == pytest.approx(0.0,
                                                                  abs=1e-12)


class TestRunPortfolio:
    @pytest.fixture(scope="class")
    def result(self, ds1_bundle):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.portfolio import run_portfolio

        config = ExperimentConfig(
            population_size=12, generations=3, checkpoints=(3,),
            base_seed=2013,
        )
        return run_portfolio(
            ds1_bundle, config,
            algorithms=["nsga2", "spea2", "moead"],
            exact_epsilon=0.05,
        )

    def test_runs_requested_algorithms(self, result):
        assert sorted(result.histories) == ["moead", "nsga2", "spea2"]
        for history in result.histories.values():
            assert history.total_generations == 3

    def test_scores_include_distance_to_exact(self, result):
        assert result.exact is not None and result.exact.size >= 1
        for score in result.comparison.scores:
            assert score.igd_to_exact is not None
            assert score.igd_to_exact >= 0
            # The relaxed front outer-bounds the GA: the gap is real.
            assert score.epsilon_to_exact >= 0

    def test_render_lists_every_algorithm(self, result):
        rendered = result.render()
        for name in ("nsga2", "spea2", "moead"):
            assert name in rendered

    def test_unknown_algorithm_fails_lookup(self, ds1_bundle):
        from repro.errors import AlgorithmLookupError
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.portfolio import run_portfolio

        config = ExperimentConfig(
            population_size=8, generations=1, checkpoints=(1,),
        )
        with pytest.raises(AlgorithmLookupError):
            run_portfolio(ds1_bundle, config, algorithms=["simulated-annealing"],
                          exact_epsilon=None)

    def test_duplicate_algorithms_rejected(self, ds1_bundle):
        from repro.errors import ExperimentError
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.portfolio import run_portfolio

        config = ExperimentConfig(
            population_size=8, generations=1, checkpoints=(1,),
        )
        with pytest.raises(ExperimentError):
            run_portfolio(ds1_bundle, config, algorithms=["nsga2", "nsga2"])


class TestPortfolioCLI:
    def test_portfolio_command(self, capsys):
        from repro.cli import main

        code = main([
            "portfolio", "--dataset", "1", "--generations", "2",
            "--population", "10", "--algorithms", "nsga2", "spea2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "portfolio comparison" in out
        assert "igd-to-exact" in out
        assert "best hypervolume:" in out

    def test_portfolio_no_exact(self, capsys):
        from repro.cli import main

        code = main([
            "portfolio", "--dataset", "1", "--generations", "1",
            "--population", "8", "--algorithms", "nsga2", "--no-exact",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "igd-to-exact" not in out

    def test_rejects_unknown_algorithm_name(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["portfolio", "--algorithms", "tabu"])

    def test_execution_commands_expose_algorithm_flag(self):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (
            ["report", "--algorithm", "spea2"],
            ["resume", "--algorithm", "moead"],
            ["repetitions", "--algorithm", "eps-archive"],
            ["reproduce-all", "--algorithm", "nsga2-ss"],
        ):
            args = parser.parse_args(argv)
            assert args.algorithm == argv[2]

        with pytest.raises(SystemExit):
            parser.parse_args(["report", "--algorithm", "hill-climb"])
