"""Tests for the Figure 5 max utility-per-energy region method."""

import numpy as np
import pytest

from repro.analysis.efficiency import (
    marginal_utility_per_energy,
    max_utility_per_energy_region,
)
from repro.analysis.pareto_front import ParetoFront
from repro.errors import AnalysisError


def knee_front() -> ParetoFront:
    """A synthetic front with a clear knee at (2, 16).

    U/E: 5/1=5, 16/2=8, 18/3=6, 19/4=4.75, 19.5/5=3.9.
    """
    return ParetoFront.from_points(
        np.array(
            [
                [1.0, 5.0],
                [2.0, 16.0],
                [3.0, 18.0],
                [4.0, 19.0],
                [5.0, 19.5],
            ]
        )
    )


class TestRegion:
    def test_peak_located(self):
        region = max_utility_per_energy_region(knee_front())
        assert region.peak_energy == 2.0
        assert region.peak_utility == 16.0
        assert region.peak_ratio == pytest.approx(8.0)
        assert region.peak_index == 1

    def test_region_contiguous_around_peak(self):
        region = max_utility_per_energy_region(knee_front(), tolerance=0.3)
        # Threshold 5.6: points with ratio >= 5.6 around the peak are
        # indices 1 (8.0) and 2 (6.0); index 0 (5.0) excluded.
        np.testing.assert_array_equal(region.region_indices, [1, 2])

    def test_tight_tolerance_just_peak(self):
        region = max_utility_per_energy_region(knee_front(), tolerance=0.0)
        np.testing.assert_array_equal(region.region_indices, [1])

    def test_ratios_follow_points(self):
        f = knee_front()
        region = max_utility_per_energy_region(f)
        np.testing.assert_allclose(region.ratios, f.utilities / f.energies)

    def test_single_point_front(self):
        f = ParetoFront.from_points(np.array([[2.0, 4.0]]))
        region = max_utility_per_energy_region(f)
        assert region.peak_index == 0
        assert region.region_size == 1

    def test_validation(self):
        with pytest.raises(AnalysisError):
            max_utility_per_energy_region(knee_front(), tolerance=1.0)


class TestDiminishingReturns:
    def test_marginal_gains_fall_after_knee(self):
        """Left of the efficient region: large dU/dE; right: small —
        the paper's reading of the circled region."""
        marg = marginal_utility_per_energy(knee_front())
        # Gaps: 11, 2, 1, 0.5 per unit energy.
        np.testing.assert_allclose(marg, [11.0, 2.0, 1.0, 0.5])
        assert np.all(np.diff(marg) < 0)

    def test_region_on_figure_front(self, small_system, small_trace,
                                    small_evaluator):
        """On a real optimized front the peak lies strictly inside the
        energy range whenever the front is non-trivial."""
        from repro.core.nsga2 import NSGA2, NSGA2Config

        ga = NSGA2(small_evaluator, NSGA2Config(population_size=24), rng=5)
        hist = ga.run(30)
        front = ParetoFront(points=hist.final.front_points)
        region = max_utility_per_energy_region(front)
        assert front.energy_range[0] <= region.peak_energy <= front.energy_range[1]
        assert region.peak_ratio >= (front.utilities / front.energies).max() - 1e-12


class TestKneePoint:
    def test_knee_on_synthetic_front(self):
        from repro.analysis.efficiency import knee_point

        f = knee_front()
        # The sharp bend is at (2, 16).
        assert knee_point(f) == 1

    def test_single_point(self):
        from repro.analysis.efficiency import knee_point

        f = ParetoFront.from_points(np.array([[1.0, 1.0]]))
        assert knee_point(f) == 0

    def test_two_points_on_chord(self):
        from repro.analysis.efficiency import knee_point

        f = ParetoFront.from_points(np.array([[1.0, 1.0], [2.0, 2.0]]))
        assert knee_point(f) in (0, 1)

    def test_knee_index_in_range(self, small_system, small_trace,
                                 small_evaluator):
        from repro.analysis.efficiency import knee_point
        from repro.core.nsga2 import NSGA2, NSGA2Config

        ga = NSGA2(small_evaluator, NSGA2Config(population_size=20), rng=6)
        front = ParetoFront(points=ga.run(25).final.front_points)
        k = knee_point(front)
        assert 0 <= k < front.size
