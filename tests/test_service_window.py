"""Pinned-prefix ledger and window evaluator (repro.service.window)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.service.stream import ArrivalStream, WindowBatch
from repro.service.window import CommittedLedger, WindowEvaluator
from repro.sim.evaluator import ScheduleEvaluator
from repro.workload.generator import TaskTypeMix
from repro.workload.trace import Trace


def stream_for(system, rate=0.2, window=60.0, seed=3):
    return ArrivalStream(
        mix=TaskTypeMix.uniform(system.num_task_types),
        window=window, rate=rate, seed=seed,
    )


def random_free_genes(evaluator: WindowEvaluator, n: int, seed: int):
    """Random feasible (assignments, orders) for the window's free tasks."""
    rng = np.random.default_rng(seed)
    feas = evaluator.system.feasible_task_machine[
        evaluator.trace.task_types
    ]
    T = evaluator.num_tasks
    assignments = np.empty((n, T), dtype=np.int64)
    for t in range(T):
        options = np.flatnonzero(feas[t])
        assignments[:, t] = rng.choice(options, size=n)
    orders = np.stack([rng.permutation(T) for _ in range(n)]).astype(np.int64)
    return assignments, orders


def commit_window(evaluator: WindowEvaluator, ledger, batch, seed=11):
    """Commit one random chromosome, as the service would."""
    assignments, orders = random_free_genes(evaluator, 1, seed)
    full = evaluator.evaluate_full(assignments[0], orders[0])
    C = evaluator.committed
    ledger.commit(
        batch, assignments[0], evaluator.absolute_orders(orders[0]),
        full.completion_times[C:], full.task_energies[C:],
        full.task_utilities[C:],
    )
    return full


class TestCommittedLedger:
    def test_commit_advances_order_base(self, small_system):
        stream = stream_for(small_system)
        ledger = CommittedLedger()
        b0 = stream.batch(0)
        ev0 = WindowEvaluator(small_system, ledger, b0)
        commit_window(ev0, ledger, b0)
        assert ledger.order_base == b0.count
        assert ledger.dispatched_total == b0.count
        assert int(ledger.order_keys.max()) == b0.count - 1

    def test_colliding_keys_rejected(self, small_system):
        stream = stream_for(small_system)
        ledger = CommittedLedger()
        b0 = stream.batch(0)
        ev0 = WindowEvaluator(small_system, ledger, b0)
        commit_window(ev0, ledger, b0)
        b1 = stream.batch(1)
        with pytest.raises(ScheduleError, match="collide"):
            # Raw (unshifted) keys overlap window 0's committed range.
            ledger.commit(
                b1, np.zeros(b1.count, dtype=np.int64),
                np.arange(b1.count, dtype=np.int64),
                np.zeros(b1.count), np.zeros(b1.count), np.zeros(b1.count),
            )

    def test_out_of_order_commit_rejected(self, small_system):
        stream = stream_for(small_system)
        ledger = CommittedLedger()
        b1 = stream.batch(1)
        ev1 = WindowEvaluator(small_system, ledger, b1)
        commit_window(ev1, ledger, b1)
        b0 = stream.batch(0)
        with pytest.raises(ScheduleError, match="arrival order"):
            ledger.commit(
                b0, np.zeros(b0.count, dtype=np.int64),
                np.arange(b0.count, dtype=np.int64) + ledger.order_base,
                np.zeros(b0.count), np.zeros(b0.count), np.zeros(b0.count),
            )

    def test_compact_preserves_totals_and_bumps_epoch(self, small_system):
        stream = stream_for(small_system, rate=0.3)
        ledger = CommittedLedger()
        for k in range(3):
            batch = stream.batch(k)
            ev = WindowEvaluator(small_system, ledger, batch)
            commit_window(ev, ledger, batch, seed=k)
        energy_before = ledger.total_energy
        utility_before = ledger.total_utility
        # A horizon start far past every finish makes everything
        # droppable.
        horizon = float(ledger.finish_times.max()) + 1.0
        dropped = ledger.compact(horizon)
        assert dropped == ledger.compacted_total > 0
        assert ledger.epoch == 1
        assert ledger.total_energy == pytest.approx(energy_before, rel=1e-12)
        assert ledger.total_utility == pytest.approx(utility_before, rel=1e-12)
        assert ledger.order_base == ledger.active

    def test_compact_noop_leaves_epoch(self, small_system):
        stream = stream_for(small_system)
        ledger = CommittedLedger()
        b0 = stream.batch(0)
        ev0 = WindowEvaluator(small_system, ledger, b0)
        commit_window(ev0, ledger, b0)
        # Nothing finishes by t=0, so nothing drops.
        assert ledger.compact(0.0) == 0
        assert ledger.epoch == 0

    def test_compact_renumbers_keys_densely(self, small_system):
        stream = stream_for(small_system, rate=0.3)
        ledger = CommittedLedger()
        for k in range(3):
            batch = stream.batch(k)
            ev = WindowEvaluator(small_system, ledger, batch)
            commit_window(ev, ledger, batch, seed=k)
        mid = float(np.median(ledger.finish_times))
        if ledger.compact(mid) == 0:
            pytest.skip("no droppable prefix at the median finish")
        kept = ledger.order_keys
        assert sorted(kept.tolist()) == list(range(ledger.active))
        # Queue order is preserved: along each machine queue (sorted by
        # key), finish times stay nondecreasing.
        for m in np.unique(ledger.machine_assignment):
            idx = np.flatnonzero(ledger.machine_assignment == m)
            queue = idx[np.argsort(kept[idx])]
            finishes = ledger.finish_times[queue]
            assert np.all(np.diff(finishes) >= 0)


class TestWindowEvaluator:
    def test_zero_task_window_rejected(self, small_system):
        batch = WindowBatch(
            index=0, start=0.0, end=10.0,
            task_types=np.empty(0, dtype=np.int64),
            arrival_times=np.empty(0, dtype=np.float64),
        )
        with pytest.raises(ScheduleError):
            WindowEvaluator(small_system, CommittedLedger(), batch)

    def test_matches_direct_horizon_evaluator(self, small_system):
        """Splicing free genes equals evaluating the hand-built horizon
        chromosomes on a plain ScheduleEvaluator — bit for bit."""
        stream = stream_for(small_system, rate=0.3)
        ledger = CommittedLedger()
        b0 = stream.batch(0)
        ev0 = WindowEvaluator(small_system, ledger, b0)
        commit_window(ev0, ledger, b0)
        b1 = stream.batch(1)
        ev1 = WindowEvaluator(small_system, ledger, b1)
        assignments, orders = random_free_genes(ev1, 6, seed=21)
        energies, utilities = ev1.evaluate_batch(assignments, orders)

        horizon = Trace(
            task_types=np.concatenate(
                [ledger.task_types, b1.task_types]
            ),
            arrival_times=np.concatenate(
                [ledger.arrival_times, b1.arrival_times]
            ),
            window=b1.end,
        )
        direct = ScheduleEvaluator(
            small_system, horizon, check_feasibility=False,
            kernel_method="batch",
        )
        C, F = ledger.active, b1.count
        full_a = np.empty((6, C + F), dtype=np.int64)
        full_o = np.empty((6, C + F), dtype=np.int64)
        full_a[:, :C] = ledger.machine_assignment
        full_o[:, :C] = ledger.order_keys
        full_a[:, C:] = assignments
        full_o[:, C:] = orders + ledger.order_base
        ref_e, ref_u = direct.evaluate_batch(full_a, full_o)
        np.testing.assert_array_equal(energies, ref_e)
        np.testing.assert_array_equal(utilities, ref_u)

    def test_committed_prefix_is_frozen(self, small_system):
        """Whatever the free genes are, the committed tasks' finish
        times (hence energies/utilities) never change."""
        stream = stream_for(small_system, rate=0.3)
        ledger = CommittedLedger()
        b0 = stream.batch(0)
        ev0 = WindowEvaluator(small_system, ledger, b0)
        commit_window(ev0, ledger, b0)
        b1 = stream.batch(1)
        ev1 = WindowEvaluator(small_system, ledger, b1)
        C = ev1.committed
        for seed in (5, 6, 7):
            a, o = random_free_genes(ev1, 1, seed)
            full = ev1.evaluate_full(a[0], o[0])
            np.testing.assert_array_equal(
                full.completion_times[:C], ledger.finish_times
            )
            np.testing.assert_array_equal(
                full.task_energies[:C], ledger.task_energies
            )
            np.testing.assert_array_equal(
                full.task_utilities[:C], ledger.task_utilities
            )

    def test_kernel_adoption_is_invisible_and_reuses(self, small_system):
        """Adopted kernel state changes reuse counters, never values."""
        from repro.sim.batchkernel import PREFIX_ANCHOR_STRIDE

        stream = stream_for(small_system, rate=0.3)

        def run(reuse: bool):
            ledger = CommittedLedger()
            b0 = stream.batch(0)
            ev0 = WindowEvaluator(
                small_system, ledger, b0,
                prefix_stride=PREFIX_ANCHOR_STRIDE,
            )
            # Route the to-be-committed chromosome through the kernel so
            # its queue (and prefix-anchor) states are cached before the
            # handover, as happens naturally inside the GA loop.
            a0, o0 = random_free_genes(ev0, 1, seed=32)
            ev0.evaluate_batch(a0, o0)
            full = ev0.evaluate_full(a0[0], o0[0])
            ledger.commit(
                b0, a0[0], ev0.absolute_orders(o0[0]),
                full.completion_times, full.task_energies,
                full.task_utilities,
            )
            b1 = stream.batch(1)
            ev1 = WindowEvaluator(
                small_system, ledger, b1,
                prefix_stride=PREFIX_ANCHOR_STRIDE,
                reuse_from=ev0 if reuse else None,
            )
            a1, o1 = random_free_genes(ev1, 8, seed=33)
            e, u = ev1.evaluate_batch(a1, o1)
            return e, u, ev1

        warm_e, warm_u, warm_ev = run(reuse=True)
        cold_e, cold_u, cold_ev = run(reuse=False)
        np.testing.assert_array_equal(warm_e, cold_e)
        np.testing.assert_array_equal(warm_u, cold_u)
        assert warm_ev.kernel_adopted
        assert not cold_ev.kernel_adopted
        warm_reused = warm_ev.cache_stats["elements_reused"]
        cold_reused = cold_ev.cache_stats["elements_reused"]
        # The adopted caches resume the committed queue prefixes; the
        # cold kernel must fold every element from scratch.
        assert warm_reused > cold_reused

    def test_stale_epoch_reuse_rejected(self, small_system):
        stream = stream_for(small_system, rate=0.3)
        ledger = CommittedLedger()
        b0 = stream.batch(0)
        ev0 = WindowEvaluator(small_system, ledger, b0)
        commit_window(ev0, ledger, b0)
        assert ledger.compact(float(ledger.finish_times.max()) + 1.0) > 0
        b1 = stream.batch(1)
        with pytest.raises(ScheduleError, match="stale"):
            WindowEvaluator(small_system, ledger, b1, reuse_from=ev0)

    def test_offsets_added_after_compaction(self, small_system):
        """Post-compaction objectives stay service-cumulative."""
        stream = stream_for(small_system, rate=0.3)
        ledger = CommittedLedger()
        b0 = stream.batch(0)
        ev0 = WindowEvaluator(small_system, ledger, b0)
        commit_window(ev0, ledger, b0)
        b1 = stream.batch(1)
        ev_pre = WindowEvaluator(small_system, ledger, b1)
        a, o = random_free_genes(ev_pre, 4, seed=41)
        pre_e, pre_u = ev_pre.evaluate_batch(a, o)
        if ledger.compact(b1.start) == 0:
            pytest.skip("window gap too small for compaction")
        ev_post = WindowEvaluator(small_system, ledger, b1)
        post_e, post_u = ev_post.evaluate_batch(a, o)
        # Energy is a pure sum, so the only difference is summation
        # order; utilities additionally depend on finish times, which
        # compaction provably preserves.
        np.testing.assert_allclose(post_e, pre_e, rtol=1e-12)
        np.testing.assert_allclose(post_u, pre_u, rtol=1e-9)
