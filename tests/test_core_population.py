"""Tests for the packed Population container."""

import numpy as np
import pytest

from repro.core.operators import FeasibleMachines
from repro.core.population import Population
from repro.errors import OptimizationError


@pytest.fixture
def feas(small_system, small_trace):
    return FeasibleMachines.from_system_trace(small_system, small_trace)


class TestRandomInit:
    def test_shapes(self, feas):
        rng = np.random.default_rng(0)
        pop = Population.random(feas, 12, rng)
        assert pop.size == 12
        assert pop.num_tasks == feas.num_tasks
        assert not pop.is_evaluated

    def test_orders_are_permutations(self, feas):
        rng = np.random.default_rng(1)
        pop = Population.random(feas, 5, rng)
        T = pop.num_tasks
        for row in pop.orders:
            np.testing.assert_array_equal(np.sort(row), np.arange(T))

    def test_invalid_size(self, feas):
        with pytest.raises(OptimizationError):
            Population.random(feas, 0, np.random.default_rng(0))


class TestEvaluation:
    def test_evaluate_fills_objectives(self, feas, small_evaluator):
        pop = Population.random(feas, 8, np.random.default_rng(2))
        pop.evaluate(small_evaluator)
        assert pop.is_evaluated
        assert pop.objectives.shape == (8, 2)
        assert np.all(pop.energies > 0)

    def test_objectives_before_evaluate_rejected(self, feas):
        pop = Population.random(feas, 3, np.random.default_rng(3))
        with pytest.raises(OptimizationError):
            _ = pop.objectives


class TestComposition:
    def test_concatenate(self, feas, small_evaluator):
        rng = np.random.default_rng(4)
        a = Population.random(feas, 4, rng)
        b = Population.random(feas, 6, rng)
        a.evaluate(small_evaluator)
        b.evaluate(small_evaluator)
        meta = a.concatenate(b)
        assert meta.size == 10
        np.testing.assert_array_equal(meta.energies[:4], a.energies)
        np.testing.assert_array_equal(meta.energies[4:], b.energies)

    def test_concatenate_requires_evaluation(self, feas):
        rng = np.random.default_rng(5)
        a = Population.random(feas, 2, rng)
        b = Population.random(feas, 2, rng)
        with pytest.raises(OptimizationError):
            a.concatenate(b)

    def test_select(self, feas, small_evaluator):
        pop = Population.random(feas, 6, np.random.default_rng(6))
        pop.evaluate(small_evaluator)
        sub = pop.select(np.array([4, 0]))
        assert sub.size == 2
        np.testing.assert_array_equal(sub.assignments[0], pop.assignments[4])
        assert sub.energies[1] == pop.energies[0]

    def test_allocation_roundtrip(self, feas, small_evaluator):
        pop = Population.random(feas, 3, np.random.default_rng(7))
        pop.evaluate(small_evaluator)
        alloc = pop.allocation(1)
        res = small_evaluator.evaluate(alloc)
        assert res.energy == pytest.approx(pop.energies[1])
        assert res.utility == pytest.approx(pop.utilities[1])

    def test_allocation_out_of_range(self, feas):
        pop = Population.random(feas, 3, np.random.default_rng(8))
        with pytest.raises(OptimizationError):
            pop.allocation(3)
