"""Tests for the task-dropping extension."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.extensions.dropping import DroppingPolicy, apply_dropping
from repro.heuristics import MinEnergy

from conftest import random_allocation


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ScheduleError):
            DroppingPolicy(utility_threshold=-1.0)
        with pytest.raises(ScheduleError):
            DroppingPolicy(max_rounds=0)


class TestDropping:
    def test_zero_threshold_drops_nothing_useful(self, small_system, small_trace,
                                                 small_evaluator):
        alloc = random_allocation(small_system, small_trace, seed=1)
        result = apply_dropping(
            small_evaluator, alloc, DroppingPolicy(utility_threshold=0.0)
        )
        assert result.num_dropped == 0
        assert result.energy == pytest.approx(result.baseline.energy)
        assert result.utility == pytest.approx(result.baseline.utility)

    def test_dropping_never_hurts(self, small_system, small_trace,
                                  small_evaluator):
        """Dropping zero-utility tasks saves energy without losing
        utility — the extension is a strict improvement at tiny
        thresholds."""
        for seed in range(5):
            alloc = random_allocation(small_system, small_trace, seed=seed)
            result = apply_dropping(
                small_evaluator, alloc, DroppingPolicy(utility_threshold=1e-9)
            )
            assert result.energy <= result.baseline.energy + 1e-9
            assert result.utility >= result.baseline.utility - 1e-6

    def test_higher_threshold_drops_more(self, small_system, small_trace,
                                         small_evaluator):
        alloc = random_allocation(small_system, small_trace, seed=2)
        low = apply_dropping(small_evaluator, alloc,
                             DroppingPolicy(utility_threshold=1e-9))
        high = apply_dropping(small_evaluator, alloc,
                              DroppingPolicy(utility_threshold=0.5))
        assert high.num_dropped >= low.num_dropped
        assert high.energy <= low.energy + 1e-9

    def test_energy_saved_accounting(self, small_system, small_trace,
                                     small_evaluator):
        alloc = random_allocation(small_system, small_trace, seed=3)
        result = apply_dropping(small_evaluator, alloc,
                                DroppingPolicy(utility_threshold=0.1))
        assert result.energy_saved == pytest.approx(
            result.baseline.energy - result.energy
        )
        assert result.energy_saved >= 0

    def test_dropped_tasks_shorten_queues(self, small_system, small_trace,
                                          small_evaluator):
        """Remaining tasks can only finish earlier once queue-mates are
        dropped — per-task utilities never decrease."""
        alloc = random_allocation(small_system, small_trace, seed=4)
        baseline = small_evaluator.evaluate(alloc)
        result = apply_dropping(small_evaluator, alloc,
                                DroppingPolicy(utility_threshold=0.2))
        if result.num_dropped:
            kept = ~result.dropped
            assert result.utility >= baseline.task_utilities[kept].sum() - 1e-6

    def test_drop_everything(self, tiny_system, tiny_trace):
        from repro.sim.evaluator import ScheduleEvaluator
        from repro.sim.schedule import ResourceAllocation

        ev = ScheduleEvaluator(tiny_system, tiny_trace)
        alloc = ResourceAllocation(
            machine_assignment=np.zeros(6, dtype=int),
            scheduling_order=np.arange(6),
        )
        result = apply_dropping(
            ev, alloc, DroppingPolicy(utility_threshold=np.inf)
        )
        assert result.num_dropped == 6
        assert result.energy == 0.0 and result.utility == 0.0

    def test_fixed_point_terminates(self, small_system, small_trace,
                                    small_evaluator):
        alloc = random_allocation(small_system, small_trace, seed=5)
        result = apply_dropping(small_evaluator, alloc,
                                DroppingPolicy(utility_threshold=0.3))
        assert result.rounds <= DroppingPolicy().max_rounds

    def test_good_allocation_loses_nothing(self, small_system, small_trace,
                                           small_evaluator):
        """A sensible allocation (min-energy) should not have its whole
        workload dropped at small thresholds."""
        alloc = MinEnergy().build(small_system, small_trace)
        result = apply_dropping(small_evaluator, alloc,
                                DroppingPolicy(utility_threshold=1e-9))
        assert result.num_dropped < small_trace.num_tasks
