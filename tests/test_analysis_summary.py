"""Tests for the experiment report and KS similarity."""

import numpy as np
import pytest

from repro.analysis.summary import experiment_report
from repro.data.gram_charlier import GramCharlierPDF
from repro.data.heterogeneity import ks_similarity, mvsk
from repro.errors import DataGenerationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import dataset1
from repro.experiments.runner import run_seeded_populations


@pytest.fixture(scope="module")
def small_result():
    cfg = ExperimentConfig(
        population_size=12, generations=4, checkpoints=(2, 4), base_seed=71
    )
    return run_seeded_populations(
        dataset1(seed=71), cfg, labels=["min-energy", "random"]
    )


class TestExperimentReport:
    def test_sections_present(self, small_result):
        text = experiment_report(small_result)
        assert "Greedy seed objectives" in text
        assert "Final Pareto fronts" in text
        assert "Convergence across checkpoints" in text
        assert "Cross-population dominance" in text
        assert "Best-known front" in text

    def test_populations_listed(self, small_result):
        text = experiment_report(small_result)
        assert "min-energy" in text and "random" in text

    def test_custom_title(self, small_result):
        text = experiment_report(small_result, title="My Study")
        assert text.splitlines()[0] == "My Study"

    def test_numbers_are_plausible(self, small_result):
        """The report's min-energy row quotes the provably minimal
        energy in MJ."""
        e_min = small_result.seed_objectives["min-energy"][0]
        text = experiment_report(small_result)
        assert f"{e_min / 1e6:.4f}" in text


class TestKSSimilarity:
    def test_same_distribution_similar(self):
        rng = np.random.default_rng(1)
        ok, p = ks_similarity(rng.gamma(2, 3, 400), rng.gamma(2, 3, 400))
        assert ok and p > 0.05

    def test_different_distribution_dissimilar(self):
        rng = np.random.default_rng(2)
        ok, p = ks_similarity(rng.gamma(2, 3, 400), rng.gamma(2, 9, 400))
        assert not ok and p < 0.05

    def test_gram_charlier_samples_track_target(self):
        """Large GC samples with the same parameters are KS-similar to
        each other (sampler self-consistency)."""
        pdf = GramCharlierPDF(mean=50.0, std=10.0, skewness=0.5)
        a = pdf.sample(2000, seed=3)
        b = pdf.sample(2000, seed=4)
        ok, _ = ks_similarity(a, b)
        assert ok

    def test_validation(self):
        with pytest.raises(DataGenerationError):
            ks_similarity([], [1.0])
        with pytest.raises(DataGenerationError):
            ks_similarity([1.0], [1.0], alpha=0.0)
