"""Tests for the workload generator and task-type mix."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.arrivals import UniformArrivals
from repro.workload.generator import TaskTypeMix, WorkloadGenerator


class TestTaskTypeMix:
    def test_uniform(self):
        mix = TaskTypeMix.uniform(4)
        np.testing.assert_allclose(mix.weights, 0.25)
        assert mix.num_task_types == 4

    def test_weighted_normalizes(self):
        mix = TaskTypeMix.weighted([1.0, 3.0])
        np.testing.assert_allclose(mix.weights, [0.25, 0.75])

    def test_zero_weight_type_never_sampled(self):
        mix = TaskTypeMix.weighted([1.0, 0.0, 1.0])
        samples = mix.sample(1000, seed=1)
        assert not np.any(samples == 1)

    def test_sampling_tracks_weights(self):
        mix = TaskTypeMix.weighted([1.0, 9.0])
        samples = mix.sample(50_000, seed=2)
        assert np.mean(samples == 1) == pytest.approx(0.9, abs=0.01)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TaskTypeMix.uniform(0)
        with pytest.raises(WorkloadError):
            TaskTypeMix.weighted([0.0, 0.0])
        with pytest.raises(WorkloadError):
            TaskTypeMix.weighted([-1.0, 2.0])


class TestWorkloadGenerator:
    def test_generates_valid_trace(self):
        gen = WorkloadGenerator.uniform_for(5)
        trace = gen.generate(100, 900.0, seed=1)
        assert trace.num_tasks == 100
        assert trace.window == 900.0
        assert int(trace.task_types.max()) < 5

    def test_deterministic(self):
        gen = WorkloadGenerator.uniform_for(5)
        a = gen.generate(50, 100.0, seed=7)
        b = gen.generate(50, 100.0, seed=7)
        np.testing.assert_array_equal(a.task_types, b.task_types)
        np.testing.assert_array_equal(a.arrival_times, b.arrival_times)

    def test_types_sorted_by_arrival_alignment(self):
        """Tasks are indexed by arrival order (the chromosome convention):
        arrival times non-decreasing by construction."""
        trace = WorkloadGenerator.uniform_for(3).generate(200, 100.0, seed=3)
        assert np.all(np.diff(trace.arrival_times) >= 0)

    def test_custom_arrivals(self):
        gen = WorkloadGenerator(
            mix=TaskTypeMix.uniform(2), arrivals=UniformArrivals()
        )
        trace = gen.generate(4, 100.0, seed=5)
        np.testing.assert_allclose(trace.arrival_times, [0.0, 25.0, 50.0, 75.0])

    def test_zero_tasks_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator.uniform_for(2).generate(0, 10.0)
