"""Tests for ETC/EPC/EEC matrices."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.matrices import EECMatrix, EPCMatrix, ETCMatrix, TypedMatrix


def simple() -> np.ndarray:
    return np.array([[10.0, 20.0], [5.0, 40.0]])


class TestConstruction:
    def test_basic(self):
        m = ETCMatrix(simple())
        assert m.shape == (2, 2)
        assert m.num_task_types == 2 and m.num_machine_types == 2
        assert m.feasible.all()

    def test_values_immutable(self):
        m = ETCMatrix(simple())
        with pytest.raises(ValueError):
            m.values[0, 0] = 1.0

    def test_inf_marks_infeasible(self):
        vals = simple()
        vals[0, 1] = np.inf
        m = ETCMatrix(vals)
        assert not m.is_feasible(0, 1)
        assert m.is_feasible(0, 0)

    def test_explicit_mask(self):
        mask = np.array([[True, False], [True, True]])
        vals = simple()
        vals[0, 1] = np.inf
        m = ETCMatrix(vals, mask)
        assert not m.is_feasible(0, 1)

    def test_mask_disagreeing_with_inf_rejected(self):
        vals = simple()
        vals[0, 1] = np.inf
        mask = np.ones((2, 2), dtype=bool)
        with pytest.raises(ModelError):
            ETCMatrix(vals, mask)

    def test_rejects_nan(self):
        vals = simple()
        vals[0, 0] = np.nan
        with pytest.raises(ModelError):
            ETCMatrix(vals)

    def test_rejects_nonpositive(self):
        vals = simple()
        vals[1, 1] = 0.0
        with pytest.raises(ModelError):
            ETCMatrix(vals)

    def test_rejects_1d(self):
        with pytest.raises(ModelError):
            ETCMatrix(np.array([1.0, 2.0]))

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            ETCMatrix(np.empty((0, 0)))


class TestAccess:
    def test_entry_and_bounds(self):
        m = ETCMatrix(simple())
        assert m.entry(0, 1) == 20.0
        with pytest.raises(ModelError):
            m.entry(2, 0)
        with pytest.raises(ModelError):
            m.entry(0, 2)

    def test_feasible_machine_types(self):
        vals = simple()
        vals[0, 0] = np.inf
        m = ETCMatrix(vals)
        np.testing.assert_array_equal(m.feasible_machine_types(0), [1])
        np.testing.assert_array_equal(m.feasible_machine_types(1), [0, 1])


class TestStatistics:
    def test_row_average(self):
        m = ETCMatrix(simple())
        assert m.row_average(0) == 15.0
        np.testing.assert_allclose(m.row_averages(), [15.0, 22.5])

    def test_row_average_skips_infeasible(self):
        vals = np.array([[10.0, np.inf, 20.0]])
        m = ETCMatrix(vals)
        assert m.row_average(0) == 15.0

    def test_ratio_matrix_matches_paper_example(self):
        # Paper Section III-D2: 8 min on a 10-min-average task -> 0.8;
        # 12 min -> 1.2.
        vals = np.array([[8.0, 12.0]])
        m = ETCMatrix(vals)
        np.testing.assert_allclose(m.ratio_matrix(), [[0.8, 1.2]])

    def test_submatrix_reindexes(self):
        m = ETCMatrix(simple())
        sub = m.submatrix(task_types=[1], machine_types=[0])
        assert sub.shape == (1, 1)
        assert sub.values[0, 0] == 5.0


class TestEEC:
    def test_elementwise_product(self):
        etc = ETCMatrix(simple())
        epc = EPCMatrix(np.array([[2.0, 3.0], [4.0, 5.0]]))
        eec = EECMatrix.from_etc_epc(etc, epc)
        np.testing.assert_allclose(eec.values, [[20.0, 60.0], [20.0, 200.0]])

    def test_infeasible_propagates(self):
        vals = simple()
        vals[0, 0] = np.inf
        etc = ETCMatrix(vals)
        epc_vals = np.array([[2.0, 3.0], [4.0, 5.0]])
        epc_vals[0, 0] = np.inf
        epc = EPCMatrix(epc_vals)
        eec = EECMatrix.from_etc_epc(etc, epc)
        assert not eec.is_feasible(0, 0)
        assert np.isinf(eec.values[0, 0])

    def test_shape_mismatch_rejected(self):
        etc = ETCMatrix(simple())
        epc = EPCMatrix(np.array([[2.0, 3.0, 4.0], [4.0, 5.0, 6.0]]))
        with pytest.raises(ModelError):
            EECMatrix.from_etc_epc(etc, epc)

    def test_mask_mismatch_rejected(self):
        a = simple()
        a[0, 0] = np.inf
        etc = ETCMatrix(a)
        epc = EPCMatrix(np.array([[2.0, 3.0], [4.0, 5.0]]))
        with pytest.raises(ModelError):
            EECMatrix.from_etc_epc(etc, epc)
