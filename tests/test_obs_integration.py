"""Integration tests: observability wired through the real execution
stack.

The two load-bearing guarantees:

* **determinism** — enabling observability changes no optimization
  result: fronts, populations, and checkpoints (modulo wall-clock
  fields) are bit-identical with it on or off, including across a
  checkpoint resume;
* **fidelity** — an instrumented run emits schema-valid artifacts whose
  GA stage breakdown reconciles with the engine's own
  :class:`~repro.core.telemetry.StageTimings` within 1%.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import dataset1
from repro.experiments.runner import RetryPolicy, run_seeded_populations
from repro.obs import RunContext, validate_run_dir
from repro.obs.report import load_run_dir, stage_totals, trace_report
from repro.sim.evaluator import ScheduleEvaluator
from repro.testing.faults import FaultPlan

CFG = ExperimentConfig(
    population_size=12, generations=4, checkpoints=(2, 4), base_seed=321
)
LABELS = ("min-energy", "random")


@pytest.fixture(scope="module")
def bundle():
    return dataset1(seed=321)


def _metric(metrics: dict, name: str) -> float:
    return metrics[name]["value"]


class TestDeterminism:
    def test_fronts_bit_identical_with_obs_on(self, bundle):
        dark = run_seeded_populations(bundle, CFG, labels=LABELS)
        obs = RunContext.create(level="debug")
        lit = run_seeded_populations(bundle, CFG, labels=LABELS, obs=obs)
        for label in LABELS:
            np.testing.assert_array_equal(
                dark.histories[label].final.front_points,
                lit.histories[label].final.front_points,
            )
            np.testing.assert_array_equal(
                dark.histories[label].final.front_assignments,
                lit.histories[label].final.front_assignments,
            )

    def test_checkpoints_bit_identical_with_obs_on(self, bundle, tmp_path):
        """Checkpoint payloads match byte-for-byte except wall-clock
        fields (elapsed_seconds), with observability on vs off."""
        run_seeded_populations(
            bundle, CFG, labels=("random",),
            checkpoint_dir=str(tmp_path / "dark"),
        )
        obs = RunContext.create(level="debug")
        run_seeded_populations(
            bundle, CFG, labels=("random",),
            checkpoint_dir=str(tmp_path / "lit"), obs=obs,
        )
        dark = json.loads(
            (tmp_path / "dark" / "random.checkpoint.json").read_text()
        )["payload"]
        lit = json.loads(
            (tmp_path / "lit" / "random.checkpoint.json").read_text()
        )["payload"]
        dark.pop("elapsed_seconds")
        lit.pop("elapsed_seconds")
        assert dark == lit

    def test_resume_with_obs_matches_uninterrupted_dark_run(
        self, bundle, tmp_path
    ):
        """Interrupt at generation 2 and resume — with observability
        enabled on both legs — and the final front equals a dark,
        uninterrupted run's."""
        dark = run_seeded_populations(bundle, CFG, labels=("random",))

        stop_at_2 = ExperimentConfig(
            population_size=12, generations=4, checkpoints=(2, 4),
            base_seed=321,
        )
        ckpt = str(tmp_path / "ckpt")
        # Batch call 1 evaluates the initial population; calls 2..5 are
        # generations 1..4 — crash at call 4 (generation 3), after the
        # generation-2 checkpoint is durable.
        plan = FaultPlan().crash("evaluate", at_call=4)
        obs = RunContext.create(level="debug")
        with pytest.raises(Exception):
            run_seeded_populations(
                bundle, stop_at_2, labels=("random",),
                checkpoint_dir=ckpt, retry=RetryPolicy(max_attempts=1),
                evaluation_fault_hook=plan.evaluation_hook(),
                strict=True, obs=obs,
            )
        obs2 = RunContext.create(level="debug")
        resumed = run_seeded_populations(
            bundle, stop_at_2, labels=("random",),
            checkpoint_dir=ckpt, resume=True, obs=obs2,
        )
        np.testing.assert_array_equal(
            dark.histories["random"].final.front_points,
            resumed.histories["random"].final.front_points,
        )
        events = [e["event"] for e in obs2.events.events]
        assert "run.resumed" in events


class TestInstrumentedRun:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        bundle = dataset1(seed=321)
        out = tmp_path_factory.mktemp("obs") / "run"
        obs = RunContext.create(obs_dir=out, run_id="itest", level="debug",
                                dataset=bundle.name)
        run_seeded_populations(
            bundle, CFG, labels=LABELS,
            checkpoint_dir=str(out.parent / "ckpt"), obs=obs,
        )
        obs.flush()
        return out

    def test_artifacts_schema_valid(self, run_dir):
        assert validate_run_dir(run_dir) == []

    def test_expected_spans_events_metrics_present(self, run_dir):
        data = load_run_dir(run_dir)
        span_names = {s["name"] for s in data["spans"]}
        assert {"ga.run", "ga.generation", "ga.initial_population",
                "evaluator.batch", "checkpoint.save", "seeding.build",
                "ga.stage.evaluate", "ga.stage_total.evaluate"} <= span_names
        event_names = {e["event"] for e in data["events"]}
        assert {"run.started", "run.finished", "generation.sampled",
                "checkpoint.committed"} <= event_names
        metrics = data["metrics"]
        assert _metric(metrics, "ga_generations_total") == 2 * CFG.generations
        assert _metric(metrics, "evaluator_chromosomes_total") > 0
        assert _metric(metrics, "checkpoint_bytes_written_total") > 0
        # Two populations, checkpointed every generation (4 each).
        assert metrics["checkpoint_fsync_seconds"]["count"] == 8
        assert metrics["evaluator_batch_seconds"]["count"] > 0
        assert _metric(metrics, "process_max_rss_bytes") > 0

    def test_stage_totals_reconcile_with_stage_timings(self, bundle):
        """The trace's aggregate stage spans equal the engine's own
        StageTimings (well within the 1% acceptance bound)."""
        evaluator = ScheduleEvaluator(bundle.system, bundle.trace,
                                      check_feasibility=False)
        obs = RunContext.create(level="info")
        ga = NSGA2(evaluator, NSGA2Config(population_size=12), rng=5,
                   obs=obs)
        ga.run(6)
        traced = stage_totals([s.to_doc() for s in obs.tracer.spans])
        assert set(traced) == set(ga.stage_timings.totals)
        for stage, (total, count) in traced.items():
            assert total == pytest.approx(
                ga.stage_timings.totals[stage], rel=0.01
            )
            assert count == ga.stage_timings.counts[stage] == 6

    def test_info_level_omits_per_generation_stage_spans(self, bundle):
        evaluator = ScheduleEvaluator(bundle.system, bundle.trace,
                                      check_feasibility=False)
        obs = RunContext.create(level="info")
        ga = NSGA2(evaluator, NSGA2Config(population_size=12), rng=6,
                   obs=obs)
        ga.run(3)
        names = [s.name for s in obs.tracer.spans]
        assert not any(n.startswith("ga.stage.") for n in names)
        assert any(n.startswith("ga.stage_total.") for n in names)
        assert names.count("ga.generation") == 3

    def test_trace_report_renders(self, run_dir):
        report = trace_report(run_dir)
        assert "itest" in report
        assert "GA stage breakdown" in report
        assert "evaluate" in report
        assert "checkpoint.committed" in report or "collapsed" in report


class TestFailureTelemetry:
    def test_retry_and_fault_events_recorded(self, bundle, tmp_path):
        obs = RunContext.create(level="debug")
        plan = FaultPlan().transient("random", failures=1).observe(obs)
        sleeps = []
        result = run_seeded_populations(
            bundle, CFG, labels=("random",),
            retry=RetryPolicy(max_attempts=2, backoff_base=0.01),
            fault_hook=plan.on_attempt, sleep=sleeps.append, obs=obs,
        )
        assert "random" in result.histories
        events = [e["event"] for e in obs.events.events]
        assert "fault.injected" in events
        assert "retry.scheduled" in events
        metrics = obs.metrics.as_dict()
        assert _metric(metrics, "runner_retries_total") == 1
        assert _metric(metrics, "faults_injected_total") == 1

    def test_exhausted_population_records_failure(self, bundle):
        obs = RunContext.create(level="debug")
        plan = FaultPlan().crash("random").observe(obs)
        result = run_seeded_populations(
            bundle, CFG, labels=LABELS,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            fault_hook=plan.on_attempt, sleep=lambda _s: None, obs=obs,
        )
        assert result.failed_labels == ("random",)
        events = [e["event"] for e in obs.events.events]
        assert "population.failed" in events
        assert _metric(obs.metrics.as_dict(), "runner_failures_total") == 1

    def test_fault_plan_obs_dropped_on_pickle(self):
        import pickle

        obs = RunContext.create()
        plan = FaultPlan(seed=3).crash("x").observe(obs)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone._obs is None
        assert [r.kind for r in clone.rules] == ["crash"]


class TestEvaluatorCacheMetrics:
    def test_evictions_counted(self, bundle):
        obs = RunContext.create()
        evaluator = ScheduleEvaluator(bundle.system, bundle.trace,
                                      check_feasibility=False,
                                      cache_size=8, obs=obs,
                                      kernel_method="fast")
        ga = NSGA2(evaluator, NSGA2Config(population_size=12), rng=7,
                   obs=obs)
        ga.run(3)
        stats = evaluator.cache_stats
        assert stats["evictions"] > 0
        metrics = obs.metrics.as_dict()
        assert (_metric(metrics, "evaluator_cache_evictions_total")
                == stats["evictions"])
        # The metric is a monotonic lifetime counter; stats["hits"] is
        # the current window (reset by capacity clears, which a
        # cache_size=8 run is guaranteed to have had).
        assert (_metric(metrics, "evaluator_cache_hits_total")
                == stats["lifetime_hits"])


class TestCliTrace:
    def test_cli_records_and_summarizes(self, tmp_path, capsys):
        obs_dir = tmp_path / "obs"
        code = main([
            "report", "--dataset", "1", "--scale", "0.0005",
            "--population", "12", "--seed", "321",
            "--obs-dir", str(obs_dir), "--obs-level", "debug",
        ])
        assert code == 0
        assert (obs_dir / "trace.jsonl").exists()
        capsys.readouterr()

        assert main(["trace", str(obs_dir), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "valid observability directory" in out

        assert main(["trace", str(obs_dir), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "GA stage breakdown" in out
        assert "slowest 3 spans" in out

    def test_cli_trace_bad_dir(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope")]) == 2
        assert "not an observability directory" in capsys.readouterr().err
