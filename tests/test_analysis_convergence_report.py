"""Tests for convergence series and text reporting."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    convergence_series,
    dominance_fraction,
    reference_front,
)
from repro.analysis.pareto_front import ParetoFront
from repro.analysis.report import (
    ascii_scatter,
    format_front,
    format_front_summary,
    format_table,
)
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.errors import AnalysisError


@pytest.fixture
def two_histories(small_evaluator):
    h1 = NSGA2(small_evaluator, NSGA2Config(population_size=16), rng=1,
               label="a").run(10, checkpoints=[5, 10])
    h2 = NSGA2(small_evaluator, NSGA2Config(population_size=16), rng=2,
               label="b").run(10, checkpoints=[5, 10])
    return [h1, h2]


class TestConvergence:
    def test_reference_front_covers_all(self, two_histories):
        ref = reference_front(two_histories)
        for h in two_histories:
            for snap in h.snapshots:
                f = ParetoFront.from_points(snap.front_points)
                # Reference front is never dominated by any snapshot.
                assert ref.fraction_dominated_by(f) == 0.0

    def test_series_structure(self, two_histories):
        series = convergence_series(two_histories)
        assert len(series) == sum(len(h.snapshots) for h in two_histories)
        labels = {p.label for p in series}
        assert labels == {"a", "b"}
        for p in series:
            assert p.hypervolume >= 0
            assert p.igd_to_reference >= 0
            assert p.front_size > 0

    def test_hypervolume_nondecreasing_within_run(self, two_histories):
        series = convergence_series(two_histories)
        for label in ("a", "b"):
            pts = sorted(
                (p for p in series if p.label == label),
                key=lambda p: p.generation,
            )
            hv = [p.hypervolume for p in pts]
            assert hv == sorted(hv)

    def test_empty_histories_rejected(self):
        with pytest.raises(AnalysisError):
            convergence_series([])

    def test_dominance_fraction_raw_arrays(self):
        target = np.array([[2.0, 5.0], [3.0, 6.0]])
        by = np.array([[1.0, 9.0]])
        assert dominance_fraction(target, by) == 1.0
        assert dominance_fraction(by, target) == 0.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["col", "x"], [["a", 1], ["bbb", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_format_front(self):
        f = ParetoFront.from_points(np.array([[1e6, 5.0], [2e6, 8.0]]))
        text = format_front(f)
        assert "2 points" in text
        assert "1.0000" in text and "2.0000" in text

    def test_format_front_downsamples(self):
        pts = np.column_stack(
            [np.linspace(1e6, 2e6, 100), np.linspace(1, 100, 100)]
        )
        f = ParetoFront.from_points(pts)
        text = format_front(f, max_rows=10)
        assert len(text.splitlines()) <= 13

    def test_front_summary(self):
        fronts = {
            "x": ParetoFront.from_points(np.array([[1e6, 5.0], [2e6, 8.0]])),
        }
        text = format_front_summary(fronts)
        assert "x" in text and "peak-U/E" in text

    def test_ascii_scatter_renders_markers(self):
        series = {
            "a": np.array([[1e6, 1.0], [2e6, 2.0]]),
            "b": np.array([[1.5e6, 3.0]]),
        }
        plot = ascii_scatter(series, width=40, height=10)
        assert "o = a" in plot and "* = b" in plot
        assert "o" in plot.splitlines()[5] or any(
            "o" in line for line in plot.splitlines()
        )

    def test_ascii_scatter_validation(self):
        with pytest.raises(AnalysisError):
            ascii_scatter({})
        with pytest.raises(AnalysisError):
            ascii_scatter({"a": np.array([[1.0, 1.0]])}, width=5, height=5)
