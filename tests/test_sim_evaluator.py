"""Tests for the vectorized schedule evaluator."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.schedule import ResourceAllocation
from repro.workload.trace import Trace

from conftest import make_tiny_system, random_allocation


class TestHandComputedSchedule:
    """A fully hand-verified scenario on the tiny system.

    Machine 0 (ETC column [10, 30, 8]); tasks 0 (type 0, arr 0),
    3 (type 0, arr 15) on machine 0 in order [0, 3]; task 1 (type 1,
    arr 5) alone on machine 1 (ETC 15); tasks 2 and 4 on machine 2;
    task 5 on machine 3.
    """

    def make(self, tiny_system):
        trace = Trace(
            task_types=np.array([0, 1, 2, 0, 1, 2]),
            arrival_times=np.array([0.0, 5.0, 10.0, 15.0, 20.0, 25.0]),
            window=30.0,
        )
        alloc = ResourceAllocation(
            machine_assignment=np.array([0, 1, 2, 0, 2, 3]),
            scheduling_order=np.array([0, 1, 2, 3, 4, 5]),
        )
        return ScheduleEvaluator(tiny_system, trace), trace, alloc

    def test_completion_times(self, tiny_system):
        ev, trace, alloc = self.make(tiny_system)
        res = ev.evaluate(alloc)
        # Machine 0: task 0 starts 0, ends 10; task 3 arrives 15 > 10,
        # starts 15, ends 25.
        assert res.completion_times[0] == pytest.approx(10.0)
        assert res.start_times[3] == pytest.approx(15.0)
        assert res.completion_times[3] == pytest.approx(25.0)
        # Machine 1: task 1 starts at its arrival 5, ETC(1,1)=15 -> 20.
        assert res.completion_times[1] == pytest.approx(20.0)
        # Machine 2: task 2 (type 2, ETC 8) 10->18; task 4 (type 1,
        # ETC(1,2)=25) arrives 20 > 18 -> 20->45.
        assert res.completion_times[2] == pytest.approx(18.0)
        assert res.completion_times[4] == pytest.approx(45.0)
        # Machine 3: task 5 (type 2, ETC 8): 25->33.
        assert res.completion_times[5] == pytest.approx(33.0)
        assert res.makespan == pytest.approx(45.0)

    def test_energy_is_sum_of_eec(self, tiny_system):
        ev, trace, alloc = self.make(tiny_system)
        res = ev.evaluate(alloc)
        eec = tiny_system.eec_task_machine
        expected = (
            eec[0, 0] + eec[1, 1] + eec[2, 2] + eec[0, 0] + eec[1, 2] + eec[2, 3]
        )
        assert res.energy == pytest.approx(expected)
        np.testing.assert_allclose(res.task_energies.sum(), res.energy)

    def test_utility_from_tufs(self, tiny_system):
        ev, trace, alloc = self.make(tiny_system)
        res = ev.evaluate(alloc)
        expected = sum(
            tiny_system.task_types[trace.task_types[i]].utility_function(
                res.completion_times[i] - trace.arrival_times[i]
            )
            for i in range(6)
        )
        assert res.utility == pytest.approx(expected)

    def test_queue_idles_until_arrival(self, tiny_system):
        """Paper: a machine sits idle when its next task has not arrived
        — even if a later-keyed task is already waiting."""
        trace = Trace(
            task_types=np.array([0, 0]),
            arrival_times=np.array([0.0, 20.0]),
            window=30.0,
        )
        # Task 1 (arriving at 20) is keyed BEFORE task 0 on machine 0.
        alloc = ResourceAllocation(
            machine_assignment=np.array([0, 0]),
            scheduling_order=np.array([1, 0]),
        )
        ev = ScheduleEvaluator(tiny_system, trace)
        res = ev.evaluate(alloc)
        # Machine idles to 20, runs task 1 (20->30), then task 0 (30->40).
        assert res.start_times[1] == pytest.approx(20.0)
        assert res.completion_times[1] == pytest.approx(30.0)
        assert res.start_times[0] == pytest.approx(30.0)
        assert res.completion_times[0] == pytest.approx(40.0)


class TestValidation:
    def test_wrong_task_count(self, tiny_evaluator):
        alloc = ResourceAllocation(np.array([0]), np.array([0]))
        with pytest.raises(ScheduleError):
            tiny_evaluator.evaluate(alloc)

    def test_machine_out_of_range(self, tiny_evaluator, tiny_trace):
        alloc = ResourceAllocation(
            np.full(tiny_trace.num_tasks, 99), np.arange(tiny_trace.num_tasks)
        )
        with pytest.raises(ScheduleError):
            tiny_evaluator.evaluate(alloc)

    def test_infeasible_assignment_caught(self):
        from test_model_system import make_special_system
        from repro.utility.tuf import TimeUtilityFunction

        sys_ = make_special_system().with_utility_functions(
            [TimeUtilityFunction.linear(5.0, 0.01)] * 2
        )
        trace = Trace(np.array([1]), np.array([0.0]), window=10.0)
        ev = ScheduleEvaluator(sys_, trace)
        # Task type 1 cannot run on machine 2 (special).
        bad = ResourceAllocation(np.array([2]), np.array([0]))
        with pytest.raises(ScheduleError):
            ev.evaluate(bad)

    def test_batch_shape_validation(self, tiny_evaluator):
        with pytest.raises(ScheduleError):
            tiny_evaluator.evaluate_batch(
                np.zeros((2, 3), dtype=int), np.zeros((2, 6), dtype=int)
            )


class TestBatchConsistency:
    def test_batch_matches_single(self, small_system, small_trace, small_evaluator):
        rng = np.random.default_rng(1)
        N = 12
        allocs = [
            random_allocation(small_system, small_trace, seed=i) for i in range(N)
        ]
        assignments = np.stack([a.machine_assignment for a in allocs])
        orders = np.stack([a.scheduling_order for a in allocs])
        energies, utilities = small_evaluator.evaluate_batch(assignments, orders)
        for i, alloc in enumerate(allocs):
            res = small_evaluator.evaluate(alloc)
            assert energies[i] == pytest.approx(res.energy)
            assert utilities[i] == pytest.approx(res.utility)

    def test_empty_batch(self, small_evaluator):
        e, u = small_evaluator.evaluate_batch(
            np.empty((0, small_evaluator.num_tasks), dtype=int),
            np.empty((0, small_evaluator.num_tasks), dtype=int),
        )
        assert e.shape == (0,) and u.shape == (0,)

    def test_duplicate_order_keys_stable(self, small_system, small_trace):
        """Duplicate keys break ties by task index — identical results
        for identical inputs, and order-key ties resolved stably."""
        ev = ScheduleEvaluator(small_system, small_trace)
        T = small_trace.num_tasks
        alloc = ResourceAllocation(
            machine_assignment=np.zeros(T, dtype=int),
            scheduling_order=np.zeros(T, dtype=int),  # all tied
        )
        res = ev.evaluate(alloc)
        # Ties by index == arrival order on one machine: completions
        # strictly increase.
        assert np.all(np.diff(res.completion_times) > 0)


class TestObjectivesShortcut:
    def test_objectives_tuple(self, tiny_evaluator, tiny_trace):
        alloc = ResourceAllocation(
            np.zeros(tiny_trace.num_tasks, dtype=int),
            np.arange(tiny_trace.num_tasks),
        )
        e, u = tiny_evaluator.objectives(alloc)
        res = tiny_evaluator.evaluate(alloc)
        assert (e, u) == (res.energy, res.utility)


class TestQueueGroups:
    def test_identity_default(self, small_system, small_trace, small_evaluator):
        """Default queue groups: one queue per machine."""
        assert small_evaluator._num_queues == small_system.num_machines

    def test_bad_shape_rejected(self, small_system, small_trace):
        with pytest.raises(ScheduleError):
            ScheduleEvaluator(
                small_system, small_trace,
                queue_groups=np.zeros(3, dtype=np.int64),
            )

    def test_negative_group_rejected(self, small_system, small_trace):
        groups = np.zeros(small_system.num_machines, dtype=np.int64)
        groups[0] = -1
        with pytest.raises(ScheduleError):
            ScheduleEvaluator(small_system, small_trace, queue_groups=groups)

    def test_all_machines_one_queue(self, small_system, small_trace):
        """Collapsing every machine into one queue serializes the whole
        trace: makespan >= sum of executed times minus idle slack, and
        no two tasks overlap."""
        groups = np.zeros(small_system.num_machines, dtype=np.int64)
        ev = ScheduleEvaluator(small_system, small_trace, queue_groups=groups)
        T = small_trace.num_tasks
        alloc = ResourceAllocation(
            machine_assignment=np.arange(T) % small_system.num_machines,
            scheduling_order=np.arange(T),
        )
        res = ev.evaluate(alloc)
        order = np.argsort(res.start_times)
        starts = res.start_times[order]
        finishes = res.completion_times[order]
        assert np.all(starts[1:] >= finishes[:-1] - 1e-9)
