"""Tests for crossover/mutation operators and the feasible-machine table."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.operators import (
    FeasibleMachines,
    OperatorConfig,
    VariationOperators,
    repair_orders,
)
from repro.errors import OptimizationError
from repro.workload.trace import Trace

from conftest import make_tiny_system
from test_model_system import make_special_system


def special_feasible():
    from repro.utility.tuf import TimeUtilityFunction

    sys_ = make_special_system().with_utility_functions(
        [TimeUtilityFunction.linear(5.0, 0.01)] * 2
    )
    trace = Trace(
        task_types=np.array([0, 1, 0, 1]),
        arrival_times=np.array([0.0, 1.0, 2.0, 3.0]),
        window=10.0,
    )
    return sys_, trace, FeasibleMachines.from_system_trace(sys_, trace)


class TestFeasibleMachines:
    def test_counts_and_membership(self):
        sys_, trace, feas = special_feasible()
        # Task type 0 can use machines 0, 1, 2; type 1 only 0, 1.
        np.testing.assert_array_equal(feas.counts, [3, 2, 3, 2])
        assert set(feas.padded[0, :3].tolist()) == {0, 1, 2}
        assert set(feas.padded[1, :2].tolist()) == {0, 1}

    def test_sampling_respects_feasibility(self):
        sys_, trace, feas = special_feasible()
        rng = np.random.default_rng(0)
        for _ in range(20):
            machines = feas.sample(np.array([1, 3]), rng)
            assert np.all(np.isin(machines, [0, 1]))

    def test_sample_matrix_feasible(self):
        sys_, trace, feas = special_feasible()
        rng = np.random.default_rng(1)
        m = feas.sample_matrix(50, rng)
        assert m.shape == (50, 4)
        mask = sys_.feasible_task_machine[trace.task_types]
        for row in m:
            assert np.all(mask[np.arange(4), row])

    def test_sampling_covers_all_feasible(self):
        sys_, trace, feas = special_feasible()
        rng = np.random.default_rng(2)
        seen = set(
            feas.sample(np.zeros(300, dtype=np.int64), rng).tolist()
        )
        assert seen == {0, 1, 2}


class TestRepairOrders:
    def test_rank_transform(self):
        orders = np.array([[5, 1, 5], [9, 9, 9]])
        fixed = repair_orders(orders)
        np.testing.assert_array_equal(fixed[0], [1, 0, 2])
        np.testing.assert_array_equal(fixed[1], [0, 1, 2])

    def test_permutation_unchanged_in_effect(self):
        orders = np.array([[2, 0, 1]])
        np.testing.assert_array_equal(repair_orders(orders), orders)


class TestOperatorConfig:
    def test_validation(self):
        with pytest.raises(OptimizationError):
            OperatorConfig(mutation_probability=1.5)
        with pytest.raises(OptimizationError):
            OperatorConfig(mutations_per_offspring=0)


class TestCrossover:
    def make_ops(self, repair=False):
        sys_, trace, feas = special_feasible()
        return sys_, trace, VariationOperators(
            feas, OperatorConfig(mutation_probability=1.0, repair_order=repair)
        )

    def test_offspring_size_matches(self):
        sys_, trace, ops = self.make_ops()
        rng = np.random.default_rng(3)
        feas = ops.feasible
        assign = feas.sample_matrix(10, rng)
        orders = np.tile(np.arange(4), (10, 1))
        ca, co = ops.crossover_population(assign, orders, rng)
        assert ca.shape == assign.shape and co.shape == orders.shape

    def test_genes_come_from_parents_at_same_position(self):
        """Every child gene (machine AND order) equals some parent's
        gene at the same position — the paper's positional swap."""
        sys_, trace, ops = self.make_ops()
        rng = np.random.default_rng(4)
        feas = ops.feasible
        assign = feas.sample_matrix(8, rng)
        orders = np.stack([rng.permutation(4) for _ in range(8)])
        ca, co = ops.crossover_population(assign, orders, rng)
        for child in range(ca.shape[0]):
            for g in range(4):
                pairs = set(zip(assign[:, g].tolist(), orders[:, g].tolist()))
                assert (ca[child, g], co[child, g]) in pairs

    def test_feasibility_preserved(self):
        sys_, trace, ops = self.make_ops()
        rng = np.random.default_rng(5)
        feas = ops.feasible
        mask = sys_.feasible_task_machine[trace.task_types]
        assign = feas.sample_matrix(20, rng)
        orders = np.stack([rng.permutation(4) for _ in range(20)])
        for _ in range(10):
            assign, orders = ops.crossover_population(assign, orders, rng)
            assign, orders = ops.mutate_population(assign, orders, rng)
            for row in assign:
                assert np.all(mask[np.arange(4), row])

    def test_odd_population(self):
        sys_, trace, ops = self.make_ops()
        rng = np.random.default_rng(6)
        assign = ops.feasible.sample_matrix(5, rng)
        orders = np.tile(np.arange(4), (5, 1))
        ca, co = ops.crossover_population(assign, orders, rng)
        assert ca.shape == (5, 4)

    def test_single_parent_copies(self):
        sys_, trace, ops = self.make_ops()
        rng = np.random.default_rng(7)
        assign = ops.feasible.sample_matrix(1, rng)
        orders = np.tile(np.arange(4), (1, 1))
        ca, co = ops.crossover_population(assign, orders, rng)
        np.testing.assert_array_equal(ca, assign)

    def test_repair_mode_yields_permutations(self):
        sys_, trace, ops = self.make_ops(repair=True)
        rng = np.random.default_rng(8)
        assign = ops.feasible.sample_matrix(10, rng)
        orders = np.stack([rng.permutation(4) for _ in range(10)])
        for _ in range(5):
            assign, orders = ops.crossover_population(assign, orders, rng)
            assign, orders = ops.mutate_population(assign, orders, rng)
        for row in orders:
            np.testing.assert_array_equal(np.sort(row), np.arange(4))


class TestMutation:
    def test_zero_probability_no_change(self):
        sys_, trace, feas = special_feasible()
        ops = VariationOperators(feas, OperatorConfig(mutation_probability=0.0))
        rng = np.random.default_rng(9)
        assign = feas.sample_matrix(10, rng)
        orders = np.tile(np.arange(4), (10, 1))
        a2, o2 = ops.mutate_population(assign.copy(), orders.copy(), rng)
        np.testing.assert_array_equal(a2, assign)
        np.testing.assert_array_equal(o2, orders)

    def test_mutation_changes_population(self):
        sys_, trace, feas = special_feasible()
        ops = VariationOperators(feas, OperatorConfig(mutation_probability=1.0))
        rng = np.random.default_rng(10)
        assign = feas.sample_matrix(30, rng)
        orders = np.stack([rng.permutation(4) for _ in range(30)])
        a2, o2 = ops.mutate_population(assign.copy(), orders.copy(), rng)
        assert (not np.array_equal(a2, assign)) or (not np.array_equal(o2, orders))

    def test_order_swap_preserves_multiset(self):
        """Mutation swaps two order keys — the key multiset per
        chromosome is invariant."""
        sys_, trace, feas = special_feasible()
        ops = VariationOperators(feas, OperatorConfig(mutation_probability=1.0))
        rng = np.random.default_rng(11)
        orders = np.stack([rng.permutation(4) for _ in range(20)])
        before = np.sort(orders, axis=1).copy()
        assign = feas.sample_matrix(20, rng)
        _, o2 = ops.mutate_population(assign, orders, rng)
        np.testing.assert_array_equal(np.sort(o2, axis=1), before)
