"""Tests for time-utility functions, including Figure 1 spot checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UtilityFunctionError
from repro.utility.intervals import DecayShape, UtilityClass, UtilityInterval
from repro.utility.tuf import TimeUtilityFunction


class TestBasicShapes:
    def test_linear_values(self):
        tuf = TimeUtilityFunction.linear(priority=10.0, urgency=0.01)
        # decays 10 * 0.01 = 0.1 utility per second
        assert tuf(0.0) == pytest.approx(10.0)
        assert tuf(50.0) == pytest.approx(5.0)
        assert tuf(100.0) == pytest.approx(0.0)
        assert tuf(1000.0) == 0.0

    def test_exponential_values(self):
        tuf = TimeUtilityFunction.exponential(priority=4.0, urgency=0.1,
                                              floor_fraction=0.01)
        assert tuf(0.0) == pytest.approx(4.0)
        assert tuf(10.0) == pytest.approx(4.0 * np.exp(-1.0))
        # After reaching the floor, the value stays at floor.
        assert tuf(10_000.0) == pytest.approx(0.04)

    def test_hard_deadline(self):
        tuf = TimeUtilityFunction.hard_deadline(priority=8.0, deadline_seconds=60.0)
        assert tuf(0.0) == 8.0
        assert tuf(59.999) == 8.0
        assert tuf(61.0) == pytest.approx(0.0, abs=1e-9)

    def test_negative_elapsed_clamped(self):
        tuf = TimeUtilityFunction.linear(10.0, 0.01)
        assert tuf(-5.0) == 10.0

    def test_priority_urgency_validation(self):
        with pytest.raises(UtilityFunctionError):
            TimeUtilityFunction.linear(0.0, 0.1)
        with pytest.raises(UtilityFunctionError):
            TimeUtilityFunction.linear(1.0, -0.1)
        with pytest.raises(UtilityFunctionError):
            TimeUtilityFunction.hard_deadline(1.0, 0.0)


class TestFigure1:
    """The paper's Figure 1 spot checks: finish@20 -> 12, finish@47 -> 7."""

    def test_spot_checks(self):
        tuf = TimeUtilityFunction.figure1_example()
        assert tuf(20.0) == pytest.approx(12.0)
        assert tuf(47.0) == pytest.approx(7.0)

    def test_monotone_and_bounded(self):
        tuf = TimeUtilityFunction.figure1_example()
        times = np.linspace(0.0, 80.0, 500)
        values = tuf(times)
        assert np.all(np.diff(values) <= 1e-9)
        assert values[0] == pytest.approx(16.0)
        assert values[-1] == pytest.approx(0.0, abs=1e-9)


class TestCompiled:
    def test_vector_matches_scalar(self):
        tuf = TimeUtilityFunction.exponential(5.0, 0.02)
        times = np.array([0.0, 1.0, 10.0, 100.0, 400.0])
        vec = tuf(times)
        for t, v in zip(times, vec):
            assert tuf(float(t)) == pytest.approx(v)

    def test_zero_utility_time(self):
        tuf = TimeUtilityFunction.linear(10.0, 0.01)
        assert tuf.zero_utility_time == pytest.approx(100.0)

    def test_max_utility(self):
        tuf = TimeUtilityFunction.linear(10.0, 0.01)
        assert tuf.max_utility == 10.0

    def test_multi_interval_continuity(self):
        uc = UtilityClass(
            intervals=(
                UtilityInterval(1.0, 0.5, 1.0, DecayShape.EXPONENTIAL),
                UtilityInterval(0.5, 0.1, 2.0, DecayShape.EXPONENTIAL),
                UtilityInterval(0.1, 0.0, 1.0, DecayShape.LINEAR),
            )
        )
        tuf = TimeUtilityFunction(priority=20.0, urgency=0.05, utility_class=uc)
        # Value at every compiled breakpoint matches the interval start
        # value (continuity across segments).
        c = tuf.compiled
        np.testing.assert_allclose(tuf(c.breakpoints), c.start_values, rtol=1e-9)


class TestSerialization:
    def test_dict_roundtrip(self):
        tuf = TimeUtilityFunction.figure1_example()
        restored = TimeUtilityFunction.from_dict(tuf.to_dict())
        times = np.linspace(0, 100, 300)
        np.testing.assert_allclose(restored(times), tuf(times))


@settings(max_examples=50, deadline=None)
@given(
    priority=st.floats(0.1, 100.0),
    urgency=st.floats(1e-4, 1.0),
    t1=st.floats(0.0, 1e4),
    t2=st.floats(0.0, 1e4),
)
def test_property_monotone_nonincreasing(priority, urgency, t1, t2):
    """Every TUF in the factory family is monotone non-increasing."""
    for tuf in (
        TimeUtilityFunction.linear(priority, urgency),
        TimeUtilityFunction.exponential(priority, urgency),
        TimeUtilityFunction.hard_deadline(priority, 1.0 + 100.0 * urgency),
    ):
        lo, hi = sorted((t1, t2))
        assert tuf(lo) >= tuf(hi) - 1e-9


@settings(max_examples=50, deadline=None)
@given(
    priority=st.floats(0.1, 100.0),
    urgency=st.floats(1e-4, 1.0),
    t=st.floats(0.0, 1e6),
)
def test_property_bounded(priority, urgency, t):
    """TUF values lie in [0, priority]."""
    tuf = TimeUtilityFunction.exponential(priority, urgency)
    v = tuf(t)
    assert -1e-12 <= v <= priority + 1e-9
