"""Tests for the fluent TUF builder."""

import numpy as np
import pytest

from repro.errors import UtilityFunctionError
from repro.utility.builder import TUFBuilder
from repro.utility.intervals import DecayShape


class TestBuilder:
    def test_multi_segment(self):
        tuf = (
            TUFBuilder(priority=10.0, urgency=1.0 / 100.0)
            .hold(seconds=50.0)
            .exponential_to(0.5)
            .linear_to_zero(modifier=2.0)
            .build()
        )
        assert tuf(0.0) == 10.0
        assert tuf(49.9) == 10.0
        # After the hold, exponential decay begins.
        assert tuf(60.0) < 10.0
        # Eventually zero.
        assert tuf(1e6) == 0.0
        # Monotone.
        t = np.linspace(0, 2000, 500)
        assert np.all(np.diff(tuf(t)) <= 1e-9)

    def test_contiguity_by_construction(self):
        builder = TUFBuilder(priority=4.0, urgency=0.01)
        builder.exponential_to(0.6).exponential_to(0.2, modifier=2.0)
        assert builder.current_fraction == pytest.approx(0.2)
        tuf = builder.build()
        # Compiled breakpoints continuous.
        c = tuf.compiled
        np.testing.assert_allclose(tuf(c.breakpoints), c.start_values)

    def test_drop_to(self):
        tuf = (
            TUFBuilder(priority=8.0, urgency=0.01)
            .hold(seconds=30.0)
            .drop_to(0.25)
            .hold(seconds=30.0)
            .linear_to_zero()
            .build()
        )
        assert tuf(29.0) == 8.0
        assert tuf(35.0) == pytest.approx(2.0)

    def test_matches_handwritten_equivalent(self):
        from repro.utility.tuf import TimeUtilityFunction

        built = TUFBuilder(priority=5.0, urgency=0.02).exponential_to(0.01).build()
        handwritten = TimeUtilityFunction.exponential(5.0, 0.02, 0.01)
        t = np.linspace(0, 500, 200)
        np.testing.assert_allclose(built(t), handwritten(t))

    def test_validation(self):
        with pytest.raises(UtilityFunctionError):
            TUFBuilder(priority=0.0, urgency=0.1)
        with pytest.raises(UtilityFunctionError):
            TUFBuilder(priority=1.0, urgency=0.0)
        with pytest.raises(UtilityFunctionError):
            TUFBuilder(priority=1.0, urgency=0.1).build()  # empty
        with pytest.raises(UtilityFunctionError):
            # Increasing fractions rejected by the interval layer.
            TUFBuilder(priority=1.0, urgency=0.1).exponential_to(0.5).exponential_to(0.8)
