"""The online dispatch service loop (repro.service.dispatch)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.obs.context import RunContext
from repro.service import ArrivalStream, DispatchService, ServiceConfig
from repro.workload.generator import TaskTypeMix


def stream_for(system, rate=0.15, window=80.0, seed=7):
    return ArrivalStream(
        mix=TaskTypeMix.uniform(system.num_task_types),
        window=window, rate=rate, seed=seed,
    )


def small_config(**overrides) -> ServiceConfig:
    base = dict(
        population_size=12, generations=4, carryover=6,
        compact_every=3, seed=17,
    )
    base.update(overrides)
    return ServiceConfig(**base)


class TestDispatchService:
    def test_chosen_point_matches_ledger(self, small_system):
        """The dispatched front point is service-cumulative: it equals
        the ledger's running totals (up to float summation order — the
        kernel folds per queue, the ledger sums per task)."""
        service = DispatchService(small_system, small_config())
        for batch in stream_for(small_system).windows(6):
            report = service.process_window(batch)
            if report.idle:
                continue
            assert report.chosen_energy == pytest.approx(
                service.ledger.total_energy, rel=1e-12
            )
            assert report.chosen_utility == pytest.approx(
                service.ledger.total_utility, rel=1e-12
            )

    def test_deterministic(self, small_system):
        def run():
            service = DispatchService(small_system, small_config())
            result = service.run(stream_for(small_system).windows(5))
            return result

        a, b = run(), run()
        assert a.tasks_dispatched == b.tasks_dispatched
        assert a.total_energy == b.total_energy
        assert a.total_utility == b.total_utility
        np.testing.assert_array_equal(a.archive_points, b.archive_points)
        for ra, rb in zip(a.reports, b.reports):
            assert ra.chosen_energy == rb.chosen_energy
            assert ra.chosen_utility == rb.chosen_utility
            assert ra.warm_seeds == rb.warm_seeds

    def test_warm_start_seeds_and_adopts(self, small_system):
        service = DispatchService(small_system, small_config())
        reports = [
            service.process_window(b)
            for b in stream_for(small_system, rate=0.2).windows(5)
        ]
        busy = [r for r in reports if not r.idle]
        assert len(busy) >= 3
        # Window 0 is necessarily cold; later windows carry seeds and
        # (between compactions) adopt kernel state.
        assert busy[0].warm_seeds == 0 and not busy[0].kernel_adopted
        assert all(r.warm_seeds > 0 for r in busy[1:])
        assert any(r.kernel_adopted for r in busy[1:])
        assert any(r.reuse_rate > 0 for r in busy[1:])

    def test_cold_mode_never_seeds(self, small_system):
        service = DispatchService(
            small_system, small_config(warm_start=False)
        )
        reports = [
            service.process_window(b)
            for b in stream_for(small_system).windows(4)
        ]
        assert all(r.warm_seeds == 0 for r in reports)

    def test_energy_budget_respected(self, small_system):
        """With a budget the dispatcher only exceeds it when even the
        min-energy point does — and then flags it."""
        free = DispatchService(small_system, small_config())
        free.run(stream_for(small_system).windows(4))
        budget = free.ledger.total_energy * 0.6

        service = DispatchService(
            small_system, small_config(energy_budget=budget)
        )
        for batch in stream_for(small_system).windows(4):
            report = service.process_window(batch)
            if report.idle:
                continue
            if not report.budget_exceeded:
                assert report.chosen_energy <= budget
            else:
                # The flagged window's choice is the front's min energy.
                assert report.chosen_energy == report.front_points[:, 0].min()

    def test_unconstrained_picks_max_utility(self, small_system):
        service = DispatchService(small_system, small_config())
        for batch in stream_for(small_system).windows(3):
            report = service.process_window(batch)
            if report.idle:
                continue
            assert report.chosen_utility == report.front_points[:, 1].max()
            assert not report.budget_exceeded

    def test_idle_windows_pass_through(self, small_system):
        service = DispatchService(
            small_system, small_config(), obs=None
        )
        result = service.run(stream_for(small_system, rate=0.0).windows(3))
        assert result.tasks_dispatched == 0
        assert all(r.idle for r in result.reports)
        assert result.archive_points.shape == (0, 2)
        assert result.dispatch_latency(99) == 0.0

    def test_windows_must_arrive_in_order(self, small_system):
        service = DispatchService(small_system, small_config())
        stream = stream_for(small_system)
        service.process_window(stream.batch(0))
        with pytest.raises(ScheduleError, match="in order"):
            service.process_window(stream.batch(2))

    def test_archive_front_is_nondominated(self, small_system):
        service = DispatchService(small_system, small_config())
        result = service.run(stream_for(small_system, rate=0.2).windows(5))
        front = result.archive_points
        assert front.shape[0] > 0
        # Sorted by energy; utility must strictly improve along the
        # front or the cheaper point would dominate.
        assert np.all(np.diff(front[:, 0]) >= 0)
        assert np.all(np.diff(front[:, 1]) > 0)

    def test_compaction_bounds_horizon(self, small_system):
        config = small_config(compact_every=2)
        service = DispatchService(small_system, config)
        result = service.run(stream_for(small_system, rate=0.25).windows(8))
        assert service.ledger.compacted_total > 0
        assert service.ledger.active < result.tasks_dispatched
        # Totals still cover every dispatched task.
        assert service.ledger.dispatched_total == result.tasks_dispatched

    def test_result_aggregates(self, small_system):
        service = DispatchService(small_system, small_config())
        result = service.run(stream_for(small_system, rate=0.2).windows(5))
        assert result.tasks_dispatched == sum(
            r.tasks for r in result.reports
        )
        assert result.tasks_per_second > 0
        assert result.mean_flow_time > 0
        assert result.dispatch_latency(50) <= result.dispatch_latency(99)
        assert result.objectives == (
            result.total_energy, result.total_utility
        )

    def test_invalid_config_rejected(self):
        with pytest.raises(ScheduleError):
            ServiceConfig(population_size=1)
        with pytest.raises(ScheduleError):
            ServiceConfig(generations=-1)
        with pytest.raises(ScheduleError):
            ServiceConfig(energy_budget=-5.0)
        with pytest.raises(ScheduleError):
            ServiceConfig(archive_epsilon_rel=0.0)


class TestServiceObservability:
    def test_metrics_and_spans_recorded(self, small_system, tmp_path):
        obs = RunContext.create(obs_dir=tmp_path, run_id="svc-test")
        service = DispatchService(small_system, small_config(), obs=obs)
        service.run(stream_for(small_system, rate=0.2).windows(4))
        obs.flush()

        metrics = json.loads((tmp_path / "metrics.json").read_text())
        for name in (
            "service_dispatch_seconds",
            "service_tasks_dispatched_total",
            "service_queue_depth",
            "service_throughput_tasks_per_second",
            "service_archive_size",
            "service_reuse_rate",
        ):
            assert name in metrics, name
        assert metrics["service_reuse_rate"]["value"] > 0

        spans = [
            json.loads(line)
            for line in (tmp_path / "trace.jsonl").read_text().splitlines()
        ]
        window_spans = [s for s in spans if s["name"] == "service.window"]
        assert len(window_spans) == 4
        assert any(
            s["attrs"].get("kernel_adopted") for s in window_spans
        )

    def test_dark_by_default(self, small_system):
        service = DispatchService(small_system, small_config())
        assert not service.obs.enabled
        service.run(stream_for(small_system).windows(2))
