"""Tests for the makespan-energy baseline evaluator."""

import numpy as np
import pytest

from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.errors import ScheduleError
from repro.heuristics import MinMinCompletionTime
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.makespan import MakespanEnergyEvaluator
from repro.sim.schedule import ResourceAllocation

from conftest import random_allocation


class TestMakespanEvaluator:
    def test_matches_utility_evaluator_completions(self, small_system,
                                                   small_trace):
        """With arrivals kept, makespan equals the utility evaluator's
        max completion time."""
        util_ev = ScheduleEvaluator(small_system, small_trace)
        mk_ev = MakespanEnergyEvaluator(small_system, small_trace,
                                        bag_of_tasks=False)
        for seed in range(4):
            alloc = random_allocation(small_system, small_trace, seed=seed)
            res = util_ev.evaluate(alloc)
            e, mk = mk_ev.objectives(alloc)
            assert mk == pytest.approx(res.makespan)
            assert e == pytest.approx(res.energy)

    def test_bag_of_tasks_ignores_arrivals(self, small_system, small_trace):
        """Bag-of-tasks mode (the predecessor's model) treats all tasks
        as available at time 0, so its makespan is never larger."""
        with_arrivals = MakespanEnergyEvaluator(small_system, small_trace,
                                                bag_of_tasks=False)
        bag = MakespanEnergyEvaluator(small_system, small_trace,
                                      bag_of_tasks=True)
        for seed in range(4):
            alloc = random_allocation(small_system, small_trace, seed=seed)
            assert bag.makespan(alloc) <= with_arrivals.makespan(alloc) + 1e-9

    def test_batch_signs(self, small_system, small_trace):
        mk_ev = MakespanEnergyEvaluator(small_system, small_trace)
        alloc = random_allocation(small_system, small_trace, seed=1)
        e, neg = mk_ev.evaluate_batch(
            alloc.machine_assignment[None, :],
            alloc.scheduling_order[None, :],
        )
        assert neg[0] < 0  # engine space: maximize -makespan
        assert e[0] > 0

    def test_to_report_points(self):
        pts = np.array([[10.0, -5.0], [12.0, -4.0]])
        out = MakespanEnergyEvaluator.to_report_points(pts)
        np.testing.assert_allclose(out, [[10.0, 5.0], [12.0, 4.0]])

    def test_shape_validation(self, small_system, small_trace):
        mk_ev = MakespanEnergyEvaluator(small_system, small_trace)
        with pytest.raises(ScheduleError):
            mk_ev.evaluate_batch(np.zeros((2, 3), dtype=int),
                                 np.zeros((2, 4), dtype=int))


class TestNSGA2Integration:
    def test_engine_minimizes_makespan(self, small_system, small_trace):
        """Plugged into the unchanged NSGA-II, the baseline evaluator
        drives makespan down over generations."""
        mk_ev = MakespanEnergyEvaluator(small_system, small_trace,
                                        bag_of_tasks=True)
        ga = NSGA2(mk_ev, NSGA2Config(population_size=20), rng=4)
        first, _ = ga.current_front()
        best_initial = -first[:, 1].max()  # smallest makespan
        hist = ga.run(30)
        final = MakespanEnergyEvaluator.to_report_points(hist.final.front_points)
        assert final[:, 1].min() <= best_initial + 1e-9

    def test_makespan_and_utility_fronts_differ(self, small_system,
                                                small_trace):
        """The paper's motivation: optimizing makespan is not the same
        as optimizing utility.  The allocation with the best makespan
        on the makespan front earns less utility than the best-utility
        allocation of a utility run."""
        util_ev = ScheduleEvaluator(small_system, small_trace,
                                    check_feasibility=False)
        mk_ev = MakespanEnergyEvaluator(small_system, small_trace,
                                        bag_of_tasks=False)
        seeds = [MinMinCompletionTime().build(small_system, small_trace)]
        util_hist = NSGA2(util_ev, NSGA2Config(population_size=24),
                          seeds=seeds, rng=5).run(40)
        mk_ga = NSGA2(mk_ev, NSGA2Config(population_size=24),
                      seeds=seeds, rng=5)
        mk_hist = mk_ga.run(40)

        # Take the best-makespan chromosome from the makespan run and
        # evaluate its *utility*.
        final = mk_hist.final
        report = MakespanEnergyEvaluator.to_report_points(final.front_points)
        best_mk_row = int(np.argmin(report[:, 1]))
        alloc = ResourceAllocation(
            final.front_assignments[best_mk_row],
            final.front_orders[best_mk_row],
        )
        u_of_mk_champion = util_ev.evaluate(alloc).utility
        u_best = util_hist.final.front_points[:, 1].max()
        assert u_best >= u_of_mk_champion
