"""Cross-cutting property tests (hypothesis) beyond per-module suites.

These target *relationships between components* that no single unit
test pins down: order-key normalization invariance, archive/brute-force
agreement, selection elitism, DVFS identity, attainment consistency.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.attainment import attainment_surface
from repro.analysis.pareto_front import ParetoFront
from repro.core.archive import ParetoArchive
from repro.core.dominance import nondominated_mask
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.core.operators import FeasibleMachines, OperatorConfig, VariationOperators
from repro.core.population import Population
from repro.core.sorting import fast_nondominated_sort
from repro.extensions.dvfs import PState, make_dvfs_evaluator
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.schedule import ResourceAllocation

from conftest import random_allocation
from test_sim_events_equivalence import random_scenario


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_order_normalization_invariant(seed):
    """Renormalizing duplicate order keys to a permutation (stable)
    never changes the simulated schedule."""
    system, trace = random_scenario(seed, 35, 4, 5)
    rng = np.random.default_rng(seed)
    alloc = ResourceAllocation(
        machine_assignment=rng.integers(0, 5, size=35),
        scheduling_order=rng.integers(0, 8, size=35),  # heavy duplication
    )
    evaluator = ScheduleEvaluator(system, trace)
    a = evaluator.evaluate(alloc)
    b = evaluator.evaluate(alloc.normalized_order())
    np.testing.assert_allclose(a.completion_times, b.completion_times)
    assert a.energy == b.energy


@settings(max_examples=30, deadline=None)
@given(
    batches=st.lists(
        st.lists(
            st.tuples(st.floats(0.1, 100.0), st.floats(0.1, 100.0)),
            min_size=1,
            max_size=15,
        ),
        min_size=1,
        max_size=5,
    )
)
def test_property_archive_equals_bruteforce(batches):
    """Incremental archive updates equal one-shot nondominated
    filtering of everything ever seen."""
    archive = ParetoArchive()
    everything = []
    for batch in batches:
        pts = np.asarray(batch)
        archive.update(pts)
        everything.append(pts)
    all_pts = np.vstack(everything)
    expected = all_pts[nondominated_mask(all_pts)]
    # Compare as sets of tuples (archive collapses duplicates).
    got = {tuple(p) for p in archive.points}
    want = {tuple(p) for p in expected}
    assert got == want


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_environmental_selection_is_elitist(seed):
    """After any generation, every current rank-1 objective point of
    the previous meta-population survives if the front fits in N."""
    system, trace = random_scenario(seed, 25, 3, 4)
    evaluator = ScheduleEvaluator(system, trace, check_feasibility=False)
    ga = NSGA2(evaluator, NSGA2Config(population_size=16), rng=seed)
    before_pts, _ = ga.current_front()
    ga.step()
    after = ga.population.objectives
    if before_pts.shape[0] <= 16:
        # Each previous front point must be matched or dominated by the
        # new population (elitism: cannot get worse).
        for point in before_pts:
            matched = np.any(
                (after[:, 0] <= point[0] + 1e-9) & (after[:, 1] >= point[1] - 1e-9)
            )
            assert matched


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_crossover_identical_parents_identity(seed):
    """Crossing a population of clones yields the same clone."""
    system, trace = random_scenario(seed, 20, 3, 4)
    feas = FeasibleMachines.from_system_trace(system, trace)
    rng = np.random.default_rng(seed)
    one = feas.sample_matrix(1, rng)
    order = rng.permutation(20)[None, :]
    assignments = np.repeat(one, 8, axis=0)
    orders = np.repeat(order, 8, axis=0)
    ops = VariationOperators(feas, OperatorConfig(mutation_probability=0.0))
    ca, co = ops.crossover_population(assignments, orders, rng)
    np.testing.assert_array_equal(ca, assignments)
    np.testing.assert_array_equal(co, orders)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_dvfs_identity_pstate_matches_plain(seed):
    """A single nominal P-state makes the DVFS evaluator identical to
    the plain one on arbitrary scenarios."""
    system, trace = random_scenario(seed, 25, 3, 4)
    plain = ScheduleEvaluator(system, trace)
    dvfs = make_dvfs_evaluator(
        system, trace, [PState("p0", speed_factor=1.0, power_factor=1.0)]
    )
    alloc = random_allocation(system, trace, seed=seed + 1)
    a = plain.evaluate(alloc)
    b = dvfs.evaluate(alloc)  # identical machine indices (P == 1)
    assert a.energy == pytest.approx(b.energy)
    assert a.utility == pytest.approx(b.utility)


@settings(max_examples=25, deadline=None)
@given(
    runs=st.lists(
        st.lists(
            st.tuples(st.floats(0.1, 50.0), st.floats(0.1, 50.0)),
            min_size=1,
            max_size=10,
        ),
        min_size=1,
        max_size=5,
    )
)
def test_property_attainment_k1_is_union_front(runs):
    fronts = [np.asarray(r) for r in runs]
    best = attainment_surface(fronts, k=1)
    union = ParetoFront.from_points(np.vstack(fronts))
    np.testing.assert_allclose(best.points, union.points)


@settings(max_examples=25, deadline=None)
@given(
    runs=st.lists(
        st.lists(
            st.tuples(st.floats(0.1, 50.0), st.floats(0.1, 50.0)),
            min_size=1,
            max_size=10,
        ),
        min_size=2,
        max_size=6,
    ),
)
def test_property_attainment_monotone_in_k(runs):
    """Every k+1 surface is weakly worse: no point of the k surface is
    dominated by the k+1 surface."""
    fronts = [np.asarray(r) for r in runs]
    surfaces = [attainment_surface(fronts, k) for k in range(1, len(fronts) + 1)]
    for lower, higher in zip(surfaces, surfaces[1:]):
        assert lower.fraction_dominated_by(higher) == 0.0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_rank1_survives_in_population_evaluation(seed):
    """Population.objectives rank-1 rows are exactly the nondominated
    mask rows (sorting and masking agree on real GA data)."""
    system, trace = random_scenario(seed, 20, 3, 4)
    feas = FeasibleMachines.from_system_trace(system, trace)
    evaluator = ScheduleEvaluator(system, trace, check_feasibility=False)
    pop = Population.random(feas, 12, np.random.default_rng(seed))
    pop.evaluate(evaluator)
    ranks = fast_nondominated_sort(pop.objectives)
    np.testing.assert_array_equal(ranks == 1, nondominated_mask(pop.objectives))
