"""Tests for nondominated sorting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dominance import dominates, nondominated_mask
from repro.core.sorting import (
    domination_count_ranks,
    fast_nondominated_sort,
    fronts_from_ranks,
)
from repro.errors import OptimizationError


class TestFastSort:
    def test_simple_layers(self):
        pts = np.array(
            [
                [1.0, 9.0],  # front 1: dominates everything below
                [2.0, 8.0],  # front 3: dominated by (1,9) and (1.5,8.5)
                [2.0, 7.0],  # front 4
                [3.0, 6.0],  # front 5
                [1.5, 8.5],  # front 2: only dominated by (1, 9)
            ]
        )
        ranks = fast_nondominated_sort(pts)
        np.testing.assert_array_equal(ranks, [1, 3, 4, 5, 2])

    def test_rank1_is_pareto_set(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 10, size=(50, 2))
        ranks = fast_nondominated_sort(pts)
        np.testing.assert_array_equal(ranks == 1, nondominated_mask(pts))

    def test_empty(self):
        assert fast_nondominated_sort(np.empty((0, 2))).shape == (0,)

    def test_all_identical(self):
        pts = np.ones((5, 2))
        np.testing.assert_array_equal(fast_nondominated_sort(pts), 1)

    def test_shape_rejected(self):
        with pytest.raises(OptimizationError):
            fast_nondominated_sort(np.ones((3, 3)))


class TestDominationCountRanks:
    def test_paper_definition(self):
        """Rank = 1 + number of dominating solutions."""
        pts = np.array([[1.0, 9.0], [2.0, 8.0], [3.0, 7.0], [4.0, 6.0]])
        # Chain: each dominated by all previous.
        np.testing.assert_array_equal(domination_count_ranks(pts), [1, 2, 3, 4])

    def test_agrees_with_front_rank_on_rank1(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 10, size=(40, 2))
        front = fast_nondominated_sort(pts) == 1
        count = domination_count_ranks(pts) == 1
        np.testing.assert_array_equal(front, count)


class TestFrontsFromRanks:
    def test_grouping(self):
        ranks = np.array([1, 2, 1, 3, 2])
        fronts = fronts_from_ranks(ranks)
        np.testing.assert_array_equal(fronts[0], [0, 2])
        np.testing.assert_array_equal(fronts[1], [1, 4])
        np.testing.assert_array_equal(fronts[2], [3])

    def test_empty(self):
        assert fronts_from_ranks(np.empty(0, dtype=int)) == []


@settings(max_examples=40, deadline=None)
@given(
    pts=st.lists(
        st.tuples(st.floats(0.0, 50.0), st.floats(0.0, 50.0)),
        min_size=1,
        max_size=40,
    )
)
def test_property_front_structure(pts):
    """Within a front no dominance; each rank>1 point is dominated by
    some point of the previous front; front rank <= domination-count
    rank."""
    arr = np.asarray(pts, dtype=np.float64)
    ranks = fast_nondominated_sort(arr)
    counts = domination_count_ranks(arr)
    assert np.all(ranks <= counts)
    max_rank = int(ranks.max())
    for r in range(1, max_rank + 1):
        front = np.flatnonzero(ranks == r)
        for i in front:
            for j in front:
                if i != j:
                    assert not dominates(arr[i], arr[j])
        if r > 1:
            prev = np.flatnonzero(ranks == r - 1)
            for j in front:
                assert any(dominates(arr[i], arr[j]) for i in prev)
