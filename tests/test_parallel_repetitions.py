"""Parallel drivers produce bit-identical science to the serial path.

The contract under test: ``workers=N`` is purely an execution-strategy
knob — fronts, snapshots, and aggregate statistics match the serial
run bit for bit, whatever the worker count, transport, or completion
order, because every RNG stream is derived from the config seed.
"""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import DatasetBundle
from repro.experiments.repetitions import run_repetitions
from repro.experiments.runner import run_seeded_populations
from repro.model.system import SystemModel
from repro.obs.context import RunContext
from repro.parallel import shm
from repro.utility.presets import assign_presets
from repro.workload.generator import WorkloadGenerator

CFG = ExperimentConfig(
    population_size=10, generations=4, checkpoints=(2, 4), base_seed=5
)


@pytest.fixture(scope="module")
def bundle() -> DatasetBundle:
    rng = np.random.default_rng(21)
    etc = rng.uniform(5.0, 120.0, size=(5, 6))
    epc = rng.uniform(40.0, 250.0, size=(5, 6))
    system = SystemModel.from_matrices(
        etc, epc, machines_per_type=[1, 2, 1, 1, 2, 1]
    ).with_utility_functions(assign_presets(5, 600.0, seed=22))
    trace = WorkloadGenerator.uniform_for(5).generate(40, 600.0, seed=23)
    return DatasetBundle(
        name="par-test", system=system, trace=trace,
        horizon_seconds=600.0, seed=0,
    )


class TestRepetitionsBitIdentity:
    def test_parallel_matches_serial(self, bundle):
        serial = run_repetitions(
            bundle, repetitions=3, generations=4, population_size=10
        )
        parallel = run_repetitions(
            bundle, repetitions=3, generations=4, population_size=10,
            workers=2,
        )
        assert len(parallel.fronts) == 3
        for s, p in zip(serial.fronts, parallel.fronts):
            np.testing.assert_array_equal(s, p)
        assert serial.hypervolume == parallel.hypervolume
        assert shm.owned_segments() == ()
        assert shm.leaked_segments() == ()

    def test_pickle_transport_matches(self, bundle):
        serial = run_repetitions(
            bundle, repetitions=2, generations=3, population_size=10
        )
        parallel = run_repetitions(
            bundle, repetitions=2, generations=3, population_size=10,
            workers=2, transport="pickle",
        )
        for s, p in zip(serial.fronts, parallel.fronts):
            np.testing.assert_array_equal(s, p)

    def test_heuristic_seeded_parallel_matches(self, bundle):
        serial = run_repetitions(
            bundle, repetitions=2, generations=3, population_size=10,
            seed_label="min-energy",
        )
        parallel = run_repetitions(
            bundle, repetitions=2, generations=3, population_size=10,
            seed_label="min-energy", workers=2,
        )
        for s, p in zip(serial.fronts, parallel.fronts):
            np.testing.assert_array_equal(s, p)

    def test_single_repetition_stays_serial(self, bundle):
        # workers > repetitions makes no sense to fan out; the driver
        # quietly takes the in-process path.
        result = run_repetitions(
            bundle, repetitions=1, generations=2, population_size=10,
            workers=4,
        )
        assert len(result.fronts) == 1
        assert shm.owned_segments() == ()

    def test_parallel_records_coordinator_metrics(self, bundle):
        obs = RunContext.create()
        run_repetitions(
            bundle, repetitions=3, generations=3, population_size=10,
            workers=2, obs=obs,
        )
        snap = obs.metrics.as_dict()
        assert snap["parallel_segment_bytes"]["value"] > 0
        assert snap["parallel_cells_total"]["value"] == 3
        assert 1 <= snap["parallel_attach_total"]["value"] <= 2
        assert snap["parallel_queue_wait_seconds"]["count"] == 3
        assert snap["repetitions_hypervolume_mean"]["value"] > 0


class TestSeededPopulationsBitIdentity:
    LABELS = ["random", "min-energy", "min-min-completion-time"]

    def test_parallel_matches_serial(self, bundle):
        serial = run_seeded_populations(bundle, CFG, labels=self.LABELS)
        parallel = run_seeded_populations(
            bundle, CFG, labels=self.LABELS, workers=2
        )
        # Label order, not completion order: downstream report/table
        # iteration must match the serial run exactly.
        assert list(parallel.histories) == self.LABELS
        for label in self.LABELS:
            ref = serial.histories[label]
            got = parallel.histories[label]
            assert ref.total_evaluations == got.total_evaluations
            for a, b in zip(ref.snapshots, got.snapshots):
                assert a.generation == b.generation
                np.testing.assert_array_equal(a.front_points, b.front_points)
        assert shm.owned_segments() == ()
        assert shm.leaked_segments() == ()

    def test_pickle_transport_matches(self, bundle):
        serial = run_seeded_populations(bundle, CFG, labels=["random"])
        parallel = run_seeded_populations(
            bundle, CFG, labels=["random"], workers=2, transport="pickle"
        )
        np.testing.assert_array_equal(
            serial.histories["random"].final.front_points,
            parallel.histories["random"].final.front_points,
        )

    def test_parallel_records_coordinator_metrics(self, bundle):
        obs = RunContext.create()
        run_seeded_populations(
            bundle, CFG, labels=["random", "min-energy"], workers=2, obs=obs
        )
        snap = obs.metrics.as_dict()
        assert snap["parallel_segment_bytes"]["value"] > 0
        assert snap["parallel_cells_total"]["value"] == 2
        assert snap["parallel_queue_wait_seconds"]["count"] == 2


class TestAlgorithmChoiceShipsToWorkers:
    """The portfolio redesign's parallel contract: the algorithm name
    travels to pool workers inside the pickled cell extras, and a
    non-NSGA-II parallel run is bit-identical to its serial twin."""

    def test_repetitions_spea2_parallel_matches_serial(self, bundle):
        serial = run_repetitions(
            bundle, repetitions=2, generations=3, population_size=10,
            algorithm="spea2",
        )
        parallel = run_repetitions(
            bundle, repetitions=2, generations=3, population_size=10,
            workers=2, algorithm="spea2",
        )
        for s, p in zip(serial.fronts, parallel.fronts):
            np.testing.assert_array_equal(s, p)

    def test_seeded_populations_moead_parallel_matches_serial(self, bundle):
        cfg = ExperimentConfig(
            population_size=10, generations=4, checkpoints=(2, 4),
            base_seed=5, algorithm="moead",
        )
        serial = run_seeded_populations(
            bundle, cfg, labels=["random", "min-energy"]
        )
        parallel = run_seeded_populations(
            bundle, cfg, labels=["random", "min-energy"], workers=2
        )
        for label in ("random", "min-energy"):
            np.testing.assert_array_equal(
                serial.histories[label].final.front_points,
                parallel.histories[label].final.front_points,
            )

    def test_algorithm_changes_the_run(self, bundle):
        """Sanity that the flag is honoured, not silently ignored: two
        algorithms on identical seeds/config produce different fronts."""
        nsga = run_repetitions(
            bundle, repetitions=1, generations=4, population_size=10,
        )
        spea = run_repetitions(
            bundle, repetitions=1, generations=4, population_size=10,
            algorithm="spea2",
        )
        assert not (
            nsga.fronts[0].shape == spea.fronts[0].shape
            and np.array_equal(nsga.fronts[0], spea.fronts[0])
        )
