"""Engine supervision: pool breaks, victim attribution, quarantine.

A SIGKILL'd worker breaks the whole ``ProcessPoolExecutor``; the
engine must rebuild the pool, attribute the break to the victim cell
via the journaled worker heartbeat, re-drive everything, and park a
poison cell (one that keeps killing workers) instead of retrying it
forever.  Cell bodies live at module level so pool workers can
unpickle them.
"""

import os
import signal
from pathlib import Path

import pytest

from repro.errors import WorkerCrashError
from repro.experiments.runner import RetryPolicy
from repro.parallel.engine import ParallelEngine
from repro.parallel.manifest import GridManifest

FAST = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


def _kill_marked_cell(restored, extra, key, attempt, payload):
    """SIGKILL the worker the first time each marked key runs."""
    marker = Path(extra["dir"]) / f"{key}.killed"
    if key in extra["kill_keys"] and not marker.exists():
        marker.write_text(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return f"{key}-survived-{attempt}"


def _poison_cell(restored, extra, key, attempt, payload):
    """SIGKILL the worker every time the poison key runs."""
    if key == extra["poison"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return f"{key}-ok"


def _manifest(tmp_path, cells):
    return GridManifest.create(
        tmp_path, spec={"driver": "test"}, fingerprint="fp",
        cells=list(cells),
    )


class TestVictimAttribution:
    def test_worker_death_requeues_victim_not_pool(self, tmp_path):
        """One worker death re-drives the victim cell; the grid still
        completes — the break does not poison the whole run."""
        manifest = _manifest(tmp_path, ["a", "b", "c", "d"])
        results = {}
        failures = []
        with ParallelEngine(
            2, extra={"dir": str(tmp_path), "kill_keys": ["b"]},
            journal=manifest.worker_journal(),
        ) as engine:
            engine.run(
                _kill_marked_cell, ["a", "b", "c", "d"],
                payload_for=lambda k, a: None,
                policy=FAST,
                backoff_for=lambda k, a: 0.0,
                give_up=lambda k, a, e: pytest.fail(f"gave up on {k}: {e}"),
                on_result=lambda r: results.__setitem__(r.key, r),
                on_failure=lambda k, a, e, o: failures.append((k, e, o)),
                poll_running=manifest.poll_running,
            )
        assert set(results) == {"a", "b", "c", "d"}
        # The victim was re-driven on a later attempt.
        assert results["b"].attempt >= 2
        # Its crash was attributed to the exact worker pid that died.
        killer_pid = int((tmp_path / "b.killed").read_text())
        crashes = [
            (k, o) for k, e, o in failures
            if isinstance(e, WorkerCrashError) and k == "b"
        ]
        assert (("b", killer_pid)) in crashes
        assert engine.pool_generation >= 1

    def test_worker_death_retries_bypass_max_attempts(self, tmp_path):
        """Crashes are the infrastructure's fault: a cell whose worker
        died still completes even under ``max_attempts=1``."""
        manifest = _manifest(tmp_path, ["v"])
        results = {}
        with ParallelEngine(
            1, extra={"dir": str(tmp_path), "kill_keys": ["v"]},
            journal=manifest.worker_journal(),
        ) as engine:
            engine.run(
                _kill_marked_cell, ["v"],
                payload_for=lambda k, a: None,
                policy=RetryPolicy(max_attempts=1),
                backoff_for=lambda k, a: 0.0,
                give_up=lambda k, a, e: pytest.fail(f"gave up: {e}"),
                on_result=lambda r: results.__setitem__(r.key, r),
                poll_running=manifest.poll_running,
            )
        assert results["v"].result == "v-survived-2"


class TestQuarantine:
    def test_poison_cell_quarantined_on_distinct_workers(self, tmp_path):
        """A cell that kills every worker that touches it is parked
        after the crash budget, with the distinct dead pids as
        evidence."""
        manifest = _manifest(tmp_path, ["p"])
        quarantined = []
        deaths = []
        with ParallelEngine(
            2, extra={"poison": "p"},
            journal=manifest.worker_journal(),
        ) as engine:
            engine.run(
                _poison_cell, ["p"],
                payload_for=lambda k, a: None,
                policy=FAST,
                backoff_for=lambda k, a: 0.0,
                give_up=lambda k, a, e: pytest.fail(f"gave up: {e}"),
                on_result=lambda r: pytest.fail("poison cell succeeded?"),
                on_failure=lambda k, a, e, o: deaths.append(o),
                quarantine_after=2,
                on_quarantine=lambda k, a, owners: quarantined.append(
                    (k, a, owners)
                ),
                poll_running=manifest.poll_running,
            )
        assert len(quarantined) == 1
        key, _attempt, owners = quarantined[0]
        assert key == "p"
        assert len(owners) >= 2  # distinct workers died
        assert owners == frozenset(deaths)

    def test_quarantine_without_hook_falls_back_to_give_up(self, tmp_path):
        manifest = _manifest(tmp_path, ["p"])
        given_up = []
        with ParallelEngine(
            1, extra={"poison": "p"},
            journal=manifest.worker_journal(),
        ) as engine:
            engine.run(
                _poison_cell, ["p"],
                payload_for=lambda k, a: None,
                policy=FAST,
                backoff_for=lambda k, a: 0.0,
                give_up=lambda k, a, e: given_up.append((k, e)),
                on_result=lambda r: pytest.fail("poison cell succeeded?"),
                quarantine_after=2,
                poll_running=manifest.poll_running,
            )
        # quarantine_after=2 with one worker: 2 crashes on the same pid
        # do not satisfy the distinct-workers rule, so the budget
        # extends to quarantine_after + 2 crashes before giving up.
        assert len(given_up) == 1
        assert given_up[0][0] == "p"
        assert isinstance(given_up[0][1], WorkerCrashError)


class TestUnattributedBreaks:
    def test_repeated_breaks_without_journal_fail_fast(self):
        """Without a grid journal there is no victim attribution; a
        pool that keeps dying must raise, not resubmit forever."""
        with ParallelEngine(1, extra={"poison": "p"}) as engine:
            with pytest.raises(WorkerCrashError, match="no grid journal"):
                engine.run(
                    _poison_cell, ["p"],
                    payload_for=lambda k, a: None,
                    policy=FAST,
                    backoff_for=lambda k, a: 0.0,
                    give_up=lambda k, a, e: pytest.fail("gave up instead"),
                    on_result=lambda r: pytest.fail("succeeded?"),
                    quarantine_after=1,
                )

    def test_single_break_without_journal_recovers(self, tmp_path):
        """One unattributed break resubmits as-is and the run finishes
        (pre-manifest behaviour preserved)."""
        results = {}
        with ParallelEngine(
            1, extra={"dir": str(tmp_path), "kill_keys": ["k"]},
        ) as engine:
            engine.run(
                _kill_marked_cell, ["k"],
                payload_for=lambda k, a: None,
                policy=FAST,
                backoff_for=lambda k, a: 0.0,
                give_up=lambda k, a, e: pytest.fail(f"gave up: {e}"),
                on_result=lambda r: results.__setitem__(r.key, r.result),
            )
        # Resubmitted on the same attempt (no attribution, no charge).
        assert results["k"] == "k-survived-1"


class TestManifestIntegration:
    def test_crash_evidence_lands_in_the_journal(self, tmp_path):
        """The manifest replayed after a supervised run records the
        worker-death failure and the final done state."""
        manifest = _manifest(tmp_path, ["a", "b"])
        with ParallelEngine(
            2, extra={"dir": str(tmp_path), "kill_keys": ["b"]},
            journal=manifest.worker_journal(),
        ) as engine:
            engine.run(
                _kill_marked_cell, ["a", "b"],
                payload_for=lambda k, a: None,
                policy=FAST,
                backoff_for=lambda k, a: 0.0,
                give_up=lambda k, a, e: pytest.fail(f"gave up: {e}"),
                on_result=lambda r: manifest.mark_done(
                    r.key, r.attempt, f"sum-{r.key}"
                ),
                on_submit=manifest.mark_leased,
                on_failure=lambda k, a, e, o: manifest.mark_failed(
                    k, a, kind="worker-death", error=str(e), owner=o,
                ),
                poll_running=manifest.poll_running,
            )
        loaded = GridManifest.load(tmp_path)
        assert loaded.cells["a"].state == "done"
        assert loaded.cells["b"].state == "done"
        killer_pid = int((tmp_path / "b.killed").read_text())
        assert killer_pid in loaded.cells["b"].crash_owners
