"""Driver-level durable grids: skip-verified-done, drift, re-drive."""

import pytest

from repro.errors import ExperimentError, GridManifestError
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import build_dataset, dataset1
from repro.experiments.grid import (
    GridBinding,
    grid_status,
    render_status,
    resume_grid,
)
from repro.experiments.portfolio import run_portfolio
from repro.experiments.repetitions import run_repetitions
from repro.experiments.runner import run_seeded_populations
from repro.parallel.manifest import MANIFEST_NAME, GridManifest
from repro.parallel.resultstore import ResultStore
from repro.storage import atomic_write_json, read_json_artifact

REPS = dict(repetitions=3, generations=3, population_size=10)

_DRIVEN = []


def _count_cell(r, attempt):
    """Repetition fault hook used as a was-this-cell-driven probe."""
    _DRIVEN.append((r, attempt))


@pytest.fixture(autouse=True)
def _reset_probe():
    _DRIVEN.clear()


class TestRepetitionsGrid:
    def test_second_run_skips_verified_done_cells(self, tmp_path):
        grid_dir = str(tmp_path / "grid")
        first = run_repetitions(
            dataset1(), **REPS, grid_dir=grid_dir, fault_hook=_count_cell
        )
        assert sorted(r for r, _ in _DRIVEN) == [0, 1, 2]
        _DRIVEN.clear()
        again = run_repetitions(
            dataset1(), **REPS, grid_dir=grid_dir, fault_hook=_count_cell
        )
        assert _DRIVEN == []  # every cell preloaded from the store
        for a, b in zip(first.fronts, again.fronts):
            assert a.tobytes() == b.tobytes()

    def test_config_drift_rotates_manifest_and_recomputes(self, tmp_path):
        grid_dir = tmp_path / "grid"
        run_repetitions(dataset1(), **REPS, grid_dir=str(grid_dir))
        drifted = dict(REPS, generations=4)
        result = run_repetitions(
            dataset1(), **drifted, grid_dir=str(grid_dir),
            fault_hook=_count_cell,
        )
        # Every cell recomputed under the new config, none reused.
        assert sorted(r for r, _ in _DRIVEN) == [0, 1, 2]
        assert list(tmp_path.glob("grid/manifest.stale-*.jsonl"))
        clean = run_repetitions(dataset1(), **drifted)
        for a, b in zip(result.fronts, clean.fronts):
            assert a.tobytes() == b.tobytes()

    def test_tampered_result_artifact_is_re_driven(self, tmp_path):
        grid_dir = tmp_path / "grid"
        first = run_repetitions(dataset1(), **REPS, grid_dir=str(grid_dir))
        # Scribble over one stored result after its checksum was
        # journaled: the doctored payload must never be reused.
        manifest = GridManifest.load(grid_dir)
        store = ResultStore(grid_dir / "results", manifest.fingerprint)
        path = store.path_for(1)
        doc = read_json_artifact(path)
        doc["payload"]["front"][0][0] += 1.0
        atomic_write_json(path, doc)  # valid envelope, wrong content

        again = run_repetitions(
            dataset1(), **REPS, grid_dir=str(grid_dir),
            fault_hook=_count_cell,
        )
        assert sorted(set(r for r, _ in _DRIVEN)) == [1]  # only the bad cell
        for a, b in zip(first.fronts, again.fronts):
            assert a.tobytes() == b.tobytes()

    def test_torn_tail_mid_grid_is_recovered(self, tmp_path):
        grid_dir = tmp_path / "grid"
        first = run_repetitions(dataset1(), **REPS, grid_dir=str(grid_dir))
        path = grid_dir / MANIFEST_NAME
        path.write_bytes(path.read_bytes()[:-9])  # tear the last record
        status = grid_status(grid_dir)
        assert status.torn_tail
        again = run_repetitions(dataset1(), **REPS, grid_dir=str(grid_dir))
        for a, b in zip(first.fronts, again.fronts):
            assert a.tobytes() == b.tobytes()
        assert grid_status(grid_dir).complete


class TestResumeGrid:
    def test_resume_missing_grid_raises(self, tmp_path):
        with pytest.raises(GridManifestError, match="no grid manifest"):
            resume_grid(str(tmp_path / "nowhere"))

    def test_fingerprint_drift_is_refused(self, tmp_path):
        # A journal whose fingerprint no longer matches what the
        # recorded spec rebuilds must refuse to resume.
        spec = {
            "driver": "repetitions",
            "dataset": {"name": "dataset1", "seed": 2013},
            "repetitions": 2, "generations": 2, "population_size": 10,
            "mutation_probability": 0.25, "seed_label": "random",
            "base_seed": 2013, "algorithm": "nsga2",
        }
        GridManifest.create(
            tmp_path, spec=spec, fingerprint="stale-fingerprint",
            cells=[0, 1],
        )
        with pytest.raises(GridManifestError, match="drifted"):
            resume_grid(str(tmp_path))

    def test_unknown_driver_is_refused(self, tmp_path):
        GridManifest.create(
            tmp_path, spec={"driver": "warp"}, fingerprint="fp", cells=[0],
        )
        with pytest.raises(GridManifestError, match="unknown driver"):
            resume_grid(str(tmp_path))

    def test_status_renders_counts(self, tmp_path):
        grid_dir = tmp_path / "grid"
        run_repetitions(dataset1(), **REPS, grid_dir=str(grid_dir))
        status = grid_status(grid_dir)
        assert status.driver == "repetitions"
        assert status.counts["done"] == 3
        text = render_status(status)
        assert "grid is complete" in text
        assert "done" in text


class TestSeededPopulationsGrid:
    CFG = ExperimentConfig(
        population_size=10, generations=3, checkpoints=(1, 3)
    )
    LABELS = ["random", "min-min-completion-time"]

    def test_grid_run_matches_plain_run(self, tmp_path):
        grid_dir = str(tmp_path / "grid")
        gridded = run_seeded_populations(
            dataset1(), self.CFG, labels=self.LABELS, grid_dir=grid_dir,
        )
        plain = run_seeded_populations(
            dataset1(), self.CFG, labels=self.LABELS,
        )
        for label in self.LABELS:
            assert (
                gridded.histories[label].final.front_points.tobytes()
                == plain.histories[label].final.front_points.tobytes()
            )
        # Preloaded rerun agrees too, in the same label order.
        again = run_seeded_populations(
            dataset1(), self.CFG, labels=self.LABELS, grid_dir=grid_dir,
        )
        assert list(again.histories) == list(plain.histories)
        for label in self.LABELS:
            assert (
                again.histories[label].final.front_points.tobytes()
                == plain.histories[label].final.front_points.tobytes()
            )

    def test_resume_grid_re_enters_the_driver(self, tmp_path):
        grid_dir = str(tmp_path / "grid")
        run_seeded_populations(
            dataset1(), self.CFG, labels=self.LABELS, grid_dir=grid_dir,
        )
        result = resume_grid(grid_dir)
        assert set(result.histories) == set(self.LABELS)
        assert grid_status(grid_dir).complete

    def test_extra_seeds_are_rejected_with_grid(self, tmp_path):
        bundle = dataset1()
        with pytest.raises(ExperimentError, match="extra_seeds"):
            run_seeded_populations(
                bundle, self.CFG, labels=["random", "mine"],
                extra_seeds={"mine": []},
                grid_dir=str(tmp_path / "grid"),
            )


class TestPortfolioGrid:
    CFG = ExperimentConfig(
        population_size=10, generations=2, checkpoints=(2,)
    )

    def test_grid_run_matches_plain_and_skips_done(self, tmp_path):
        grid_dir = str(tmp_path / "grid")
        algorithms = ["nsga2", "spea2"]
        gridded = run_portfolio(
            dataset1(), self.CFG, algorithms=algorithms,
            exact_epsilon=None, grid_dir=grid_dir,
        )
        plain = run_portfolio(
            dataset1(), self.CFG, algorithms=algorithms, exact_epsilon=None,
        )
        resumed = resume_grid(grid_dir)
        for name in algorithms:
            expected = plain.histories[name].final.front_points.tobytes()
            assert (
                gridded.histories[name].final.front_points.tobytes()
                == expected
            )
            assert (
                resumed.histories[name].final.front_points.tobytes()
                == expected
            )
        assert grid_status(grid_dir).complete


class TestDatasetBuilders:
    def test_build_dataset_round_trips_names(self):
        bundle = build_dataset("dataset1", seed=2013)
        assert bundle.name == dataset1().name

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ExperimentError, match="unknown dataset"):
            build_dataset("dataset99")


class TestBindingEdges:
    def test_keys_absent_from_header_are_pending(self, tmp_path):
        bundle = dataset1()
        spec = {"driver": "test-edges"}
        binding = GridBinding.open_or_create(
            tmp_path, spec=spec, dataset=bundle, keys=[0, 1],
        )
        assert binding.pending_keys([0, 1]) == [0, 1]
        binding.record_done(0, {"v": 1})
        reopened = GridBinding.open_or_create(
            tmp_path, spec=spec, dataset=bundle, keys=[0, 1],
        )
        assert reopened.preloaded == {0: {"v": 1}}
        assert reopened.pending_keys([0, 1]) == [1]

    def test_failed_cells_requeue_on_reopen(self, tmp_path):
        bundle = dataset1()
        spec = {"driver": "test-edges"}
        binding = GridBinding.open_or_create(
            tmp_path, spec=spec, dataset=bundle, keys=[0],
        )
        binding.mark_running(0)
        binding.mark_failed(0, 1, RuntimeError("boom"))
        reopened = GridBinding.open_or_create(
            tmp_path, spec=spec, dataset=bundle, keys=[0],
        )
        assert reopened.pending_keys([0]) == [0]
        assert reopened.manifest.cells[0].requeues == 1

    def test_stale_lease_of_dead_owner_requeues(self, tmp_path):
        bundle = dataset1()
        spec = {"driver": "test-edges"}
        binding = GridBinding.open_or_create(
            tmp_path, spec=spec, dataset=bundle, keys=[0],
        )
        # Forge a lease held by a pid that cannot exist.
        binding.manifest.mark_leased(0, 1, owner=2 ** 22 + 1)
        reopened = GridBinding.open_or_create(
            tmp_path, spec=spec, dataset=bundle, keys=[0],
        )
        assert reopened.pending_keys([0]) == [0]
