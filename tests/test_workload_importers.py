"""Tests for the SWF importer and the profile arrival process."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.arrivals import ProfileArrivals
from repro.workload.importers import parse_swf, parse_swf_text, trace_from_swf


def swf_line(job_id, submit, run, executable=1, status=1, procs=4):
    """An 18-field SWF record with the fields we consume filled in."""
    fields = [-1] * 18
    fields[0] = job_id
    fields[1] = submit
    fields[2] = 0          # wait
    fields[3] = run
    fields[4] = procs
    fields[10] = status
    fields[13] = executable
    return " ".join(str(f) for f in fields)


SAMPLE = "\n".join(
    [
        "; SWF header comment",
        "; MaxJobs: 6",
        swf_line(1, 100, 60, executable=7),
        swf_line(2, 130, 10, executable=3),
        swf_line(3, 150, 600, executable=7),
        swf_line(4, 155, 30, executable=2, status=0),  # failed job
        swf_line(5, 200, 3600, executable=9),
        swf_line(6, 260, 5, executable=3),
    ]
)


class TestParse:
    def test_parses_jobs_and_skips_comments(self):
        jobs = parse_swf_text(SAMPLE)
        assert len(jobs) == 6
        assert jobs[0].job_id == 1
        assert jobs[0].submit_time == 100.0
        assert jobs[0].run_time == 60.0
        assert jobs[0].executable == 7
        assert jobs[3].status == 0

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.swf"
        path.write_text(SAMPLE)
        assert len(parse_swf(path)) == 6

    def test_short_line_rejected(self):
        with pytest.raises(WorkloadError, match="line 1"):
            parse_swf_text("1 2 3")

    def test_bad_number_rejected(self):
        bad = swf_line(1, 100, 60).replace("100", "abc")
        with pytest.raises(WorkloadError):
            parse_swf_text(bad)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            parse_swf_text("; only comments\n")


class TestTraceFromSwf:
    def test_arrivals_shift_to_zero(self):
        trace = trace_from_swf(parse_swf_text(SAMPLE), num_task_types=5)
        assert trace.arrival_times[0] == 0.0
        assert trace.num_tasks == 5  # failed job dropped
        assert np.all(np.diff(trace.arrival_times) >= 0)

    def test_keep_incomplete(self):
        trace = trace_from_swf(
            parse_swf_text(SAMPLE), num_task_types=5, drop_incomplete=False
        )
        assert trace.num_tasks == 6

    def test_executable_strategy_consistent(self):
        jobs = parse_swf_text(SAMPLE)
        trace = trace_from_swf(jobs, num_task_types=5, type_strategy="executable")
        # Jobs 2 and 6 share executable 3 -> same task type.
        kept = [j for j in jobs if j.status == 1]
        idx_by_id = {j.job_id: i for i, j in enumerate(sorted(
            kept, key=lambda j: (j.submit_time, j.job_id)))}
        assert trace.task_types[idx_by_id[2]] == trace.task_types[idx_by_id[6]]
        assert int(trace.task_types[idx_by_id[1]]) == 7 % 5

    def test_runtime_quantile_strategy_orders_by_size(self):
        trace = trace_from_swf(
            parse_swf_text(SAMPLE),
            num_task_types=2,
            type_strategy="runtime-quantile",
        )
        jobs = [j for j in parse_swf_text(SAMPLE) if j.status == 1]
        jobs.sort(key=lambda j: (j.submit_time, j.job_id))
        runtimes = np.array([j.run_time for j in jobs])
        # Short jobs in type 0, long jobs in type 1.
        assert set(trace.task_types[runtimes <= np.median(runtimes)]) <= {0}
        assert trace.task_types[np.argmax(runtimes)] == 1

    def test_window_rescaling(self):
        trace = trace_from_swf(parse_swf_text(SAMPLE), num_task_types=3,
                               window=100.0)
        assert trace.window == 100.0
        assert trace.arrival_times[0] == 0.0
        assert trace.arrival_times[-1] < 100.0
        assert trace.arrival_times[-1] == pytest.approx(100.0, rel=1e-6)

    def test_max_tasks(self):
        trace = trace_from_swf(parse_swf_text(SAMPLE), num_task_types=3,
                               max_tasks=2)
        assert trace.num_tasks == 2

    def test_validation(self):
        jobs = parse_swf_text(SAMPLE)
        with pytest.raises(WorkloadError):
            trace_from_swf(jobs, num_task_types=0)
        with pytest.raises(WorkloadError):
            trace_from_swf(jobs, num_task_types=3, max_tasks=0)
        with pytest.raises(WorkloadError):
            trace_from_swf(jobs, num_task_types=3, window=-5.0)
        with pytest.raises(WorkloadError):
            trace_from_swf(jobs, num_task_types=3, type_strategy="bogus")

    def test_trace_feeds_the_pipeline(self, small_system):
        """An SWF-imported trace drives the evaluator end to end."""
        from repro.heuristics import MinEnergy
        from repro.sim.evaluator import ScheduleEvaluator

        trace = trace_from_swf(
            parse_swf_text(SAMPLE),
            num_task_types=small_system.num_task_types,
            window=600.0,
        )
        evaluator = ScheduleEvaluator(small_system, trace)
        res = evaluator.evaluate(MinEnergy().build(small_system, trace))
        assert res.energy > 0


class TestProfileArrivals:
    def test_respects_zero_weight_buckets(self):
        p = ProfileArrivals(weights=(0.0, 1.0, 0.0, 3.0))
        times = p.generate(2000, 100.0, seed=1)
        hist, _ = np.histogram(times, bins=4, range=(0, 100))
        assert hist[0] == 0 and hist[2] == 0
        assert hist[3] > hist[1]

    def test_ratio_tracks_weights(self):
        p = ProfileArrivals(weights=(1.0, 3.0))
        times = p.generate(40_000, 10.0, seed=2)
        hist, _ = np.histogram(times, bins=2, range=(0, 10))
        assert hist[1] / hist[0] == pytest.approx(3.0, rel=0.1)

    def test_common_contract(self):
        p = ProfileArrivals(weights=(2.0, 1.0))
        times = p.generate(100, 50.0, seed=3)
        assert np.all((times >= 0) & (times < 50.0))
        assert np.all(np.diff(times) >= 0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ProfileArrivals(weights=())
        with pytest.raises(WorkloadError):
            ProfileArrivals(weights=(0.0, 0.0))
        with pytest.raises(WorkloadError):
            ProfileArrivals(weights=(-1.0, 2.0))


class TestExportSwf:
    def test_roundtrip_types_and_order(self, tmp_path):
        from repro.workload.importers import export_swf
        from repro.workload.trace import Trace

        trace = Trace(
            task_types=np.array([2, 0, 1, 2]),
            arrival_times=np.array([0.0, 10.0, 25.0, 400.0]),
            window=500.0,
        )
        path = tmp_path / "out.swf"
        export_swf(trace, path, run_times=np.array([5.0, 9.0, 3.0, 60.0]))
        jobs = parse_swf(path)
        assert len(jobs) == 4
        assert [j.executable for j in jobs] == [2, 0, 1, 2]
        assert [j.submit_time for j in jobs] == [0.0, 10.0, 25.0, 400.0]
        assert [j.run_time for j in jobs] == [5.0, 9.0, 3.0, 60.0]
        # Full loop: re-import with executable strategy keeps types.
        back = trace_from_swf(jobs, num_task_types=3, window=500.0)
        np.testing.assert_array_equal(back.task_types, trace.task_types)

    def test_default_runtimes(self, tmp_path):
        from repro.workload.importers import export_swf
        from repro.workload.trace import Trace

        trace = Trace(np.array([0]), np.array([0.0]), window=10.0)
        path = tmp_path / "min.swf"
        export_swf(trace, path)
        assert parse_swf(path)[0].run_time == 1.0

    def test_runtime_validation(self, tmp_path):
        from repro.errors import WorkloadError
        from repro.workload.importers import export_swf
        from repro.workload.trace import Trace

        trace = Trace(np.array([0, 1]), np.array([0.0, 1.0]), window=10.0)
        with pytest.raises(WorkloadError):
            export_swf(trace, tmp_path / "x.swf", run_times=np.array([1.0]))
        with pytest.raises(WorkloadError):
            export_swf(trace, tmp_path / "x.swf",
                       run_times=np.array([1.0, 0.0]))
