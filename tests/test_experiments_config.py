"""Tests for experiment configuration and checkpoint scaling."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import (
    ExperimentConfig,
    default_scale,
    scaled_checkpoints,
)


class TestScaledCheckpoints:
    def test_paper_scale_identity(self):
        assert scaled_checkpoints([100, 1000, 10000], scale=1.0) == [100, 1000, 10000]

    def test_downscale_keeps_distinct(self):
        cps = scaled_checkpoints([100, 1000, 10_000, 100_000], scale=0.002)
        assert cps == sorted(set(cps))
        assert len(cps) == 4
        assert cps[0] >= 1

    def test_heavy_downscale_pushes_apart(self):
        cps = scaled_checkpoints([100, 1000], scale=1e-6)
        assert cps == [1, 2]

    def test_env_var_used(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_scale() == 0.5
        assert scaled_checkpoints([100]) == [50]

    def test_env_var_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        with pytest.raises(ExperimentError):
            default_scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ExperimentError):
            default_scale()

    def test_bad_inputs(self):
        with pytest.raises(ExperimentError):
            scaled_checkpoints([0], scale=1.0)
        with pytest.raises(ExperimentError):
            scaled_checkpoints([10], scale=0.0)


class TestExperimentConfig:
    def test_checkpoints_must_end_at_generations(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(generations=10, checkpoints=(5,))

    def test_checkpoints_must_increase(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(generations=10, checkpoints=(5, 5, 10))

    def test_for_paper_checkpoints(self):
        cfg = ExperimentConfig.for_paper_checkpoints(
            [100, 1000], scale=0.01, population_size=10
        )
        assert cfg.checkpoints == (1, 10)
        assert cfg.generations == 10
        assert cfg.population_size == 10

    def test_population_size_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(population_size=1, generations=1, checkpoints=(1,))
