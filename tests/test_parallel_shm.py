"""Shared-memory transport and dataset descriptors (repro.parallel).

Covers the zero-copy contract (views alias the segment, nothing is
copied on attach or restore), the segment lifecycle (close/unlink,
atexit safety nets, leak detection), the pickle fallback, and the
bit-identity of evaluators built over shared views.
"""

import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.errors import ParallelExecutionError
from repro.experiments.datasets import DatasetBundle
from repro.model.system import SystemModel
from repro.parallel import descriptors, shm
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.schedule import ResourceAllocation
from repro.utility.presets import assign_presets
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import Trace


@pytest.fixture(scope="module")
def bundle() -> DatasetBundle:
    rng = np.random.default_rng(7)
    etc = rng.uniform(5.0, 120.0, size=(4, 5))
    epc = rng.uniform(40.0, 250.0, size=(4, 5))
    system = SystemModel.from_matrices(
        etc, epc, machines_per_type=[1, 2, 1, 1, 1]
    ).with_utility_functions(assign_presets(4, 500.0, seed=8))
    trace = WorkloadGenerator.uniform_for(4).generate(30, 500.0, seed=9)
    return DatasetBundle(
        name="shm-test", system=system, trace=trace,
        horizon_seconds=500.0, seed=0,
    )


def _random_alloc(bundle, seed=0) -> ResourceAllocation:
    rng = np.random.default_rng(seed)
    feasible = bundle.system.feasible_task_machine[bundle.trace.task_types]
    machine = np.array(
        [rng.choice(np.flatnonzero(row)) for row in feasible], dtype=np.int64
    )
    order = np.arange(bundle.trace.num_tasks, dtype=np.int64)
    return ResourceAllocation(machine_assignment=machine, scheduling_order=order)


class TestPack:
    def test_publish_attach_roundtrip(self):
        arrays = {
            "a": np.arange(12, dtype=np.float64).reshape(3, 4),
            "b": np.array([True, False, True]),
            "c": np.arange(5, dtype=np.int64),
        }
        with shm.publish(arrays) as pack:
            assert pack.spec.keys() == ("a", "b", "c")
            views = shm.attach(pack.spec)
            for key, arr in arrays.items():
                np.testing.assert_array_equal(views[key], arr)
                assert views[key].dtype == arr.dtype
                assert not views[key].flags.writeable

    def test_views_alias_segment_not_copies(self):
        src = np.arange(8, dtype=np.float64)
        with shm.publish({"x": src}) as pack:
            v1 = shm.attach(pack.spec)["x"]
            v2 = shm.attach(pack.spec)["x"]
            # Memoized attach: the same view object both times.
            assert v1 is v2
            # The view's memory is the shared buffer, not a copy of src.
            assert v1.base is not None
            assert not np.shares_memory(v1, src)

    def test_arrays_are_64_byte_aligned(self):
        arrays = {"a": np.ones(3), "b": np.ones(7), "c": np.ones(1)}
        with shm.publish(arrays) as pack:
            for spec in pack.spec.arrays:
                assert spec.offset % 64 == 0

    def test_empty_pack_rejected(self):
        with pytest.raises(ParallelExecutionError):
            shm.publish({})

    def test_close_unlinks_and_is_idempotent(self):
        pack = shm.publish({"x": np.ones(4)})
        name = pack.spec.segment
        assert name in shm.owned_segments()
        pack.close()
        pack.close()
        assert name not in shm.owned_segments()
        assert name not in shm.leaked_segments()
        with pytest.raises(ParallelExecutionError):
            # detach first so the memoized mapping doesn't mask the unlink
            shm.detach_all()
            shm.attach(pack.spec)

    def test_leak_detection_and_cleanup(self):
        pack = shm.publish({"x": np.ones(16)})
        name = pack.spec.segment
        # Simulate a crashed coordinator: forget ownership w/o unlink.
        shm.forget_owned()
        try:
            assert name in shm.leaked_segments()
            assert shm.unlink_segments([name]) == 1
            assert name not in shm.leaked_segments()
        finally:
            shm._OWNED.pop(name, None)

    def test_pack_spec_is_tiny_and_picklable(self):
        big = np.zeros((1000, 30))
        with shm.publish({"big": big}) as pack:
            blob = pickle.dumps(pack.spec)
            assert len(blob) < 1024
            spec = pickle.loads(blob)
            assert spec.segment == pack.spec.segment
            assert spec.arrays[0].shape == (1000, 30)


def _attach_then_die(spec):
    """Pool-worker stand-in: attach a pack, then SIGKILL yourself.

    Mirrors the worker initializer (``forget_owned``) so the attach is
    a genuine second mapping, not the owner's in-process shortcut.
    """
    shm.forget_owned()
    views = shm.attach(spec)
    assert float(views["x"][0]) == 0.0
    os.kill(os.getpid(), signal.SIGKILL)


class TestJanitorSafety:
    def test_mid_attach_sigkill_leaves_live_segment_alone(self):
        """A worker SIGKILL'd while attached must not let any audit —
        this process's or a foreign janitor's — unlink the segment
        while its creator is still alive."""
        with shm.publish({"x": np.arange(64, dtype=np.float64)}) as pack:
            name = pack.spec.segment
            ctx = multiprocessing.get_context("fork")
            proc = ctx.Process(target=_attach_then_die, args=(pack.spec,))
            proc.start()
            proc.join(timeout=30)
            assert proc.exitcode == -signal.SIGKILL
            # Local audit: the segment is owned here, so it is neither
            # leaked nor sweepable.
            assert name not in shm.leaked_segments()
            assert name not in shm.janitor_sweep()
            # Foreign audit: a separate process sees a live creator pid
            # and must leave the segment untouched.
            script = textwrap.dedent(
                """
                import sys
                from repro.parallel import shm
                name = sys.argv[1]
                leaked = name in shm.leaked_segments()
                swept = name in shm.janitor_sweep()
                print(int(leaked), int(swept))
                """
            )
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, ["src", env.get("PYTHONPATH")])
            )
            out = subprocess.run(
                [sys.executable, "-c", script, name],
                cwd="/root/repo", env=env,
                capture_output=True, text=True, timeout=60,
            )
            assert out.returncode == 0, out.stderr
            assert out.stdout.split() == ["0", "0"]
            # The segment survived every audit and is still readable.
            assert os.path.exists(f"/dev/shm/{name}")
            views = shm.attach(pack.spec)
            np.testing.assert_array_equal(
                views["x"], np.arange(64, dtype=np.float64)
            )


class TestTraceAdoption:
    def test_trace_adopts_read_only_arrays_without_copy(self):
        types = np.array([0, 1, 0], dtype=np.int64)
        arrivals = np.array([0.0, 1.0, 2.0])
        types.setflags(write=False)
        arrivals.setflags(write=False)
        trace = Trace(task_types=types, arrival_times=arrivals, window=10.0)
        assert trace.task_types is types
        assert trace.arrival_times is arrivals

    def test_trace_still_copies_writable_arrays(self):
        types = np.array([0, 1, 0], dtype=np.int64)
        trace = Trace(
            task_types=types, arrival_times=np.array([0.0, 1.0, 2.0]),
            window=10.0,
        )
        assert trace.task_types is not types
        assert not trace.task_types.flags.writeable


class TestPublishDataset:
    def test_handle_is_small_and_restores_identically(self, bundle):
        with descriptors.publish_dataset(bundle) as published:
            assert published.transport == "shm"
            blob = pickle.dumps(published.handle)
            # O(1) in the trace size: metadata + segment spec only.
            assert len(blob) < 16_384
            handle = pickle.loads(blob)
            restored = handle.restore()
            assert restored.bundle.name == bundle.name
            assert restored.bundle.trace.num_tasks == bundle.trace.num_tasks
            alloc = _random_alloc(bundle)
            shared = restored.make_evaluator(check_feasibility=False)
            plain = ScheduleEvaluator(
                bundle.system, bundle.trace, check_feasibility=False
            )
            assert shared.objectives(alloc) == plain.objectives(alloc)

    def test_restore_is_memoized_per_process(self, bundle):
        with descriptors.publish_dataset(bundle) as published:
            first = published.handle.restore()
            second = published.handle.restore()
            assert first is second

    def test_restored_views_are_zero_copy(self, bundle):
        with descriptors.publish_dataset(bundle) as published:
            restored = published.handle.restore()
            views = shm.attach(published.handle.segment)
            arrays = restored.evaluator_arrays
            assert np.shares_memory(arrays.etc_rows, views["etc_rows"])
            assert np.shares_memory(
                restored.bundle.trace.arrival_times, views["trace_arrivals"]
            )
            assert not arrays.etc_rows.flags.writeable

    def test_pickle_transport_identical(self, bundle):
        alloc = _random_alloc(bundle, seed=3)
        plain = ScheduleEvaluator(
            bundle.system, bundle.trace, check_feasibility=False
        )
        with descriptors.publish_dataset(bundle, transport="pickle") as pub:
            assert pub.transport == "pickle"
            assert pub.handle.segment is None
            handle = pickle.loads(pickle.dumps(pub.handle))
            shared = handle.restore().make_evaluator(check_feasibility=False)
            assert shared.objectives(alloc) == plain.objectives(alloc)

    def test_unknown_transport_rejected(self, bundle):
        with pytest.raises(ParallelExecutionError, match="transport"):
            descriptors.publish_dataset(bundle, transport="carrier-pigeon")

    def test_close_releases_segment(self, bundle):
        published = descriptors.publish_dataset(bundle)
        name = published.handle.segment.segment
        published.close()
        assert name not in shm.owned_segments()
        assert name not in shm.leaked_segments()

    def test_publish_records_obs(self, bundle):
        from repro.obs.context import RunContext

        obs = RunContext.create()
        with descriptors.publish_dataset(bundle, obs=obs) as published:
            snap = obs.metrics.as_dict()
            assert snap["parallel_segment_bytes"]["value"] == published.nbytes

    def test_dataset_arrays_match_evaluator_expressions(self, bundle):
        arrays = descriptors.dataset_arrays(bundle)
        task_types = bundle.trace.task_types
        np.testing.assert_array_equal(
            arrays["etc_rows"], bundle.system.etc_task_machine[task_types]
        )
        np.testing.assert_array_equal(
            arrays["feasible_rows"],
            bundle.system.feasible_task_machine[task_types],
        )

    def test_share_convenience(self, bundle):
        with bundle.share() as published:
            assert published.handle.dataset_id.startswith(bundle.name)
