"""Tests for utility intervals and characteristic classes."""

import math

import pytest

from repro.errors import UtilityFunctionError
from repro.utility.intervals import DecayShape, UtilityClass, UtilityInterval


class TestUtilityInterval:
    def test_exponential_duration(self):
        iv = UtilityInterval(1.0, 0.5, 2.0, DecayShape.EXPONENTIAL)
        # duration = ln(1/0.5) / (urgency * 2)
        assert iv.derived_duration(urgency=0.1) == pytest.approx(
            math.log(2.0) / 0.2
        )

    def test_linear_duration(self):
        iv = UtilityInterval(1.0, 0.0, 1.0, DecayShape.LINEAR)
        assert iv.derived_duration(urgency=0.01) == pytest.approx(100.0)

    def test_constant_duration_is_explicit(self):
        iv = UtilityInterval(0.5, 0.5, shape=DecayShape.CONSTANT, duration=30.0)
        assert iv.derived_duration(urgency=123.0) == 30.0

    def test_exponential_to_zero_rejected(self):
        with pytest.raises(UtilityFunctionError):
            UtilityInterval(1.0, 0.0, 1.0, DecayShape.EXPONENTIAL)

    def test_constant_requires_duration(self):
        with pytest.raises(UtilityFunctionError):
            UtilityInterval(1.0, 1.0, shape=DecayShape.CONSTANT)

    def test_constant_requires_flat_fractions(self):
        with pytest.raises(UtilityFunctionError):
            UtilityInterval(1.0, 0.5, shape=DecayShape.CONSTANT, duration=10.0)

    def test_decaying_rejects_duration(self):
        with pytest.raises(UtilityFunctionError):
            UtilityInterval(1.0, 0.5, shape=DecayShape.LINEAR, duration=5.0)

    def test_decaying_must_decrease(self):
        with pytest.raises(UtilityFunctionError):
            UtilityInterval(0.5, 0.5, shape=DecayShape.LINEAR)

    def test_fraction_ordering_enforced(self):
        with pytest.raises(UtilityFunctionError):
            UtilityInterval(0.5, 0.8)
        with pytest.raises(UtilityFunctionError):
            UtilityInterval(1.5, 0.5)

    def test_nonpositive_modifier_rejected(self):
        with pytest.raises(UtilityFunctionError):
            UtilityInterval(1.0, 0.5, urgency_modifier=0.0)

    def test_dict_roundtrip(self):
        iv = UtilityInterval(1.0, 0.25, 3.0, DecayShape.EXPONENTIAL)
        assert UtilityInterval.from_dict(iv.to_dict()) == iv


class TestUtilityClass:
    def test_must_start_at_full_priority(self):
        with pytest.raises(UtilityFunctionError):
            UtilityClass(intervals=(UtilityInterval(0.9, 0.5),))

    def test_must_be_contiguous(self):
        with pytest.raises(UtilityFunctionError):
            UtilityClass(
                intervals=(
                    UtilityInterval(1.0, 0.5),
                    UtilityInterval(0.4, 0.1),
                )
            )

    def test_requires_intervals(self):
        with pytest.raises(UtilityFunctionError):
            UtilityClass(intervals=())

    def test_total_duration_sums(self):
        uc = UtilityClass(
            intervals=(
                UtilityInterval(1.0, 1.0, shape=DecayShape.CONSTANT, duration=10.0),
                UtilityInterval(1.0, 0.0, 1.0, DecayShape.LINEAR),
            )
        )
        assert uc.total_duration(urgency=0.1) == pytest.approx(10.0 + 10.0)
        assert uc.final_fraction == 0.0

    def test_factories(self):
        assert UtilityClass.single_exponential().final_fraction == pytest.approx(0.01)
        assert UtilityClass.linear_to_zero().final_fraction == 0.0
        hd = UtilityClass.hard_deadline(60.0)
        assert hd.intervals[0].duration == 60.0
        assert hd.final_fraction == 0.0

    def test_dict_roundtrip(self):
        uc = UtilityClass.hard_deadline(45.0)
        restored = UtilityClass.from_dict(uc.to_dict())
        assert restored == uc
