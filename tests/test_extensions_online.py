"""Tests for the online dispatcher extension."""

import numpy as np
import pytest

from repro.analysis.pareto_front import ParetoFront
from repro.errors import ScheduleError
from repro.extensions.online import (
    DROP,
    BudgetedUtilityPolicy,
    DispatchContext,
    MaxUtilityPolicy,
    OnlineDispatcher,
    UtilityPerEnergyPolicy,
    budget_from_front,
)
from repro.heuristics import MaxUtility, MaxUtilityPerEnergy
from repro.sim.evaluator import ScheduleEvaluator


@pytest.fixture
def dispatcher(small_system, small_trace):
    return OnlineDispatcher(small_system, small_trace)


class TestUnbudgetedPolicies:
    def test_max_utility_matches_offline_greedy(self, small_system, small_trace,
                                                dispatcher, small_evaluator):
        """With no budget, online Max Utility makes exactly the offline
        Max Utility seed's decisions (same greedy, same information)."""
        outcome = dispatcher.run(MaxUtilityPolicy())
        seed = MaxUtility().build(small_system, small_trace)
        np.testing.assert_array_equal(
            outcome.machine_assignment, seed.machine_assignment
        )
        res = small_evaluator.evaluate(seed)
        assert outcome.energy == pytest.approx(res.energy)
        assert outcome.utility == pytest.approx(res.utility)
        assert outcome.num_dropped == 0

    def test_upe_matches_offline_greedy(self, small_system, small_trace,
                                        dispatcher, small_evaluator):
        outcome = dispatcher.run(UtilityPerEnergyPolicy())
        seed = MaxUtilityPerEnergy().build(small_system, small_trace)
        np.testing.assert_array_equal(
            outcome.machine_assignment, seed.machine_assignment
        )

    def test_accounting_consistency(self, dispatcher):
        outcome = dispatcher.run(MaxUtilityPolicy())
        executed = ~outcome.dropped
        assert np.all(outcome.completion_times[executed] > 0)
        assert np.all(outcome.machine_assignment[executed] >= 0)


class TestBudgetedPolicy:
    def test_budget_respected(self, dispatcher):
        budget = 1.0e6
        outcome = dispatcher.run(BudgetedUtilityPolicy(), energy_budget=budget)
        assert outcome.energy <= budget + 1e-6
        assert outcome.budget == budget

    def test_tight_budget_drops_tasks(self, dispatcher):
        generous = dispatcher.run(BudgetedUtilityPolicy(), energy_budget=1e12)
        tight_budget = generous.energy * 0.3
        tight = dispatcher.run(BudgetedUtilityPolicy(), energy_budget=tight_budget)
        assert tight.num_dropped > generous.num_dropped
        assert tight.energy <= tight_budget + 1e-6

    def test_zero_budget_drops_everything(self, dispatcher, small_trace):
        outcome = dispatcher.run(BudgetedUtilityPolicy(), energy_budget=0.0)
        assert outcome.num_dropped == small_trace.num_tasks
        assert outcome.energy == 0.0 and outcome.utility == 0.0

    def test_budget_monotone_in_utility(self, dispatcher):
        """More budget never hurts total utility for the budgeted policy."""
        utilities = []
        for budget in (3e5, 6e5, 1.2e6, 1e12):
            out = dispatcher.run(BudgetedUtilityPolicy(), energy_budget=budget)
            utilities.append(out.utility)
        assert all(b >= a - 1e-9 for a, b in zip(utilities, utilities[1:]))

    def test_worthless_drop_threshold(self, dispatcher):
        all_in = dispatcher.run(BudgetedUtilityPolicy(drop_worthless=0.0),
                                energy_budget=1e12)
        picky = dispatcher.run(BudgetedUtilityPolicy(drop_worthless=1e9),
                               energy_budget=1e12)
        assert picky.num_dropped >= all_in.num_dropped
        assert picky.num_dropped == dispatcher.trace.num_tasks

    def test_negative_budget_rejected(self, dispatcher):
        with pytest.raises(ScheduleError):
            dispatcher.run(BudgetedUtilityPolicy(), energy_budget=-1.0)


class TestBudgetFromFront:
    def test_reads_efficient_region(self):
        front = ParetoFront.from_points(
            np.array([[1.0, 5.0], [2.0, 16.0], [4.0, 19.0]])
        )
        # Peak U/E at (2, 16).
        assert budget_from_front(front) == pytest.approx(2.0)
        assert budget_from_front(front, slack=1.5) == pytest.approx(3.0)
        with pytest.raises(ScheduleError):
            budget_from_front(front, slack=0.0)

    def test_offline_to_online_workflow(self, small_system, small_trace,
                                        small_evaluator):
        """The paper's loop: offline front -> energy constraint ->
        online budgeted dispatch stays within it."""
        from repro.core.nsga2 import NSGA2, NSGA2Config

        ga = NSGA2(small_evaluator, NSGA2Config(population_size=24), rng=8)
        hist = ga.run(30)
        front = ParetoFront(points=hist.final.front_points)
        budget = budget_from_front(front)

        dispatcher = OnlineDispatcher(small_system, small_trace)
        outcome = dispatcher.run(BudgetedUtilityPolicy(), energy_budget=budget)
        assert outcome.energy <= budget + 1e-6
        assert outcome.utility > 0


class TestPolicyContract:
    def test_invalid_choice_caught(self, dispatcher):
        class Broken(MaxUtilityPolicy):
            name = "broken"

            def choose(self, context: DispatchContext) -> int:
                return 9999

        with pytest.raises(ScheduleError):
            dispatcher.run(Broken())

    def test_drop_sentinel(self):
        assert DROP == -1
