"""Tests for the DVFS extension."""

import numpy as np
import pytest

from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.errors import ModelError
from repro.extensions.dvfs import (
    DVFS_PRESETS,
    PState,
    expand_system_dvfs,
    make_dvfs_evaluator,
)
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.schedule import ResourceAllocation


class TestPState:
    def test_energy_factor(self):
        p = PState("x", speed_factor=0.5, power_factor=0.25)
        assert p.energy_factor == pytest.approx(0.5)

    def test_presets_trade_speed_for_energy(self):
        nominal, *reduced = DVFS_PRESETS
        assert nominal.speed_factor == 1.0 and nominal.power_factor == 1.0
        for p in reduced:
            assert p.speed_factor < 1.0
            # Lower states save energy per task.
            assert p.energy_factor < 1.0

    def test_validation(self):
        with pytest.raises(ModelError):
            PState("x", speed_factor=0.0, power_factor=1.0)
        with pytest.raises(ModelError):
            PState("x", speed_factor=1.0, power_factor=-1.0)


class TestExpansion:
    def test_virtual_counts(self, small_system):
        virtual, groups = expand_system_dvfs(small_system, DVFS_PRESETS)
        P = len(DVFS_PRESETS)
        assert virtual.num_machines == small_system.num_machines * P
        assert virtual.num_machine_types == small_system.num_machine_types * P
        assert groups.shape == (virtual.num_machines,)
        # Virtual machines v of physical m map back to m.
        np.testing.assert_array_equal(
            groups, np.repeat(np.arange(small_system.num_machines), P)
        )

    def test_scaled_matrices(self, small_system):
        virtual, _ = expand_system_dvfs(small_system, DVFS_PRESETS)
        P = len(DVFS_PRESETS)
        for p, ps in enumerate(DVFS_PRESETS):
            np.testing.assert_allclose(
                virtual.etc.values[:, p::P],
                small_system.etc.values / ps.speed_factor,
            )
            np.testing.assert_allclose(
                virtual.epc.values[:, p::P],
                small_system.epc.values * ps.power_factor,
            )

    def test_empty_pstates_rejected(self, small_system):
        with pytest.raises(ModelError):
            expand_system_dvfs(small_system, [])


class TestSharedQueues:
    def test_same_physical_machine_shares_queue(self, small_system, small_trace):
        """Two tasks on different P-states of one physical machine
        queue sequentially, not in parallel."""
        ev = make_dvfs_evaluator(small_system, small_trace, DVFS_PRESETS)
        P = len(DVFS_PRESETS)
        T = small_trace.num_tasks
        # Everything on physical machine 0; first two tasks on
        # different virtual machines of it.
        assignment = np.zeros(T, dtype=np.int64)  # p0 of machine 0
        assignment[1] = 1  # p1 of machine 0
        res = ev.evaluate(ResourceAllocation(assignment, np.arange(T)))
        # Task 1 cannot start before task 0 finishes.
        assert res.start_times[1] >= res.completion_times[0] - 1e-9

    def test_nominal_pstate_matches_plain_evaluator(self, small_system,
                                                    small_trace):
        """Assigning everything to p0 reproduces the plain system's
        objective values exactly."""
        plain = ScheduleEvaluator(small_system, small_trace)
        dvfs = make_dvfs_evaluator(small_system, small_trace, DVFS_PRESETS)
        P = len(DVFS_PRESETS)
        rng = np.random.default_rng(0)
        T = small_trace.num_tasks
        machines = rng.integers(0, small_system.num_machines, size=T)
        order = rng.permutation(T)
        plain_res = plain.evaluate(ResourceAllocation(machines, order))
        dvfs_res = dvfs.evaluate(ResourceAllocation(machines * P, order))
        assert dvfs_res.energy == pytest.approx(plain_res.energy)
        assert dvfs_res.utility == pytest.approx(plain_res.utility)

    def test_low_pstate_saves_energy(self, small_system, small_trace):
        dvfs = make_dvfs_evaluator(small_system, small_trace, DVFS_PRESETS)
        P = len(DVFS_PRESETS)
        rng = np.random.default_rng(1)
        T = small_trace.num_tasks
        machines = rng.integers(0, small_system.num_machines, size=T)
        order = rng.permutation(T)
        nominal = dvfs.evaluate(ResourceAllocation(machines * P, order))
        low = dvfs.evaluate(ResourceAllocation(machines * P + (P - 1), order))
        assert low.energy < nominal.energy


class TestDVFSOptimization:
    def test_nsga2_reaches_below_plain_min_energy(self, small_system,
                                                  small_trace):
        """The DVFS frontier extends below the plain system's minimum
        energy (the A6 claim): the GA can use low-power states."""
        from repro.heuristics import MinEnergy

        plain_ev = ScheduleEvaluator(small_system, small_trace)
        e_floor = plain_ev.evaluate(
            MinEnergy().build(small_system, small_trace)
        ).energy

        dvfs_ev = make_dvfs_evaluator(small_system, small_trace, DVFS_PRESETS)
        # The seeding heuristics work unchanged on the virtual system:
        # min-energy picks the best (machine, P-state) per task.
        dvfs_seed = MinEnergy().build(dvfs_ev.system, small_trace)
        ga = NSGA2(dvfs_ev, NSGA2Config(population_size=24), seeds=[dvfs_seed],
                   rng=3)
        hist = ga.run(40)
        assert hist.final.front_points[:, 0].min() < e_floor
