"""Tests for the robustness-under-uncertainty extension."""

import numpy as np
import pytest

from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.errors import ScheduleError
from repro.extensions.robustness import (
    NoiseModel,
    RobustnessAnalyzer,
    front_robustness,
)
from repro.heuristics import MinMinCompletionTime

from conftest import random_allocation


class TestNoiseModel:
    def test_mean_one(self):
        rng = np.random.default_rng(0)
        factors = NoiseModel(sigma=0.4).sample(200_000, rng)
        assert factors.mean() == pytest.approx(1.0, abs=0.01)
        assert np.all(factors > 0)

    def test_zero_sigma_is_identity(self):
        rng = np.random.default_rng(1)
        np.testing.assert_array_equal(NoiseModel(sigma=0.0).sample(10, rng), 1.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ScheduleError):
            NoiseModel(sigma=-0.1)


class TestAnalyzer:
    def test_zero_noise_matches_nominal(self, small_system, small_trace):
        analyzer = RobustnessAnalyzer(
            small_system, small_trace, noise=NoiseModel(sigma=0.0),
            samples=5, seed=2,
        )
        alloc = random_allocation(small_system, small_trace, seed=3)
        report = analyzer.analyze(alloc)
        assert report.mean_energy == pytest.approx(report.nominal_energy)
        assert report.mean_utility == pytest.approx(report.nominal_utility)
        assert report.std_utility == pytest.approx(0.0, abs=1e-9)
        assert report.prob_within_tolerance == 1.0

    def test_nominal_matches_evaluator(self, small_system, small_trace,
                                       small_evaluator):
        analyzer = RobustnessAnalyzer(small_system, small_trace, samples=3,
                                      seed=4)
        alloc = random_allocation(small_system, small_trace, seed=5)
        report = analyzer.analyze(alloc)
        res = small_evaluator.evaluate(alloc)
        assert report.nominal_energy == pytest.approx(res.energy)
        assert report.nominal_utility == pytest.approx(res.utility)

    def test_noise_spreads_outcomes(self, small_system, small_trace):
        analyzer = RobustnessAnalyzer(
            small_system, small_trace, noise=NoiseModel(sigma=0.3),
            samples=100, seed=6,
        )
        alloc = random_allocation(small_system, small_trace, seed=7)
        report = analyzer.analyze(alloc)
        assert report.std_utility > 0
        assert report.std_energy > 0
        assert report.utility_q05 <= report.mean_utility <= report.utility_q95

    def test_more_noise_less_confidence(self, small_system, small_trace):
        alloc = MinMinCompletionTime().build(small_system, small_trace)
        probs = []
        for sigma in (0.05, 0.5):
            analyzer = RobustnessAnalyzer(
                small_system, small_trace, noise=NoiseModel(sigma=sigma),
                samples=150, tolerance=0.05, seed=8,
            )
            probs.append(analyzer.analyze(alloc).prob_within_tolerance)
        assert probs[0] >= probs[1]

    def test_degradation_direction(self, small_system, small_trace):
        """Runtime noise cannot *raise* expected utility much: queues
        only cascade delays (Jensen: utility is concave-ish in delay
        here), so mean utility <= nominal within tolerance."""
        analyzer = RobustnessAnalyzer(
            small_system, small_trace, noise=NoiseModel(sigma=0.3),
            samples=300, seed=9,
        )
        alloc = MinMinCompletionTime().build(small_system, small_trace)
        report = analyzer.analyze(alloc)
        assert report.utility_degradation > -0.05

    def test_validation(self, small_system, small_trace):
        with pytest.raises(ScheduleError):
            RobustnessAnalyzer(small_system, small_trace, samples=0)
        with pytest.raises(ScheduleError):
            RobustnessAnalyzer(small_system, small_trace, tolerance=1.0)
        analyzer = RobustnessAnalyzer(small_system, small_trace, samples=2)
        from repro.sim.schedule import ResourceAllocation

        with pytest.raises(ScheduleError):
            analyzer.analyze(ResourceAllocation(np.array([0]), np.array([0])))


class TestFrontRobustness:
    def test_reports_per_front_point(self, small_system, small_trace,
                                     small_evaluator):
        ga = NSGA2(small_evaluator, NSGA2Config(population_size=16), rng=10)
        hist = ga.run(10)
        analyzer = RobustnessAnalyzer(small_system, small_trace, samples=20,
                                      seed=11)
        reports = front_robustness(analyzer, hist.final)
        assert len(reports) == hist.final.front_size
        for report in reports:
            assert report.samples == 20

    def test_requires_solutions(self, small_system, small_trace,
                                small_evaluator):
        ga = NSGA2(small_evaluator, NSGA2Config(population_size=16), rng=12)
        hist = ga.run(4, checkpoints=[2, 4])
        analyzer = RobustnessAnalyzer(small_system, small_trace, samples=5)
        with pytest.raises(ScheduleError):
            front_robustness(analyzer, hist.snapshot_at(2))
