"""Exact contention-free baseline tests.

The central validation: the Minkowski-sum DP with ``epsilon=0`` must
reproduce the brute-force enumeration of every relaxed assignment
exactly, and the relaxed front must outer-bound everything the GA
achieves on the same instance.
"""

import numpy as np
import pytest

import repro.exact.baselines as baselines
from repro.core.algorithm import AlgorithmConfig
from repro.core.dominance import nondominated_mask
from repro.core.nsga2 import NSGA2
from repro.core.objectives import ENERGY_UTILITY
from repro.errors import AnalysisError, OptimizationError
from repro.exact import (
    ExactFront,
    brute_force_energy_utility_front,
    contention_free_options,
    distance_to_exact,
    exact_energy_makespan_front,
    exact_energy_utility_front,
)


@pytest.fixture
def tradeoff_evaluator():
    """A 2-type / 2-machine instance with a real energy/utility trade-off.

    Machine 0 is fast but power-hungry, machine 1 slow but frugal, so
    every task has two nondominated options and the relaxed front has
    many points — unlike the ``tiny_*`` fixtures, where one machine
    dominates per task.
    """
    from repro.model.system import SystemModel
    from repro.sim.evaluator import ScheduleEvaluator
    from repro.utility.tuf import TimeUtilityFunction
    from repro.workload.trace import Trace

    etc = np.array([[5.0, 40.0], [8.0, 60.0]])
    epc = np.array([[200.0, 10.0], [150.0, 8.0]])
    system = SystemModel.from_matrices(etc, epc).with_utility_functions([
        TimeUtilityFunction.linear(priority=10.0, urgency=1.0 / 100.0),
        TimeUtilityFunction.linear(priority=8.0, urgency=1.0 / 120.0),
    ])
    trace = Trace(
        task_types=np.array([0, 1, 0, 1]),
        arrival_times=np.array([0.0, 10.0, 20.0, 30.0]),
        window=60.0,
    )
    return ScheduleEvaluator(system, trace)


class TestContentionFreeOptions:
    def test_one_option_set_per_task(self, tiny_evaluator, tiny_trace):
        options = contention_free_options(tiny_evaluator)
        assert len(options) == tiny_trace.num_tasks
        for opts in options:
            assert opts.ndim == 2 and opts.shape[1] == 2
            assert opts.shape[0] >= 1

    def test_per_task_options_are_nondominated(self, tiny_evaluator):
        for opts in contention_free_options(tiny_evaluator):
            assert nondominated_mask(opts, space=ENERGY_UTILITY).all()

    def test_utilities_are_queue_free_upper_bounds(self, tiny_evaluator):
        """Every option's utility equals the task's TUF at its raw ETC
        — the best any schedule with waiting can do."""
        table = tiny_evaluator.tuf_table
        etc = np.asarray(tiny_evaluator._etc_rows)
        task_types = tiny_evaluator._task_types
        upper = np.array([
            table.evaluate(task_types, etc[:, m])
            for m in range(etc.shape[1])
        ]).max(axis=0)
        for t, opts in enumerate(contention_free_options(tiny_evaluator)):
            assert opts[:, 1].max() <= upper[t] + 1e-9


class TestExactEqualsBruteForce:
    def test_dp_matches_enumeration_on_tiny_instance(self, tiny_evaluator):
        dp = exact_energy_utility_front(tiny_evaluator, epsilon=0.0)
        brute = brute_force_energy_utility_front(tiny_evaluator)
        np.testing.assert_allclose(dp.points, brute.points, rtol=1e-12)
        assert dp.epsilon == 0.0

    def test_dp_matches_enumeration_on_tradeoff_instance(
        self, tradeoff_evaluator
    ):
        """With two nondominated options per task the relaxed front is
        genuinely multi-point; the DP must still enumerate it exactly."""
        options = contention_free_options(tradeoff_evaluator)
        assert all(opts.shape[0] == 2 for opts in options)
        dp = exact_energy_utility_front(tradeoff_evaluator, epsilon=0.0)
        brute = brute_force_energy_utility_front(tradeoff_evaluator)
        assert dp.size > 1
        np.testing.assert_allclose(dp.points, brute.points, rtol=1e-12)

    def test_thinned_front_stays_within_its_error_bound(self, tiny_evaluator):
        """Every exact-front point is utility-covered by a thinned-front
        point within ``epsilon × utility_scale``, at no extra energy."""
        exact = exact_energy_utility_front(tiny_evaluator, epsilon=0.0)
        eps = 0.1
        thinned = exact_energy_utility_front(tiny_evaluator, epsilon=eps)
        scale = float(tiny_evaluator.tuf_table.utility_upper_bound(
            tiny_evaluator._task_types
        ))
        assert thinned.size <= exact.size
        for energy, utility in exact.points:
            ok = (
                (thinned.points[:, 0] <= energy + 1e-9)
                & (thinned.points[:, 1] >= utility - eps * scale - 1e-9)
            ).any()
            assert ok, (energy, utility)


class TestExactProperties:
    def test_front_is_nondominated_and_sorted(self, tiny_evaluator):
        front = exact_energy_utility_front(tiny_evaluator, epsilon=0.0)
        assert nondominated_mask(front.points, space=ENERGY_UTILITY).all()
        assert np.all(np.diff(front.points[:, 0]) >= 0)
        # On an (energy, utility) front, utility rises with energy.
        assert np.all(np.diff(front.points[:, 1]) >= 0)

    def test_outer_bounds_the_evolved_front(self, tiny_evaluator, tiny_system,
                                            tiny_trace):
        """No GA point may dominate any exact relaxed point — the
        relaxation weakly dominates everything achievable."""
        from repro.core.dominance import dominates

        exact = exact_energy_utility_front(tiny_evaluator, epsilon=0.0)
        ga = NSGA2(
            tiny_evaluator,
            AlgorithmConfig(population_size=12, mutation_probability=0.5),
            rng=5,
        )
        history = ga.run(10, checkpoints=[10])
        for ga_point in history.final.front_points:
            for exact_point in exact.points:
                assert not dominates(tuple(ga_point), tuple(exact_point))

    def test_negative_epsilon_rejected(self, tiny_evaluator):
        with pytest.raises(OptimizationError):
            exact_energy_utility_front(tiny_evaluator, epsilon=-0.1)

    def test_dp_limit_guard(self, tiny_evaluator, monkeypatch):
        monkeypatch.setattr(baselines, "_EXACT_DP_LIMIT", 0)
        with pytest.raises(AnalysisError, match="epsilon"):
            exact_energy_utility_front(tiny_evaluator, epsilon=0.0)

    def test_brute_force_limit_guard(self, small_evaluator, monkeypatch):
        monkeypatch.setattr(baselines, "_BRUTE_FORCE_LIMIT", 10)
        with pytest.raises(AnalysisError, match="brute force"):
            brute_force_energy_utility_front(small_evaluator)


class TestEnergyMakespanFront:
    def test_front_shape_and_tradeoff(self, tiny_evaluator):
        front = exact_energy_makespan_front(tiny_evaluator)
        assert front.size >= 1
        assert nondominated_mask(front.points, space=front.space).all()
        # Both objectives minimized: energy falls as makespan is relaxed.
        assert np.all(np.diff(front.points[:, 0]) <= 0) or front.size == 1

    def test_cheapest_point_uses_min_energy_everywhere(self, tiny_evaluator):
        """With an unbounded makespan every task takes its cheapest
        machine, so the front's minimum energy is the sum of per-task
        minima."""
        front = exact_energy_makespan_front(tiny_evaluator)
        eec = np.asarray(tiny_evaluator._eec_rows)
        feasible = np.asarray(tiny_evaluator._feasible_rows, dtype=bool)
        best = sum(
            eec[t, feasible[t]].min() for t in range(eec.shape[0])
        )
        assert front.points[:, 0].min() == pytest.approx(best)


class TestDistanceToExact:
    def test_zero_distance_to_itself(self, tiny_evaluator):
        exact = exact_energy_utility_front(tiny_evaluator, epsilon=0.0)
        gap = distance_to_exact(exact.points, exact)
        assert gap["igd"] == pytest.approx(0.0, abs=1e-12)
        assert gap["additive_epsilon"] == pytest.approx(0.0, abs=1e-12)

    def test_worse_front_has_positive_distance(self, tiny_evaluator):
        exact = exact_energy_utility_front(tiny_evaluator, epsilon=0.0)
        # Shift the front strictly worse on both axes.
        worse = exact.points + np.array([10.0, -5.0])
        gap = distance_to_exact(worse, exact)
        assert gap["igd"] > 0
        assert gap["additive_epsilon"] > 0

    def test_exact_front_dataclass(self):
        front = ExactFront(
            points=np.array([[1.0, 2.0]]), space=ENERGY_UTILITY
        )
        assert front.size == 1
        assert front.epsilon == 0.0
