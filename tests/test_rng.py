"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.rng import derive_seed, ensure_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_ints_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passes_through(self):
        g = np.random.default_rng(3)
        assert ensure_rng(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(11)
        a = ensure_rng(np.random.SeedSequence(11)).random(3)
        b = ensure_rng(ss).random(3)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")  # type: ignore[arg-type]


class TestSpawn:
    def test_count(self):
        assert len(spawn(5, 4)) == 4

    def test_children_independent_and_deterministic(self):
        a = [g.random(3) for g in spawn(5, 3)]
        b = [g.random(3) for g in spawn(5, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
        assert not np.array_equal(a[0], a[1])

    def test_spawn_zero(self):
        assert spawn(1, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(1, -1)

    def test_spawn_from_generator(self):
        g = np.random.default_rng(9)
        children = spawn(g, 2)
        assert len(children) == 2
        assert not np.array_equal(children[0].random(3), children[1].random(3))


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_path_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", 0) != derive_seed(1, "a", 1)
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_non_negative_63bit(self):
        for base in range(10):
            s = derive_seed(base, "x")
            assert 0 <= s < 2**63

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")
