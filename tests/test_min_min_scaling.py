"""Min-Min stage-1 cache scaling regression (paper-scale data set).

The naive two-stage greedy rescans every unmapped task's row each
mapping step — ~T²/2 row recomputations (≈ 8M rows at T = 4000).  The
cached implementation only recomputes rows whose cached best machine
was the one just updated.  :attr:`MinMinCompletionTime.last_stats`
exposes the actual cache work so this test can pin the optimization:
a regression to near-naive invalidation trips the ceiling long before
it trips a wall-clock benchmark.
"""

import numpy as np
import pytest

from repro.experiments.datasets import dataset1, dataset3
from repro.heuristics.min_min import MinMinCompletionTime


@pytest.fixture(scope="module")
def paper_scale():
    """dataset3: T = 4000 tasks, M = 30 machines."""
    bundle = dataset3()
    heuristic = MinMinCompletionTime()
    alloc = heuristic.build(bundle.system, bundle.trace)
    return bundle, heuristic, alloc


class TestCacheWorkCeiling:
    def test_recomputed_rows_far_below_naive(self, paper_scale):
        _, heuristic, _ = paper_scale
        stats = heuristic.last_stats
        assert stats["tasks"] == 4000
        naive_rows = stats["tasks"] * (stats["tasks"] - 1) // 2
        # Measured: ~708k rows vs ~8M naive. Ceiling leaves headroom
        # for dataset regeneration but catches a near-naive regression.
        assert stats["recomputed_rows"] <= 1_000_000
        assert stats["recomputed_rows"] < naive_rows / 5
        assert stats["invalidation_rounds"] <= stats["tasks"]

    def test_stats_reset_per_build(self, paper_scale):
        _, heuristic, _ = paper_scale
        bundle = dataset1()
        heuristic.build(bundle.system, bundle.trace)
        assert heuristic.last_stats["tasks"] == bundle.trace.num_tasks
        assert heuristic.last_stats["machines"] == bundle.system.num_machines

    def test_cached_result_matches_naive_reference(self):
        """The invalidation shortcut is exact: identical mapping to a
        brute-force Min-Min on a small instance."""
        bundle = dataset1()
        heuristic = MinMinCompletionTime()
        alloc = heuristic.build(bundle.system, bundle.trace)

        _, arrivals, etc, _ = heuristic._prepare(bundle.system, bundle.trace)
        T, M = etc.shape
        available = np.zeros(M)
        assignment = np.empty(T, dtype=np.int64)
        order = np.empty(T, dtype=np.int64)
        unmapped = np.ones(T, dtype=bool)
        for k in range(T):
            completion = np.maximum(available[None, :], arrivals[:, None]) + etc
            completion[~unmapped] = np.inf
            t, m = np.unravel_index(np.argmin(completion), completion.shape)
            assignment[t] = m
            order[t] = k
            unmapped[t] = False
            available[m] = completion[t, m]

        np.testing.assert_array_equal(alloc.machine_assignment, assignment)
        np.testing.assert_array_equal(alloc.scheduling_order, order)
