"""Tests for machine and machine-type definitions."""

import pytest

from repro.errors import ModelError
from repro.model.machine import Machine, MachineCategory, MachineType


class TestMachineType:
    def test_general_purpose_supports_everything(self):
        mt = MachineType(name="gp", index=0)
        assert not mt.is_special_purpose
        assert mt.supports(0) and mt.supports(99)

    def test_special_purpose_supports_subset(self):
        mt = MachineType(
            name="sp",
            index=1,
            category=MachineCategory.SPECIAL_PURPOSE,
            supported_task_types=frozenset({2, 5}),
        )
        assert mt.is_special_purpose
        assert mt.supports(2) and mt.supports(5)
        assert not mt.supports(0)

    def test_special_purpose_requires_task_set(self):
        with pytest.raises(ModelError):
            MachineType(name="sp", index=0, category=MachineCategory.SPECIAL_PURPOSE)

    def test_special_purpose_rejects_empty_task_set(self):
        with pytest.raises(ModelError):
            MachineType(
                name="sp",
                index=0,
                category=MachineCategory.SPECIAL_PURPOSE,
                supported_task_types=frozenset(),
            )

    def test_general_purpose_rejects_task_set(self):
        with pytest.raises(ModelError):
            MachineType(name="gp", index=0, supported_task_types=frozenset({1}))

    def test_negative_index_rejected(self):
        with pytest.raises(ModelError):
            MachineType(name="x", index=-1)

    def test_negative_idle_power_rejected(self):
        with pytest.raises(ModelError):
            MachineType(name="x", index=0, idle_power_watts=-1.0)


class TestMachine:
    def test_type_index_is_omega(self):
        mt = MachineType(name="gp", index=3)
        m = Machine(name="m0", index=0, machine_type=mt)
        assert m.type_index == 3

    def test_supports_delegates_to_type(self):
        mt = MachineType(
            name="sp",
            index=0,
            category=MachineCategory.SPECIAL_PURPOSE,
            supported_task_types=frozenset({1}),
        )
        m = Machine(name="m0", index=0, machine_type=mt)
        assert m.supports(1) and not m.supports(0)

    def test_negative_index_rejected(self):
        mt = MachineType(name="gp", index=0)
        with pytest.raises(ModelError):
            Machine(name="m", index=-2, machine_type=mt)
