"""Exception hierarchy contract."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)
    with pytest.raises(errors.ReproError):
        raise errors.ModelError("boom")


#: The deliberate exceptions to the flat partition: refinements that
#: callers must be able to catch under their subsystem base class.
NESTED = {
    "CheckpointError",
    "CorruptArtifactError",
    "ParallelExecutionError",
    "AlgorithmLookupError",
}


def test_subsystem_errors_are_distinct():
    names = [n for n in errors.__all__ if n != "ReproError" and n not in NESTED]
    classes = [getattr(errors, n) for n in names]
    assert len(set(classes)) == len(classes)
    # No subsystem error subclasses another (flat partition).
    for a in classes:
        for b in classes:
            if a is not b:
                assert not issubclass(a, b)


def test_io_errors_refine_experiment_error():
    assert issubclass(errors.CheckpointError, errors.ExperimentError)
    assert issubclass(errors.CorruptArtifactError, errors.ExperimentError)
    assert issubclass(errors.ParallelExecutionError, errors.ExperimentError)


def test_algorithm_lookup_refines_optimization_error():
    assert issubclass(errors.AlgorithmLookupError, errors.OptimizationError)
