"""Exception hierarchy contract."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)
    with pytest.raises(errors.ReproError):
        raise errors.ModelError("boom")


def test_subsystem_errors_are_distinct():
    names = [n for n in errors.__all__ if n != "ReproError"]
    classes = [getattr(errors, n) for n in names]
    assert len(set(classes)) == len(classes)
    # No subsystem error subclasses another (flat partition).
    for a in classes:
        for b in classes:
            if a is not b:
                assert not issubclass(a, b)
