"""Exception hierarchy contract."""

import pytest

from repro import errors


#: Non-class exports: the parallel failure taxonomy helpers.
HELPERS = {"FAILURE_KINDS", "classify_failure"}


def _error_classes():
    return [getattr(errors, n) for n in errors.__all__ if n not in HELPERS]


def test_all_errors_derive_from_repro_error():
    for cls in _error_classes():
        assert issubclass(cls, errors.ReproError)


def test_only_known_helpers_are_not_classes():
    for name in errors.__all__:
        obj = getattr(errors, name)
        assert isinstance(obj, type) == (name not in HELPERS)


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)
    with pytest.raises(errors.ReproError):
        raise errors.ModelError("boom")


#: The deliberate exceptions to the flat partition: refinements that
#: callers must be able to catch under their subsystem base class.
NESTED = {
    "CheckpointError",
    "CorruptArtifactError",
    "ParallelExecutionError",
    "AlgorithmLookupError",
    "WorkerCrashError",
    "CellTimeoutError",
    "CorruptResultError",
    "GridManifestError",
}


def test_subsystem_errors_are_distinct():
    names = [
        n for n in errors.__all__
        if n != "ReproError" and n not in NESTED and n not in HELPERS
    ]
    classes = [getattr(errors, n) for n in names]
    assert len(set(classes)) == len(classes)
    # No subsystem error subclasses another (flat partition).
    for a in classes:
        for b in classes:
            if a is not b:
                assert not issubclass(a, b)


def test_io_errors_refine_experiment_error():
    assert issubclass(errors.CheckpointError, errors.ExperimentError)
    assert issubclass(errors.CorruptArtifactError, errors.ExperimentError)
    assert issubclass(errors.ParallelExecutionError, errors.ExperimentError)


def test_algorithm_lookup_refines_optimization_error():
    assert issubclass(errors.AlgorithmLookupError, errors.OptimizationError)


def test_failure_taxonomy_contract():
    assert issubclass(errors.WorkerCrashError, errors.ParallelExecutionError)
    assert issubclass(errors.CorruptResultError, errors.ParallelExecutionError)
    assert issubclass(errors.CellTimeoutError, errors.ParallelExecutionError)
    # Pre-taxonomy callers matched the builtin; keep that working.
    assert issubclass(errors.CellTimeoutError, TimeoutError)
    assert issubclass(errors.GridManifestError, errors.ExperimentError)
    assert errors.WorkerCrashError("x").kind == "worker-death"
    assert errors.classify_failure(TimeoutError()) == "timeout"
    assert errors.classify_failure(ValueError("cell blew up")) == "cell-exception"
    assert (
        errors.classify_failure(errors.CorruptArtifactError("bits"))
        == "corrupt-result"
    )
