"""The ``grid watch`` dashboard: snapshot join, rendering, export."""

import io
import os

import pytest

from repro.cli import main
from repro.experiments.datasets import dataset1
from repro.experiments.repetitions import run_repetitions
from repro.obs import RunContext
from repro.obs.watch import (
    grid_snapshot,
    render_watch,
    snapshot_to_prometheus,
    watch_grid,
    write_prometheus_textfile,
)
from repro.parallel.manifest import GridManifest


@pytest.fixture(scope="module")
def bundle():
    return dataset1(seed=321)


@pytest.fixture(scope="module")
def finished_grid(bundle, tmp_path_factory):
    """A completed 4-cell parallel grid with worker telemetry."""
    grid_dir = tmp_path_factory.mktemp("grid")
    obs = RunContext.create(obs_dir=grid_dir / "obs", run_id="watched")
    run_repetitions(
        bundle, repetitions=4, generations=3, population_size=12,
        base_seed=55, workers=2, grid_dir=str(grid_dir), obs=obs,
    )
    obs.flush()
    return grid_dir


def _synthetic_grid(tmp_path, *, done=2, total=5):
    """A hand-journaled grid mid-flight (no processes involved)."""
    manifest = GridManifest.create(
        tmp_path, spec={"driver": "test"}, fingerprint="fp",
        cells=list(range(total)), grid_id="grid-test",
    )
    for key in range(done):
        manifest.mark_leased(key, 1)
        manifest.mark_done(key, 1, checksum="x")
    return manifest


class TestSnapshot:
    def test_counts_workers_and_throughput(self, finished_grid):
        snap = grid_snapshot(finished_grid)
        assert snap["grid_id"]
        assert snap["total"] == 4
        assert snap["counts"]["done"] == 4
        assert snap["throughput"]["remaining"] == 0
        # Two pool workers, each with telemetry-confirmed cells.
        assert len(snap["workers"]) == 2
        assert sum(w["cells_done"] for w in snap["workers"]) == 4
        assert snap["worker_metrics"]["worker_cells_total"]["value"] == 4.0

    def test_obs_dir_defaults_to_grid_obs(self, finished_grid):
        snap = grid_snapshot(finished_grid)
        assert snap["obs_dir"] == str(finished_grid / "obs")

    def test_eta_from_done_timestamps(self, tmp_path):
        manifest = _synthetic_grid(tmp_path, done=0, total=6)
        # Journal done records 10 s apart; the snapshot replays them.
        for key, t in zip(range(3), (100.0, 110.0, 120.0)):
            manifest._append({
                "rec": "cell", "cell": key, "state": "done", "attempt": 1,
                "checksum": "x", "src": os.getpid(), "t": t,
            })
        snap = grid_snapshot(tmp_path, now=130.0)
        through = snap["throughput"]
        assert through["done"] == 3
        assert through["remaining"] == 3
        # 2 completion intervals over the 30 s since the first done.
        assert through["cells_per_s"] == pytest.approx(2 / 30)
        assert through["eta_s"] == pytest.approx(3 / (2 / 30))

    def test_retry_and_quarantine_feeds(self, tmp_path):
        manifest = _synthetic_grid(tmp_path, done=1, total=4)
        manifest.mark_failed(1, 1, kind="timeout", error="slow")
        manifest.mark_failed(1, 2, kind="worker-death", error="sigkill",
                             owner=4242)
        manifest.mark_quarantined(2, 3, owners=(1, 2))
        snap = grid_snapshot(tmp_path)
        assert snap["cells_retried"] == 1
        assert snap["failure_kinds"] == {
            "timeout": 1, "worker-death": 1,
        }
        assert snap["quarantined"] == [2]

    def test_heartbeats_surface_worker_rows(self, tmp_path):
        manifest = _synthetic_grid(tmp_path, done=0, total=2)
        manifest.worker_journal().running(0, 1)
        snap = grid_snapshot(tmp_path)
        assert [w["pid"] for w in snap["workers"]] == [os.getpid()]
        row = snap["workers"][0]
        assert row["alive"] is True
        assert row["cell"] == 0
        assert row["last_beat_age_s"] is not None


class TestRender:
    def test_render_mentions_the_essentials(self, finished_grid):
        snap = grid_snapshot(finished_grid)
        text = render_watch(snap)
        assert "4/4 done" in text
        assert "workers: 2" in text
        assert "queue wait" in text
        assert "cell run time" in text

    def test_render_incomplete_grid(self, tmp_path):
        _synthetic_grid(tmp_path, done=2, total=5)
        text = render_watch(grid_snapshot(tmp_path))
        assert "2/5 done" in text
        assert "pending=3" in text


class TestPrometheusExport:
    def test_gauges_and_worker_series(self, finished_grid):
        snap = grid_snapshot(finished_grid)
        text = snapshot_to_prometheus(snap)
        assert 'grid_cells{state="done"} 4' in text
        assert "grid_cells_enumerated 4" in text
        assert "grid_workers 2" in text
        assert "worker_cells_total 4" in text

    def test_textfile_written_atomically(self, finished_grid, tmp_path):
        out = tmp_path / "metrics" / "grid.prom"
        write_prometheus_textfile(grid_snapshot(finished_grid), out)
        assert out.read_text().endswith("\n")
        assert not out.with_name(out.name + ".tmp").exists()


class TestWatchLoop:
    def test_once_renders_single_frame(self, finished_grid):
        stream = io.StringIO()
        snap = watch_grid(finished_grid, once=True, stream=stream)
        assert "4/4 done" in stream.getvalue()
        assert snap["counts"]["done"] == 4

    def test_live_mode_stops_when_grid_completes(self, finished_grid):
        stream = io.StringIO()
        sleeps = []
        watch_grid(
            finished_grid, interval=0.5, stream=stream,
            sleep=sleeps.append,
        )
        # Grid is already terminal: one frame, no sleeping.
        assert sleeps == []

    def test_frames_bound_live_refreshes(self, tmp_path):
        _synthetic_grid(tmp_path, done=1, total=3)
        stream = io.StringIO()
        sleeps = []
        watch_grid(
            tmp_path, interval=0.25, frames=3, stream=stream,
            sleep=sleeps.append,
        )
        assert sleeps == [0.25, 0.25]
        # Live refreshes clear the screen between frames.
        assert stream.getvalue().count("\x1b[2J") == 2


class TestCli:
    def test_grid_watch_once_exit_codes(self, finished_grid, tmp_path, capsys):
        prom = tmp_path / "grid.prom"
        code = main([
            "grid", "watch", str(finished_grid), "--once",
            "--prom", str(prom),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "4/4 done" in out
        assert 'grid_cells{state="done"} 4' in prom.read_text()

    def test_grid_watch_once_incomplete_is_nonzero(self, tmp_path, capsys):
        _synthetic_grid(tmp_path, done=1, total=3)
        code = main(["grid", "watch", str(tmp_path), "--once"])
        assert code == 1
        assert "1/3 done" in capsys.readouterr().out

    def test_grid_watch_missing_manifest_errors(self, tmp_path, capsys):
        code = main(["grid", "watch", str(tmp_path / "nope"), "--once"])
        assert code == 2
        assert "no grid manifest" in capsys.readouterr().err
