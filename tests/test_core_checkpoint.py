"""Crash-safe NSGA-II checkpoint/resume tests.

The central guarantee: a run killed at an arbitrary generation and
resumed from its durable checkpoint produces a ``RunHistory`` whose
objective points are **bit-identical** to an uninterrupted run with the
same seed.  Crashes are injected deterministically via
:mod:`repro.testing.faults` — no killing of real processes required.
"""

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointStore, EngineState, capture_state, restore_state
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.errors import CheckpointError, CorruptArtifactError, OptimizationError
from repro.sim.evaluator import ScheduleEvaluator
from repro.testing.faults import FaultPlan, InjectedFault, corrupt_artifact

GENS = 8
CPS = [2, 5, 8]


def make_engine(system, trace, seed=11, pop=12, fault_hook=None, label="ckpt"):
    evaluator = ScheduleEvaluator(
        system, trace, check_feasibility=False, fault_hook=fault_hook
    )
    return NSGA2(
        evaluator, NSGA2Config(population_size=pop), rng=seed, label=label
    )


def assert_identical_histories(a, b):
    assert a.total_generations == b.total_generations
    assert a.total_evaluations == b.total_evaluations
    assert len(a.snapshots) == len(b.snapshots)
    for sa, sb in zip(a.snapshots, b.snapshots):
        assert sa.generation == sb.generation
        assert sa.evaluations == sb.evaluations
        np.testing.assert_array_equal(sa.front_points, sb.front_points)


class TestKillAndResume:
    def test_resumed_run_bit_identical(self, small_system, small_trace, tmp_path):
        straight = make_engine(small_system, small_trace).run(GENS, CPS)

        # Evaluation call 1 is the initial population (engine __init__);
        # call k+1 happens inside generation k's step.  Crashing at call
        # 6 kills the run inside generation 5, after the generation-2
        # snapshot and the generation-4 checkpoint were persisted.
        plan = FaultPlan().crash("evaluate", at_call=6)
        dying = make_engine(
            small_system, small_trace, fault_hook=plan.evaluation_hook()
        )
        with pytest.raises(InjectedFault):
            dying.run(GENS, CPS, checkpoint_dir=str(tmp_path))
        assert dying.generation == 4  # progress up to the crash survived

        resumed = make_engine(small_system, small_trace).run(
            GENS, CPS, checkpoint_dir=str(tmp_path), resume=True
        )
        assert_identical_histories(straight, resumed)

    @pytest.mark.parametrize("crash_call", [2, 4, 7])
    def test_arbitrary_crash_points(self, small_system, small_trace, tmp_path,
                                    crash_call):
        straight = make_engine(small_system, small_trace).run(GENS, CPS)
        plan = FaultPlan().crash("evaluate", at_call=crash_call)
        with pytest.raises(InjectedFault):
            make_engine(
                small_system, small_trace, fault_hook=plan.evaluation_hook()
            ).run(GENS, CPS, checkpoint_dir=str(tmp_path))
        resumed = make_engine(small_system, small_trace).run(
            GENS, CPS, checkpoint_dir=str(tmp_path), resume=True
        )
        assert_identical_histories(straight, resumed)

    def test_resume_without_checkpoint_starts_fresh(
        self, small_system, small_trace, tmp_path
    ):
        straight = make_engine(small_system, small_trace).run(GENS, CPS)
        fresh = make_engine(small_system, small_trace).run(
            GENS, CPS, checkpoint_dir=str(tmp_path), resume=True
        )
        assert_identical_histories(straight, fresh)

    def test_resume_of_completed_run(self, small_system, small_trace, tmp_path):
        done = make_engine(small_system, small_trace).run(
            GENS, CPS, checkpoint_dir=str(tmp_path)
        )
        again = make_engine(small_system, small_trace).run(
            GENS, CPS, checkpoint_dir=str(tmp_path), resume=True
        )
        assert_identical_histories(done, again)

    def test_checkpoint_every_still_identical(
        self, small_system, small_trace, tmp_path
    ):
        straight = make_engine(small_system, small_trace).run(GENS, CPS)
        plan = FaultPlan().crash("evaluate", at_call=7)
        with pytest.raises(InjectedFault):
            make_engine(
                small_system, small_trace, fault_hook=plan.evaluation_hook()
            ).run(GENS, CPS, checkpoint_dir=str(tmp_path), checkpoint_every=3)
        resumed = make_engine(small_system, small_trace).run(
            GENS, CPS, checkpoint_dir=str(tmp_path), resume=True
        )
        assert_identical_histories(straight, resumed)


class TestValidation:
    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path, "nope").load()

    def test_corrupt_checkpoint_detected(self, small_system, small_trace,
                                         tmp_path):
        make_engine(small_system, small_trace).run(
            4, checkpoint_dir=str(tmp_path)
        )
        store = CheckpointStore(tmp_path, "ckpt")
        assert store.exists()
        corrupt_artifact(store.path, seed=3)
        with pytest.raises(CorruptArtifactError):
            store.load()
        with pytest.raises(CorruptArtifactError):
            make_engine(small_system, small_trace).run(
                4, checkpoint_dir=str(tmp_path), resume=True
            )

    def test_mid_run_corruption_via_fault_plan(self, small_system, small_trace,
                                               tmp_path):
        """A corrupt-checkpoint fault rule scribbles over the checkpoint
        between save and resume — the checksum must catch it.  Both
        rules fire on the same call: the scribble lands after the last
        good save, immediately before the crash."""
        store = CheckpointStore(tmp_path, "ckpt")
        plan = (
            FaultPlan(seed=9)
            .corrupt_checkpoint("evaluate", store.path, at_call=6)
            .crash("evaluate", at_call=6)
        )
        with pytest.raises(InjectedFault):
            make_engine(
                small_system, small_trace, fault_hook=plan.evaluation_hook()
            ).run(GENS, CPS, checkpoint_dir=str(tmp_path))
        with pytest.raises(CorruptArtifactError):
            store.load()

    def test_run_param_mismatch_rejected(self, small_system, small_trace,
                                         tmp_path):
        make_engine(small_system, small_trace).run(
            4, checkpoint_dir=str(tmp_path)
        )
        with pytest.raises(CheckpointError):
            make_engine(small_system, small_trace).run(
                6, checkpoint_dir=str(tmp_path), resume=True
            )

    def test_population_shape_mismatch_rejected(self, small_system,
                                                small_trace, tmp_path):
        make_engine(small_system, small_trace, pop=12).run(
            4, checkpoint_dir=str(tmp_path)
        )
        state = CheckpointStore(tmp_path, "ckpt").load()
        other = make_engine(small_system, small_trace, pop=8)
        with pytest.raises(CheckpointError):
            restore_state(other, state)

    def test_checkpoint_every_validated(self, small_system, small_trace,
                                        tmp_path):
        with pytest.raises(OptimizationError):
            make_engine(small_system, small_trace).run(
                4, checkpoint_dir=str(tmp_path), checkpoint_every=0
            )

    def test_malformed_document_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            EngineState.from_doc({"format": "bogus/9"})
        with pytest.raises(CheckpointError):
            EngineState.from_doc([1, 2, 3])
        with pytest.raises(CheckpointError):
            EngineState.from_doc({"format": "repro.checkpoint/1"})  # no keys


class TestStateRoundTrip:
    def test_store_roundtrip_preserves_everything(
        self, small_system, small_trace, tmp_path
    ):
        engine = make_engine(small_system, small_trace)
        engine.step()
        engine.step()
        state = capture_state(engine, [], 1.25, {"generations": 2})
        store = CheckpointStore(tmp_path, engine.label)
        store.save(state)
        loaded = store.load()
        assert loaded.generation == 2
        assert loaded.evaluations == engine._evaluations
        assert loaded.elapsed_seconds == 1.25
        assert loaded.rng_state == state.rng_state
        np.testing.assert_array_equal(loaded.assignments, state.assignments)
        np.testing.assert_array_equal(loaded.orders, state.orders)
        np.testing.assert_array_equal(loaded.energies, state.energies)
        np.testing.assert_array_equal(loaded.utilities, state.utilities)

    def test_restored_engine_steps_identically(
        self, small_system, small_trace, tmp_path
    ):
        a = make_engine(small_system, small_trace)
        a.step()
        state = capture_state(a, [], 0.0, {})
        store = CheckpointStore(tmp_path, "ckpt")
        store.save(state)

        b = make_engine(small_system, small_trace, seed=999)  # different seed
        restore_state(b, store.load())
        for _ in range(3):
            a.step()
            b.step()
        np.testing.assert_array_equal(
            a.population.objectives, b.population.objectives
        )
        np.testing.assert_array_equal(
            a.population.assignments, b.population.assignments
        )

    def test_clear_removes_checkpoint(self, small_system, small_trace,
                                      tmp_path):
        make_engine(small_system, small_trace).run(
            2, checkpoint_dir=str(tmp_path)
        )
        store = CheckpointStore(tmp_path, "ckpt")
        assert store.exists()
        store.clear()
        assert not store.exists()
        store.clear()  # idempotent
