"""Equivalence of the O(N log N) sweep and O(N²) matrix sort paths.

Front peeling has a unique result, so the Jensen-style sweep
(``method="sweep"``) and the dominance-matrix reference
(``method="matrix"``) must produce identical ranks on every input —
these tests pin that down over random, duplicate-heavy, colinear, and
adversarial populations, in both objective spaces, plus the NaN
fallback and validation behaviour of ``method="auto"``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.objectives import (
    ENERGY_UTILITY,
    BiObjectiveSpace,
    ObjectiveSense,
)
from repro.core.sorting import fast_nondominated_sort
from repro.errors import OptimizationError

BOTH_MINIMIZE = BiObjectiveSpace(
    senses=(ObjectiveSense.MINIMIZE, ObjectiveSense.MINIMIZE)
)
SPACES = [ENERGY_UTILITY, BOTH_MINIMIZE]


def assert_sweep_matches_matrix(pts, space):
    sweep = fast_nondominated_sort(pts, space, method="sweep")
    matrix = fast_nondominated_sort(pts, space, method="matrix")
    np.testing.assert_array_equal(sweep, matrix)
    auto = fast_nondominated_sort(pts, space, method="auto")
    np.testing.assert_array_equal(auto, sweep)


class TestSweepMatrixEquivalence:
    @pytest.mark.parametrize("space", SPACES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("n", [1, 2, 7, 50, 200])
    def test_random_populations(self, space, seed, n):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0.0, 100.0, size=(n, 2))
        assert_sweep_matches_matrix(pts, space)

    @pytest.mark.parametrize("space", SPACES)
    def test_duplicate_heavy(self, space):
        """GA populations converge onto repeated points; duplicates must
        share a rank and never dominate each other."""
        rng = np.random.default_rng(7)
        base = rng.uniform(0.0, 10.0, size=(8, 2))
        pts = base[rng.integers(0, 8, size=120)]
        assert_sweep_matches_matrix(pts, space)

    @pytest.mark.parametrize("space", SPACES)
    def test_colinear_points(self, space):
        """Points on a line: ties on one axis exercise the weak-dominance
        edge of the sweep."""
        x = np.linspace(0.0, 9.0, 10)
        for pts in (
            np.column_stack([x, x]),  # diagonal
            np.column_stack([x, np.full(10, 3.0)]),  # horizontal
            np.column_stack([np.full(10, 3.0), x]),  # vertical
        ):
            assert_sweep_matches_matrix(pts, space)

    def test_chain_is_fully_ranked(self):
        """A dominance chain gives N distinct fronts."""
        n = 40
        x = np.arange(n, dtype=np.float64)
        pts = np.column_stack([x, -x])  # energy up, utility down: chain
        ranks = fast_nondominated_sort(pts, method="sweep")
        np.testing.assert_array_equal(ranks, np.arange(1, n + 1))

    def test_antichain_is_one_front(self):
        n = 40
        x = np.arange(n, dtype=np.float64)
        pts = np.column_stack([x, x])  # energy up, utility up: no dominance
        np.testing.assert_array_equal(
            fast_nondominated_sort(pts, method="sweep"), 1
        )

    def test_quantized_grids(self):
        """Small integer grids maximize ties on both axes."""
        rng = np.random.default_rng(11)
        for _ in range(20):
            pts = rng.integers(0, 4, size=(60, 2)).astype(np.float64)
            assert_sweep_matches_matrix(pts, ENERGY_UTILITY)

    def test_infinities(self):
        """±inf is ordered and must not trip the sweep (only NaN does)."""
        pts = np.array(
            [[1.0, 5.0], [np.inf, 5.0], [1.0, -np.inf], [2.0, np.inf]]
        )
        assert_sweep_matches_matrix(pts, ENERGY_UTILITY)


class TestAutoFallbackAndValidation:
    def test_nan_falls_back_to_matrix(self):
        pts = np.array([[1.0, 2.0], [np.nan, 3.0], [2.0, 1.0]])
        auto = fast_nondominated_sort(pts, method="auto")
        matrix = fast_nondominated_sort(pts, method="matrix")
        np.testing.assert_array_equal(auto, matrix)

    def test_empty_input(self):
        for method in ("auto", "sweep", "matrix"):
            out = fast_nondominated_sort(np.empty((0, 2)), method=method)
            assert out.shape == (0,)
            assert out.dtype == np.int64

    def test_invalid_method_rejected(self):
        with pytest.raises(OptimizationError):
            fast_nondominated_sort(np.ones((3, 2)), method="quantum")

    def test_bad_shape_rejected(self):
        with pytest.raises(OptimizationError):
            fast_nondominated_sort(np.ones((3, 3)), method="sweep")


@settings(max_examples=120, deadline=None)
@given(
    pts=st.lists(
        st.tuples(
            st.floats(-1e6, 1e6, allow_nan=False),
            st.floats(-1e6, 1e6, allow_nan=False),
        ),
        min_size=1,
        max_size=60,
    ),
    space_index=st.integers(0, 1),
)
def test_property_sweep_equals_matrix(pts, space_index):
    arr = np.asarray(pts, dtype=np.float64)
    space = SPACES[space_index]
    np.testing.assert_array_equal(
        fast_nondominated_sort(arr, space, method="sweep"),
        fast_nondominated_sort(arr, space, method="matrix"),
    )
