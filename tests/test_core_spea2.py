"""SPEA2 tests: fitness semantics, truncation, and engine behaviour."""

import numpy as np
import pytest

from repro.core.algorithm import AlgorithmConfig
from repro.core.dominance import nondominated_mask
from repro.core.objectives import ENERGY_UTILITY
from repro.core.spea2 import SPEA2, _truncate_by_nearest_neighbor, spea2_fitness
from repro.errors import OptimizationError
from repro.sim.evaluator import ScheduleEvaluator


def make_engine(evaluator, rng=0, pop=16):
    return SPEA2(
        evaluator,
        AlgorithmConfig(population_size=pop, mutation_probability=0.5),
        rng=rng,
    )


class TestFitness:
    def test_nondominated_points_score_below_one(self):
        # (energy, utility): lower energy / higher utility is better.
        pts = np.array([
            [1.0, 10.0],   # nondominated
            [2.0, 20.0],   # nondominated
            [2.0, 5.0],    # dominated by both
            [3.0, 20.0],   # dominated by (2, 20)
        ])
        fitness = spea2_fitness(pts)
        assert (fitness[:2] < 1.0).all()
        assert (fitness[2:] >= 1.0).all()

    def test_more_dominated_points_score_worse(self):
        pts = np.array([
            [1.0, 30.0],
            [2.0, 20.0],   # dominated by 1 point
            [3.0, 10.0],   # dominated by 2 points
        ])
        fitness = spea2_fitness(pts)
        assert fitness[0] < fitness[1] < fitness[2]

    def test_shape_validated(self):
        with pytest.raises(OptimizationError):
            spea2_fitness(np.zeros((3, 3)))

    def test_empty_input(self):
        assert spea2_fitness(np.empty((0, 2))).size == 0


class TestTruncation:
    def test_keeps_boundary_points(self):
        """The canonical SPEA2 rule removes crowded interior points
        first; the extremes of the front survive truncation."""
        pts = np.array([
            [1.0, 10.0],
            [1.5, 10.5],   # crowded cluster
            [1.55, 10.6],
            [1.6, 10.7],
            [5.0, 40.0],
        ])
        survivors = _truncate_by_nearest_neighbor(pts, 3, ENERGY_UTILITY)
        assert 0 in survivors and 4 in survivors
        assert survivors.size == 3

    def test_truncates_to_requested_size(self):
        rng = np.random.default_rng(3)
        pts = np.column_stack([rng.random(20), rng.random(20)])
        assert _truncate_by_nearest_neighbor(pts, 7, ENERGY_UTILITY).size == 7


class TestEngine:
    def test_population_size_constant(self, small_evaluator):
        ga = make_engine(small_evaluator)
        for _ in range(5):
            ga.step()
            assert ga.population.size == 16

    def test_run_is_deterministic(self, small_system, small_trace):
        def run():
            ev = ScheduleEvaluator(small_system, small_trace,
                                   check_feasibility=False)
            return make_engine(ev, rng=9).run(5, checkpoints=[5])

        a, b = run(), run()
        np.testing.assert_array_equal(
            a.final.front_points, b.final.front_points
        )

    def test_front_is_nondominated(self, small_evaluator):
        ga = make_engine(small_evaluator, rng=2)
        history = ga.run(5, checkpoints=[5])
        assert nondominated_mask(history.final.front_points).all()

    def test_front_quality_improves_over_random_start(self, small_system,
                                                      small_trace):
        """Indicator-dominance sanity: after some generations the front's
        hypervolume strictly exceeds the initial population's."""
        from repro.analysis.indicators import hypervolume

        ev = ScheduleEvaluator(small_system, small_trace,
                               check_feasibility=False)
        ga = make_engine(ev, rng=4)
        ref = (1e9, 0.0)
        pts0, _ = ga.current_front()
        hv0 = hypervolume(pts0, ref)
        ga.run(15, checkpoints=[15])
        pts1, _ = ga.current_front()
        assert hypervolume(pts1, ref) > hv0

    def test_checkpoint_resume_bit_identical(self, small_system, small_trace,
                                             tmp_path):
        from repro.testing.faults import FaultPlan, InjectedFault

        def engine(fault_hook=None):
            ev = ScheduleEvaluator(small_system, small_trace,
                                   check_feasibility=False,
                                   fault_hook=fault_hook)
            return SPEA2(
                ev, AlgorithmConfig(population_size=12,
                                    mutation_probability=0.5),
                rng=6, label="spea2-ckpt",
            )

        straight = engine().run(6, checkpoints=[3, 6])
        plan = FaultPlan().crash("evaluate", at_call=5)
        with pytest.raises(InjectedFault):
            engine(plan.evaluation_hook()).run(
                6, checkpoints=[3, 6], checkpoint_dir=str(tmp_path)
            )
        resumed = engine().run(6, checkpoints=[3, 6],
                               checkpoint_dir=str(tmp_path), resume=True)
        np.testing.assert_array_equal(
            straight.final.front_points, resumed.final.front_points
        )
