"""Tests for the TUF preset catalogue and assignment."""

import numpy as np
import pytest

from repro.errors import UtilityFunctionError
from repro.utility.presets import (
    PRIORITY_LEVELS,
    URGENCY_LEVELS,
    assign_presets,
    default_catalog,
)


class TestCatalog:
    def test_size_is_priority_x_urgency_x_shapes(self):
        cat = default_catalog(900.0)
        assert len(cat) == len(PRIORITY_LEVELS) * len(URGENCY_LEVELS) * 4

    def test_names_unique(self):
        cat = default_catalog(900.0)
        assert len(set(cat.names)) == len(cat)

    def test_urgency_scales_with_horizon(self):
        short = default_catalog(100.0)
        long = default_catalog(1000.0)
        # Same catalogue position => urgency inversely proportional.
        assert short[0].urgency == pytest.approx(long[0].urgency * 10.0)

    def test_all_monotone(self):
        cat = default_catalog(900.0)
        times = np.linspace(0.0, 3600.0, 200)
        for tuf in cat.functions:
            values = tuf(times)
            assert np.all(np.diff(values) <= 1e-9)

    def test_invalid_horizon_rejected(self):
        with pytest.raises(UtilityFunctionError):
            default_catalog(0.0)


class TestAssignment:
    def test_deterministic(self):
        a = assign_presets(10, 900.0, seed=5)
        b = assign_presets(10, 900.0, seed=5)
        for x, y in zip(a, b):
            assert x.priority == y.priority and x.urgency == y.urgency

    def test_seed_changes_assignment(self):
        a = assign_presets(30, 900.0, seed=1)
        b = assign_presets(30, 900.0, seed=2)
        assert any(
            x.priority != y.priority or x.urgency != y.urgency
            for x, y in zip(a, b)
        )

    def test_count(self):
        assert len(assign_presets(7, 900.0, seed=0)) == 7

    def test_invalid_count_rejected(self):
        with pytest.raises(UtilityFunctionError):
            assign_presets(0, 900.0)
