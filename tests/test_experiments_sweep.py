"""Tests for the oversubscription sweep."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.sweep import LoadPoint, offered_load, oversubscription_sweep


class TestOfferedLoad:
    def test_linear_in_tasks(self, small_system):
        a = offered_load(small_system, 100, 600.0)
        b = offered_load(small_system, 200, 600.0)
        assert b == pytest.approx(2 * a)

    def test_inverse_in_window(self, small_system):
        a = offered_load(small_system, 100, 600.0)
        b = offered_load(small_system, 100, 1200.0)
        assert b == pytest.approx(a / 2)

    def test_magnitude(self, small_system):
        # mean ETC ~62.5s over 8 machines, 600 s window: 100 tasks
        # should be moderately oversubscribed.
        load = offered_load(small_system, 100, 600.0)
        assert 0.5 < load < 5.0


class TestSweep:
    def test_structure(self, small_system):
        points = oversubscription_sweep(
            small_system, window=600.0, task_counts=[20, 60],
            generations=8, population_size=12, base_seed=3,
        )
        assert len(points) == 2
        for p in points:
            assert isinstance(p, LoadPoint)
            assert 0 < p.utility_fraction <= 1.0
            assert p.energy_per_task_at_peak > 0
            assert p.front.size >= 1
        assert points[0].offered_load < points[1].offered_load

    def test_utility_fraction_falls_with_load(self, small_system):
        """The regime shift: heavier load, lower achievable utility
        fraction (queues force decay)."""
        points = oversubscription_sweep(
            small_system, window=600.0, task_counts=[10, 150],
            generations=15, population_size=16, base_seed=4,
        )
        assert points[0].utility_fraction > points[1].utility_fraction

    def test_validation(self, small_system):
        with pytest.raises(ExperimentError):
            oversubscription_sweep(small_system, window=600.0, task_counts=[])
        with pytest.raises(ExperimentError):
            oversubscription_sweep(small_system, window=0.0, task_counts=[5])
        with pytest.raises(ExperimentError):
            oversubscription_sweep(small_system, window=600.0, task_counts=[0])
