"""Tests for the telemetry recorder and the parallel population runner."""

import csv
import dataclasses
import time

import numpy as np
import pytest

from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.core.telemetry import (
    GenerationStats,
    StageTimings,
    TelemetryRecorder,
    compose,
)
from repro.errors import OptimizationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import dataset1
from repro.experiments.runner import run_seeded_populations


class TestTelemetry:
    def test_records_every_generation(self, small_evaluator):
        ga = NSGA2(small_evaluator, NSGA2Config(population_size=12), rng=1)
        pts, _ = ga.current_front()
        recorder = TelemetryRecorder(reference=(pts[:, 0].max() * 10, 0.0))
        ga.run(8, progress=recorder)
        assert len(recorder) == 8
        assert recorder.rows[0].generation == 1
        assert recorder.rows[-1].generation == 8

    def test_sampling_interval(self, small_evaluator):
        ga = NSGA2(small_evaluator, NSGA2Config(population_size=12), rng=2)
        pts, _ = ga.current_front()
        recorder = TelemetryRecorder(reference=(pts[:, 0].max() * 10, 0.0),
                                     every=3)
        ga.run(9, progress=recorder)
        assert [r.generation for r in recorder.rows] == [3, 6, 9]

    def test_hypervolume_series_nondecreasing(self, small_evaluator):
        ga = NSGA2(small_evaluator, NSGA2Config(population_size=12), rng=3)
        pts, _ = ga.current_front()
        recorder = TelemetryRecorder(reference=(pts[:, 0].max() * 10, 0.0))
        ga.run(15, progress=recorder)
        hv = recorder.series("hypervolume")
        assert np.all(np.diff(hv) >= -1e-9)

    def test_series_unknown_field(self, small_evaluator):
        ga = NSGA2(small_evaluator, NSGA2Config(population_size=12), rng=4)
        pts, _ = ga.current_front()
        recorder = TelemetryRecorder(reference=(pts[:, 0].max() * 10, 0.0))
        ga.run(2, progress=recorder)
        with pytest.raises(OptimizationError):
            recorder.series("nope")
        with pytest.raises(OptimizationError):
            TelemetryRecorder(reference=(1.0, 0.0)).series("hypervolume")

    def test_csv_export(self, small_evaluator, tmp_path):
        ga = NSGA2(small_evaluator, NSGA2Config(population_size=12), rng=5)
        pts, _ = ga.current_front()
        recorder = TelemetryRecorder(reference=(pts[:, 0].max() * 10, 0.0))
        ga.run(4, progress=recorder)
        path = tmp_path / "telemetry.csv"
        recorder.to_csv(path)
        rows = list(csv.reader(path.open()))
        assert rows[0][0] == "generation"
        assert len(rows) == 5

    def test_compose(self, small_evaluator):
        ga = NSGA2(small_evaluator, NSGA2Config(population_size=12), rng=6)
        pts, _ = ga.current_front()
        a = TelemetryRecorder(reference=(pts[:, 0].max() * 10, 0.0))
        seen = []
        ga.run(3, progress=compose(a, lambda gen, eng: seen.append(gen)))
        assert len(a) == 3 and seen == [1, 2, 3]
        with pytest.raises(OptimizationError):
            compose()

    def test_every_validation(self):
        with pytest.raises(OptimizationError):
            TelemetryRecorder(reference=(1.0, 0.0), every=0)

    def test_series_unknown_field_message_lists_dataclass_fields(self):
        """The error names every GenerationStats field, derived from
        dataclasses.fields (not __slots__)."""
        recorder = TelemetryRecorder(reference=(1.0, 0.0))
        recorder.rows.append(
            GenerationStats(
                generation=1, front_size=2, hypervolume=0.5,
                min_energy=1.0, max_utility=2.0, mean_energy=1.5,
                mean_utility=1.0, seconds_since_start=0.0,
            )
        )
        with pytest.raises(OptimizationError) as excinfo:
            recorder.series("does_not_exist")
        message = str(excinfo.value)
        for field in dataclasses.fields(GenerationStats):
            assert field.name in message

    def test_t0_anchored_at_construction(self, small_evaluator):
        """Pacing starts at construction, not lazily at the first
        callback — the column includes setup time before generation 1."""
        recorder = TelemetryRecorder(reference=(1e12, 0.0))
        anchor = recorder.started_at
        assert anchor <= time.perf_counter()
        ga = NSGA2(small_evaluator, NSGA2Config(population_size=12), rng=7)
        ga.run(2, progress=recorder)
        assert recorder.started_at == anchor  # never re-anchored
        assert all(r.seconds_since_start > 0.0 for r in recorder.rows)

    def test_explicit_start_survives_resume(self, small_evaluator):
        """A recorder rebuilt with the original epoch keeps one clock:
        its samples continue strictly after the pre-resume samples."""
        ga = NSGA2(small_evaluator, NSGA2Config(population_size=12), rng=8)
        first = TelemetryRecorder(reference=(1e12, 0.0))
        ga.run(2, progress=first)
        resumed = TelemetryRecorder(
            reference=(1e12, 0.0), start=first.started_at
        )
        assert resumed.started_at == first.started_at
        ga.run(4, progress=resumed)
        assert (
            resumed.rows[0].seconds_since_start
            > first.rows[-1].seconds_since_start
        )

    def test_stage_timings_as_dict_sorted(self):
        timings = StageTimings()
        for stage in ("variation", "selection", "evaluate", "environmental"):
            timings.record(stage, 0.5)
        assert list(timings.as_dict()) == sorted(timings.totals)
        assert timings.as_dict()["selection"]["count"] == 1

    def test_compose_is_fail_fast(self, small_evaluator):
        """A raising callback aborts that generation's remaining
        callbacks and propagates out of the run (documented contract)."""
        calls = []

        def first(gen, eng):
            calls.append(("first", gen))

        def boom(gen, eng):
            raise RuntimeError("telemetry sink exploded")

        def never(gen, eng):  # pragma: no cover - must not run
            calls.append(("never", gen))

        ga = NSGA2(small_evaluator, NSGA2Config(population_size=12), rng=9)
        with pytest.raises(RuntimeError, match="telemetry sink exploded"):
            ga.run(3, progress=compose(first, boom, never))
        assert calls == [("first", 1)]


class TestParallelRunner:
    CFG = ExperimentConfig(
        population_size=10, generations=3, checkpoints=(3,), base_seed=44
    )

    def test_parallel_matches_sequential(self):
        """Process-pool execution is bit-identical to in-process
        execution (RNG streams derive from config, not order)."""
        bundle = dataset1(seed=44)
        labels = ["min-energy", "random"]
        seq = run_seeded_populations(bundle, self.CFG, labels=labels, workers=0)
        par = run_seeded_populations(bundle, self.CFG, labels=labels, workers=2)
        for label in labels:
            np.testing.assert_array_equal(
                seq.histories[label].final.front_points,
                par.histories[label].final.front_points,
            )

    def test_single_worker_falls_back(self):
        bundle = dataset1(seed=44)
        result = run_seeded_populations(
            bundle, self.CFG, labels=["random"], workers=1
        )
        assert "random" in result.histories
