"""End-to-end determinism: same seeds, bit-identical results.

The reproducibility contract (DESIGN.md, Section 5) — every stochastic
entry point is a pure function of its integer seed.
"""

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import dataset1
from repro.experiments.runner import run_seeded_populations


def test_full_experiment_bit_reproducible():
    cfg = ExperimentConfig(
        population_size=12, generations=5, checkpoints=(2, 5), base_seed=77
    )
    results = []
    for _ in range(2):
        bundle = dataset1(seed=77)
        results.append(
            run_seeded_populations(bundle, cfg, labels=["min-energy", "random"])
        )
    a, b = results
    for label in a.histories:
        for snap_a, snap_b in zip(
            a.histories[label].snapshots, b.histories[label].snapshots
        ):
            np.testing.assert_array_equal(snap_a.front_points, snap_b.front_points)
    for k in a.seed_objectives:
        assert a.seed_objectives[k] == b.seed_objectives[k]


def test_different_base_seed_changes_outcome():
    cfg_a = ExperimentConfig(
        population_size=12, generations=5, checkpoints=(5,), base_seed=1
    )
    cfg_b = ExperimentConfig(
        population_size=12, generations=5, checkpoints=(5,), base_seed=2
    )
    res_a = run_seeded_populations(dataset1(seed=5), cfg_a, labels=["random"])
    res_b = run_seeded_populations(dataset1(seed=5), cfg_b, labels=["random"])
    assert not np.array_equal(
        res_a.histories["random"].final.front_points,
        res_b.histories["random"].final.front_points,
    )


def test_dataset_builders_reproducible():
    a = dataset1(seed=11)
    b = dataset1(seed=11)
    np.testing.assert_array_equal(a.system.etc.values, b.system.etc.values)
    np.testing.assert_array_equal(a.trace.task_types, b.trace.task_types)
    # TUF assignment also derived from the seed.
    for tt_a, tt_b in zip(a.system.task_types, b.system.task_types):
        assert tt_a.utility_function.priority == tt_b.utility_function.priority
        assert tt_a.utility_function.urgency == tt_b.utility_function.urgency
