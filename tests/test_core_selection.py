"""Tests for tournament parent selection."""

import numpy as np
import pytest

from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.core.operators import OperatorConfig, binary_tournament_pairs
from repro.errors import OptimizationError


class TestBinaryTournament:
    def test_better_rank_always_wins(self):
        ranks = np.array([1, 5])
        crowding = np.array([0.0, 100.0])
        rng = np.random.default_rng(0)
        pairs = binary_tournament_pairs(ranks, crowding, 200, rng)
        # Whenever both candidates are drawn (0 vs 1), 0 must win; so
        # selected index 1 can appear only when both candidates were 1.
        # Statistically index 0 dominates the draw.
        frac0 = np.mean(pairs == 0)
        assert frac0 > 0.6

    def test_crowding_breaks_rank_ties(self):
        ranks = np.array([1, 1])
        crowding = np.array([0.5, 2.0])
        rng = np.random.default_rng(1)
        pairs = binary_tournament_pairs(ranks, crowding, 200, rng)
        frac1 = np.mean(pairs == 1)
        assert frac1 > 0.6

    def test_deterministic_under_seed(self):
        ranks = np.array([1, 2, 1, 3])
        crowding = np.array([1.0, 0.5, 2.0, 0.1])
        a = binary_tournament_pairs(ranks, crowding, 10, np.random.default_rng(3))
        b = binary_tournament_pairs(ranks, crowding, 10, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_shape(self):
        ranks = np.ones(8, dtype=np.int64)
        crowding = np.ones(8)
        pairs = binary_tournament_pairs(ranks, crowding, 4,
                                        np.random.default_rng(4))
        assert pairs.shape == (4, 2)
        assert pairs.min() >= 0 and pairs.max() < 8

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(OptimizationError):
            binary_tournament_pairs(
                np.ones(3, dtype=np.int64), np.ones(4), 2,
                np.random.default_rng(0),
            )


class TestEngineIntegration:
    def test_invalid_selection_name_rejected(self):
        with pytest.raises(OptimizationError):
            OperatorConfig(parent_selection="roulette")

    def test_tournament_engine_runs(self, small_evaluator):
        ga = NSGA2(
            small_evaluator,
            NSGA2Config(
                population_size=16,
                operators=OperatorConfig(parent_selection="tournament"),
            ),
            rng=5,
        )
        hist = ga.run(10)
        assert hist.total_generations == 10
        assert hist.final.front_size >= 1

    def test_tournament_differs_from_uniform(self, small_evaluator):
        def run(selection):
            ga = NSGA2(
                small_evaluator,
                NSGA2Config(
                    population_size=16,
                    operators=OperatorConfig(parent_selection=selection),
                ),
                rng=6,
            )
            return ga.run(10).final.front_points

        assert not np.array_equal(run("uniform"), run("tournament"))
