"""Tests for solution dominance (paper Figure 2 semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dominance import (
    dominance_matrix,
    dominates,
    nondominated_mask,
    pareto_filter,
)
from repro.errors import OptimizationError


class TestFigure2:
    """The paper's Figure 2: A dominates B; A and C incomparable."""

    A = (5.0, 10.0)  # (energy, utility)
    B = (7.0, 8.0)
    C = (3.0, 6.0)

    def test_a_dominates_b(self):
        assert dominates(self.A, self.B)
        assert not dominates(self.B, self.A)

    def test_a_c_incomparable(self):
        assert not dominates(self.A, self.C)
        assert not dominates(self.C, self.A)

    def test_equal_points_do_not_dominate(self):
        assert not dominates(self.A, self.A)

    def test_weak_improvement_dominates(self):
        # Same energy, more utility.
        assert dominates((5.0, 11.0), self.A)
        # Less energy, same utility.
        assert dominates((4.0, 10.0), self.A)

    def test_shape_validated(self):
        with pytest.raises(OptimizationError):
            dominates((1.0, 2.0, 3.0), (1.0, 2.0))


class TestDominanceMatrix:
    def test_matches_pairwise(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 10, size=(15, 2))
        D = dominance_matrix(pts)
        for i in range(15):
            for j in range(15):
                assert D[i, j] == dominates(pts[i], pts[j])

    def test_diagonal_false(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0]])
        D = dominance_matrix(pts)
        assert not D.any()  # duplicates never dominate


class TestNondominatedMask:
    def test_simple_front(self):
        pts = np.array(
            [
                [1.0, 5.0],   # front
                [2.0, 8.0],   # front
                [2.5, 7.0],   # dominated by (2, 8)
                [3.0, 9.0],   # front
                [1.5, 4.0],   # dominated by (1, 5)
            ]
        )
        np.testing.assert_array_equal(
            nondominated_mask(pts), [True, True, False, True, False]
        )

    def test_duplicates_all_kept(self):
        pts = np.array([[1.0, 5.0], [1.0, 5.0], [2.0, 4.0]])
        np.testing.assert_array_equal(nondominated_mask(pts), [True, True, False])

    def test_equal_utility_lower_energy_wins(self):
        pts = np.array([[1.0, 5.0], [2.0, 5.0]])
        np.testing.assert_array_equal(nondominated_mask(pts), [True, False])

    def test_equal_energy_higher_utility_wins(self):
        pts = np.array([[1.0, 5.0], [1.0, 7.0]])
        np.testing.assert_array_equal(nondominated_mask(pts), [False, True])

    def test_empty(self):
        assert nondominated_mask(np.empty((0, 2))).shape == (0,)

    def test_single(self):
        np.testing.assert_array_equal(nondominated_mask(np.array([[1.0, 1.0]])), [True])


class TestParetoFilter:
    def test_with_indices(self):
        pts = np.array([[1.0, 5.0], [2.0, 4.0], [0.5, 9.0]])
        front, idx = pareto_filter(pts, return_indices=True)
        np.testing.assert_array_equal(idx, [2])
        np.testing.assert_allclose(front, [[0.5, 9.0]])


@settings(max_examples=60, deadline=None)
@given(
    pts=st.lists(
        st.tuples(st.floats(0.0, 100.0), st.floats(0.0, 100.0)),
        min_size=1,
        max_size=60,
    )
)
def test_property_mask_matches_brute_force(pts):
    """The O(N log N) sweep agrees with the O(N^2) definition."""
    arr = np.asarray(pts, dtype=np.float64)
    mask = nondominated_mask(arr)
    n = arr.shape[0]
    brute = np.ones(n, dtype=bool)
    for j in range(n):
        for i in range(n):
            if i != j and dominates(arr[i], arr[j]):
                brute[j] = False
                break
    np.testing.assert_array_equal(mask, brute)


@settings(max_examples=40, deadline=None)
@given(
    pts=st.lists(
        st.tuples(st.floats(0.0, 100.0), st.floats(0.0, 100.0)),
        min_size=2,
        max_size=40,
    )
)
def test_property_front_points_mutually_incomparable(pts):
    arr = np.asarray(pts, dtype=np.float64)
    front = pareto_filter(arr)
    for i in range(front.shape[0]):
        for j in range(front.shape[0]):
            if i != j:
                assert not dominates(front[i], front[j])
