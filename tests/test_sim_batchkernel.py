"""Population-at-once batch kernel: exactness, reuse transparency.

The batch kernel (``kernel_method="batch"``) evaluates a whole
population with one composite sort and segmented scans, reusing
per-machine queue states across generations.  Its contract has two
halves, and every test here pins one of them:

* **Exactness** — results are bit-identical to the scalar oracle
  :func:`~repro.sim.batchkernel.batch_reference_row`, which computes
  every queue with plain Python left folds.  (The batch kernel uses a
  different summation association than the ``fast`` kernel, so it is
  pinned to its *own* oracle, not to ``fast``.)
* **Reuse transparency** — caching only skips work, never changes
  results: cache on/off/cleared, prefix-resume tier on/off, any batch
  composition, serial or parallel, all bit-identical.

Adversarial shapes (empty queues, single-task machines, duplicate
priorities, degenerate and large populations, huge order keys) target
the kernel's padding, segment bookkeeping, and hash fallbacks.
"""

import numpy as np
import pytest

from repro.core.algorithm import AlgorithmConfig
from repro.core.operators import FeasibleMachines
from repro.core.registry import available_algorithms, make_algorithm
from repro.errors import ScheduleError
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import DatasetBundle
from repro.experiments.repetitions import run_repetitions
from repro.experiments.runner import RetryPolicy, run_seeded_populations
from repro.model.system import SystemModel
from repro.sim.batchkernel import (
    PREFIX_ANCHOR_STRIDE,
    BatchQueueKernel,
    batch_reference_row,
)
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.makespan import MakespanEnergyEvaluator
from repro.sim.schedule import ResourceAllocation
from repro.testing.faults import FaultPlan
from repro.utility.presets import assign_presets
from repro.workload.generator import WorkloadGenerator


def make_batch(system, trace, n_rows, seed):
    """Random feasible (assignments, orders) rows for (system, trace)."""
    rng = np.random.default_rng(seed)
    feasible = FeasibleMachines.from_system_trace(system, trace)
    assignments = feasible.sample_matrix(n_rows, rng)
    orders = np.array(
        [rng.permutation(trace.num_tasks) for _ in range(n_rows)]
    )
    return assignments, orders


def batch_ev(system, trace, **kwargs):
    kwargs.setdefault("kernel_method", "batch")
    kwargs.setdefault("check_feasibility", False)
    return ScheduleEvaluator(system, trace, **kwargs)


def oracle_batch(ev, assignments, orders):
    """(energies, utilities) via the scalar oracle, row by row."""
    rows = [batch_reference_row(ev, a, o)
            for a, o in zip(assignments, orders)]
    return (np.array([r[0] for r in rows]),
            np.array([r[1] for r in rows]))


def assert_matches_oracle(ev, assignments, orders):
    e, u = ev.evaluate_batch(assignments, orders)
    eo, uo = oracle_batch(ev, assignments, orders)
    np.testing.assert_array_equal(e, eo)
    np.testing.assert_array_equal(u, uo)


@pytest.fixture(scope="module")
def bundle() -> DatasetBundle:
    """Seeded random bundle for engine/parallel-level tests."""
    rng = np.random.default_rng(31)
    etc = rng.uniform(5.0, 120.0, size=(5, 6))
    epc = rng.uniform(40.0, 250.0, size=(5, 6))
    system = SystemModel.from_matrices(
        etc, epc, machines_per_type=[1, 2, 1, 1, 2, 1]
    ).with_utility_functions(assign_presets(5, 600.0, seed=32))
    trace = WorkloadGenerator.uniform_for(5).generate(40, 600.0, seed=33)
    return DatasetBundle(
        name="batch-test", system=system, trace=trace,
        horizon_seconds=600.0, seed=0,
    )


# -- exactness against the scalar oracle --------------------------------------


class TestOracleBitIdentity:
    def test_random_batches_cold_and_warm(self, small_system, small_trace):
        ev = batch_ev(small_system, small_trace)
        for seed in (0, 1):  # second batch hits warm queue states
            assignments, orders = make_batch(
                small_system, small_trace, 30, seed
            )
            assert_matches_oracle(ev, assignments, orders)
        # Replaying batch 1 is served almost entirely from cache and
        # must still be bit-identical.
        assert_matches_oracle(ev, assignments, orders)

    def test_all_tasks_on_one_machine(self, small_system, small_trace):
        """Every other queue is empty — the padded fold matrices are
        maximally ragged (one row of length T, the rest length 0)."""
        ev = batch_ev(small_system, small_trace)
        T = small_trace.num_tasks
        M = small_system.num_machines
        rng = np.random.default_rng(2)
        assignments = np.repeat(
            np.arange(M, dtype=np.int64), 1
        )[:0]  # placeholder, built below
        rows_a, rows_o = [], []
        for m in range(M):
            rows_a.append(np.full(T, m, dtype=np.int64))
            rows_o.append(rng.permutation(T))
        assignments = np.array(rows_a)
        orders = np.array(rows_o)
        assert_matches_oracle(ev, assignments, orders)

    def test_single_task_machines(self, small_system, small_trace):
        """Round-robin placement: every queue holds at most
        ceil(T / M) tasks; with a shuffled variant some hold one."""
        ev = batch_ev(small_system, small_trace)
        T = small_trace.num_tasks
        M = small_system.num_machines
        rng = np.random.default_rng(3)
        round_robin = (np.arange(T, dtype=np.int64) % M)
        # One task on machine 0, the rest crowded onto machine 1.
        lonely = np.full(T, 1, dtype=np.int64)
        lonely[T // 2] = 0
        assignments = np.array([round_robin, lonely])
        orders = np.array([rng.permutation(T) for _ in range(2)])
        assert_matches_oracle(ev, assignments, orders)

    def test_duplicate_priorities(self, small_system, small_trace):
        """Tied order keys break ties by task index — in the kernel's
        composite sort and in the oracle's (order, task) sort alike."""
        ev = batch_ev(small_system, small_trace)
        T = small_trace.num_tasks
        rng = np.random.default_rng(4)
        assignments, _ = make_batch(small_system, small_trace, 3, 4)
        orders = np.array([
            np.zeros(T, dtype=np.int64),          # all tied
            rng.integers(0, 3, size=T),           # heavy ties
            np.repeat(np.arange(T // 2), 2)[:T],  # pairwise ties
        ])
        assert_matches_oracle(ev, assignments, orders)

    def test_population_of_one(self, small_system, small_trace):
        ev = batch_ev(small_system, small_trace)
        assignments, orders = make_batch(small_system, small_trace, 1, 5)
        assert_matches_oracle(ev, assignments, orders)

    def test_population_of_1000(self, small_system, small_trace):
        ev = batch_ev(small_system, small_trace)
        assignments, orders = make_batch(small_system, small_trace, 1000, 6)
        assert_matches_oracle(ev, assignments, orders)

    def test_large_order_keys_use_hash_fallback(
        self, small_system, small_trace
    ):
        """Order keys around 2^40 overflow the precomputed order-hash
        table, taking the arithmetic-mix fallback; results must match
        the oracle and the rank-equivalent small keys exactly."""
        ev = batch_ev(small_system, small_trace)
        assignments, orders = make_batch(small_system, small_trace, 8, 7)
        big = orders * np.int64(2**40) - np.int64(2**39)
        assert_matches_oracle(ev, assignments, big)
        e_small, u_small = ev.evaluate_batch(assignments, orders)
        e_big, u_big = ev.evaluate_batch(assignments, big)
        np.testing.assert_array_equal(e_small, e_big)
        np.testing.assert_array_equal(u_small, u_big)

    def test_tiny_system_hand_checkable(self, tiny_system, tiny_trace):
        ev = batch_ev(tiny_system, tiny_trace)
        assignments, orders = make_batch(tiny_system, tiny_trace, 16, 8)
        assert_matches_oracle(ev, assignments, orders)


# -- reuse transparency -------------------------------------------------------


class TestReuseTransparency:
    def test_cache_on_off_clear_bit_identical(
        self, small_system, small_trace
    ):
        on = batch_ev(small_system, small_trace)
        off = batch_ev(small_system, small_trace, cache_size=0)
        for seed in range(6):
            # Overlapping batches: half of each repeats the previous
            # seed, forcing real queue-state hits on the cached path.
            a0, o0 = make_batch(small_system, small_trace, 20, seed)
            a1, o1 = make_batch(small_system, small_trace, 20, max(seed - 1, 0))
            assignments = np.vstack([a0, a1])
            orders = np.vstack([o0, o1])
            e_on, u_on = on.evaluate_batch(assignments, orders)
            e_off, u_off = off.evaluate_batch(assignments, orders)
            np.testing.assert_array_equal(e_on, e_off)
            np.testing.assert_array_equal(u_on, u_off)
            if seed == 3:
                on.clear_cache()  # mid-stream clear must be invisible
        assert on.cache_stats["hits"] > 0  # the cached path really hit

    def test_cache_size_zero_reports_no_reuse(
        self, small_system, small_trace
    ):
        ev = batch_ev(small_system, small_trace, cache_size=0)
        assignments, orders = make_batch(small_system, small_trace, 10, 9)
        ev.evaluate_batch(assignments, orders)
        ev.evaluate_batch(assignments, orders)  # replay: would all hit
        stats = ev.cache_stats
        assert stats["hits"] == 0
        assert stats["elements_reused"] == 0
        assert stats["reuse_rate"] == 0.0

    def test_prefix_tier_bit_identical(self, small_system, small_trace):
        """The prefix-resume tier (default off) only changes which
        computations are skipped, never their results."""
        plain = batch_ev(small_system, small_trace)
        prefixed = batch_ev(small_system, small_trace,
                            prefix_stride=PREFIX_ANCHOR_STRIDE)
        assert prefixed._batch_kernel.prefix_stride == PREFIX_ANCHOR_STRIDE
        for seed in range(5):
            assignments, orders = make_batch(
                small_system, small_trace, 25, seed % 3
            )
            e0, u0 = plain.evaluate_batch(assignments, orders)
            e1, u1 = prefixed.evaluate_batch(assignments, orders)
            np.testing.assert_array_equal(e0, e1)
            np.testing.assert_array_equal(u0, u1)
            eo, uo = oracle_batch(plain, assignments, orders)
            np.testing.assert_array_equal(e0, eo)
            np.testing.assert_array_equal(u0, uo)

    def test_negative_prefix_stride_rejected(
        self, small_system, small_trace
    ):
        with pytest.raises(ValueError):
            batch_ev(small_system, small_trace, prefix_stride=-1)

    def test_stats_surface(self, small_system, small_trace):
        ev = batch_ev(small_system, small_trace)
        assignments, orders = make_batch(small_system, small_trace, 10, 11)
        ev.evaluate_batch(assignments, orders)
        ev.evaluate_batch(assignments, orders)
        stats = ev.cache_stats
        for key in ("hits", "misses", "entries", "elements_total",
                    "elements_reused", "reuse_rate", "prefix_hits"):
            assert key in stats
        assert stats["hits"] > 0
        assert 0.0 < stats["reuse_rate"] <= 1.0
        batch = ev._batch_kernel.last_batch
        assert batch["rows"] == 10
        assert batch["elements"] == 10 * small_trace.num_tasks
        ev.clear_cache()
        assert ev.cache_stats["entries"] == 0


# -- evaluator integration ----------------------------------------------------


class TestEvaluatorIntegration:
    def test_batch_reference_mode_matches_batch(
        self, small_system, small_trace
    ):
        fast = batch_ev(small_system, small_trace)
        ref = batch_ev(small_system, small_trace,
                       kernel_method="batch-reference")
        assignments, orders = make_batch(small_system, small_trace, 15, 12)
        e0, u0 = fast.evaluate_batch(assignments, orders)
        e1, u1 = ref.evaluate_batch(assignments, orders)
        np.testing.assert_array_equal(e0, e1)
        np.testing.assert_array_equal(u0, u1)

    def test_evaluate_single_matches_batch_row(
        self, small_system, small_trace
    ):
        ev = batch_ev(small_system, small_trace)
        assignments, orders = make_batch(small_system, small_trace, 4, 13)
        energies, utilities = ev.evaluate_batch(assignments, orders)
        for i in range(4):
            result = ev.evaluate(ResourceAllocation(
                machine_assignment=assignments[i],
                scheduling_order=orders[i],
            ))
            assert result.energy == energies[i]
            assert result.utility == utilities[i]

    def test_invalid_kernel_method_rejected(
        self, small_system, small_trace
    ):
        with pytest.raises(ScheduleError, match="kernel_method"):
            ScheduleEvaluator(small_system, small_trace,
                              kernel_method="vectorized")

    def test_chromosome_cache_bypassed_in_batch_mode(
        self, small_system, small_trace
    ):
        ev = batch_ev(small_system, small_trace)
        assert ev.cache is None  # queue-state tables replace it
        assert ev._batch_kernel is not None
        fast = ScheduleEvaluator(small_system, small_trace,
                                 check_feasibility=False,
                                 kernel_method="fast")
        assert fast.cache is not None
        assert fast._batch_kernel is None


# -- all algorithms share the batch path --------------------------------------


class TestAlgorithmsOnBatchKernel:
    @pytest.mark.parametrize("name", available_algorithms())
    def test_front_bit_identical_to_oracle_kernel(
        self, name, small_system, small_trace
    ):
        """Each registered algorithm run on the batch kernel produces
        the same front, bit for bit, as on the scalar-oracle kernel —
        evaluation goes through ``evaluate_batch`` everywhere."""
        fronts = []
        for method in ("batch", "batch-reference"):
            ev = batch_ev(small_system, small_trace, kernel_method=method)
            ga = make_algorithm(
                name, ev,
                AlgorithmConfig(population_size=12,
                                mutation_probability=0.5),
                rng=5, label=name,
            )
            history = ga.run(3, checkpoints=[3])
            fronts.append(history.final.front_points)
        np.testing.assert_array_equal(fronts[0], fronts[1])


# -- parallel and resume ------------------------------------------------------


class TestParallelAndResume:
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_parallel_matches_serial(self, bundle, transport):
        serial = run_repetitions(
            bundle, repetitions=3, generations=4, population_size=10,
            kernel_method="batch",
        )
        parallel = run_repetitions(
            bundle, repetitions=3, generations=4, population_size=10,
            workers=2, transport=transport, kernel_method="batch",
        )
        for s, p in zip(serial.fronts, parallel.fronts):
            np.testing.assert_array_equal(s, p)
        assert serial.hypervolume == parallel.hypervolume

    def test_checkpoint_resume_bit_identical(self, bundle, tmp_path):
        cfg = ExperimentConfig(
            population_size=10, generations=4, checkpoints=(2, 4),
            base_seed=5, kernel_method="batch",
        )
        clean = run_seeded_populations(bundle, cfg, labels=["random"])
        plan = FaultPlan().crash("evaluate", at_call=4)
        retried = run_seeded_populations(
            bundle, cfg, labels=["random"],
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0),
            evaluation_fault_hook=plan.evaluation_hook(),
            checkpoint_dir=str(tmp_path),
            sleep=lambda s: None,
        )
        assert retried.failures == ()
        for a, b in zip(clean.histories["random"].snapshots,
                        retried.histories["random"].snapshots):
            assert a.generation == b.generation
            np.testing.assert_array_equal(a.front_points, b.front_points)


# -- makespan evaluator -------------------------------------------------------


class TestMakespanBatchKernel:
    @pytest.mark.parametrize("bag_of_tasks", [True, False])
    def test_batch_matches_fast(self, small_system, small_trace,
                                bag_of_tasks):
        """The two kernels agree to float association: the batch
        kernel's finish recurrence and per-queue energy folds associate
        differently than the fast kernel's segmented scans, so low-bit
        drift is expected — exactness is pinned against the scalar
        oracle below, not against ``fast``."""
        fast = MakespanEnergyEvaluator(small_system, small_trace,
                                       bag_of_tasks=bag_of_tasks)
        batch = MakespanEnergyEvaluator(small_system, small_trace,
                                        bag_of_tasks=bag_of_tasks,
                                        kernel_method="batch")
        for seed in (20, 21):
            assignments, orders = make_batch(
                small_system, small_trace, 25, seed
            )
            e0, m0 = fast.evaluate_batch(assignments, orders)
            e1, m1 = batch.evaluate_batch(assignments, orders)
            np.testing.assert_allclose(m0, m1, rtol=1e-12)
            np.testing.assert_allclose(e0, e1, rtol=1e-12)

    def test_batch_matches_oracle_makespan(self, small_system, small_trace):
        batch = MakespanEnergyEvaluator(small_system, small_trace,
                                        kernel_method="batch")
        assignments, orders = make_batch(small_system, small_trace, 6, 22)
        energies, neg_makespans = batch.evaluate_batch(assignments, orders)
        for i in range(6):
            energy, _, finish = batch_reference_row(
                batch, assignments[i], orders[i]
            )
            assert energies[i] == energy
            assert -neg_makespans[i] == finish.max()

    def test_invalid_kernel_rejected(self, small_system, small_trace):
        with pytest.raises(ScheduleError, match="kernel_method"):
            MakespanEnergyEvaluator(small_system, small_trace,
                                    kernel_method="reference")


# -- experiment config plumbing -----------------------------------------------


class TestConfigPlumbing:
    def test_spec_roundtrip(self):
        cfg = ExperimentConfig(population_size=10, generations=4,
                               checkpoints=(4,), kernel_method="batch")
        spec = cfg.to_spec()
        assert spec["kernel_method"] == "batch"
        assert ExperimentConfig.from_spec(spec).kernel_method == "batch"

    def test_legacy_spec_defaults_to_fast(self):
        cfg = ExperimentConfig(population_size=10, generations=4,
                               checkpoints=(4,))
        spec = cfg.to_spec()
        del spec["kernel_method"]
        assert ExperimentConfig.from_spec(spec).kernel_method == "fast"

    def test_invalid_kernel_method_rejected(self):
        with pytest.raises(Exception, match="kernel_method"):
            ExperimentConfig(population_size=10, generations=4,
                             checkpoints=(4,), kernel_method="turbo")
