"""Tests for seed injection and the external Pareto archive."""

import numpy as np
import pytest

from repro.core.archive import ParetoArchive
from repro.core.dominance import nondominated_mask
from repro.core.operators import FeasibleMachines
from repro.core.seeding import seeded_initial_population
from repro.errors import OptimizationError
from repro.heuristics import MinEnergy


class TestSeeding:
    def test_seed_occupies_first_row(self, small_system, small_trace):
        feas = FeasibleMachines.from_system_trace(small_system, small_trace)
        seed_alloc = MinEnergy().build(small_system, small_trace)
        pop = seeded_initial_population(feas, 10, [seed_alloc], rng_seed=0)
        np.testing.assert_array_equal(pop.assignments[0], seed_alloc.machine_assignment)
        np.testing.assert_array_equal(pop.orders[0], seed_alloc.scheduling_order)

    def test_rest_is_random(self, small_system, small_trace):
        feas = FeasibleMachines.from_system_trace(small_system, small_trace)
        seed_alloc = MinEnergy().build(small_system, small_trace)
        pop = seeded_initial_population(feas, 10, [seed_alloc], rng_seed=0)
        # At least one non-seed row differs from the seed.
        assert any(
            not np.array_equal(pop.assignments[i], seed_alloc.machine_assignment)
            for i in range(1, 10)
        )

    def test_no_seeds_all_random(self, small_system, small_trace):
        feas = FeasibleMachines.from_system_trace(small_system, small_trace)
        pop = seeded_initial_population(feas, 5, [], rng_seed=1)
        assert pop.size == 5

    def test_too_many_seeds_rejected(self, small_system, small_trace):
        feas = FeasibleMachines.from_system_trace(small_system, small_trace)
        seed_alloc = MinEnergy().build(small_system, small_trace)
        with pytest.raises(OptimizationError):
            seeded_initial_population(feas, 1, [seed_alloc, seed_alloc], rng_seed=0)


class TestArchive:
    def test_update_keeps_nondominated(self):
        archive = ParetoArchive()
        archive.update(np.array([[2.0, 5.0], [1.0, 3.0], [3.0, 4.0]]))
        # (3, 4) dominated by (2, 5).
        assert len(archive) == 2

    def test_incremental_updates(self):
        archive = ParetoArchive()
        archive.update(np.array([[2.0, 5.0]]))
        archive.update(np.array([[1.0, 6.0]]))  # dominates the first
        assert len(archive) == 1
        np.testing.assert_allclose(archive.points, [[1.0, 6.0]])

    def test_payloads_follow_points(self):
        archive = ParetoArchive()
        archive.update(np.array([[2.0, 5.0], [1.0, 3.0]]), payloads=["a", "b"])
        archive.update(np.array([[0.5, 6.0]]), payloads=["c"])
        assert archive.payloads == ["c"]

    def test_duplicates_collapse(self):
        archive = ParetoArchive()
        archive.update(np.array([[1.0, 5.0], [1.0, 5.0]]), payloads=["x", "y"])
        assert len(archive) == 1
        assert archive.payloads == ["x"]

    def test_front_sorted(self):
        archive = ParetoArchive()
        archive.update(np.array([[3.0, 9.0], [1.0, 4.0], [2.0, 7.0]]))
        front = archive.front()
        assert np.all(np.diff(front[:, 0]) >= 0)
        assert nondominated_mask(front).all()

    def test_dominates_point(self):
        archive = ParetoArchive()
        archive.update(np.array([[1.0, 5.0]]))
        assert archive.dominates_point((2.0, 4.0))
        assert not archive.dominates_point((0.5, 6.0))
        assert not archive.dominates_point((1.0, 5.0))  # equal: not dominated

    def test_payload_count_mismatch_rejected(self):
        archive = ParetoArchive()
        with pytest.raises(OptimizationError):
            archive.update(np.array([[1.0, 2.0]]), payloads=["a", "b"])

    def test_empty_archive(self):
        archive = ParetoArchive()
        assert len(archive) == 0
        assert not archive.dominates_point((1.0, 1.0))
