"""Tests for task-type definitions."""

import pytest

from repro.errors import ModelError
from repro.model.task import TaskCategory, TaskType
from repro.utility.tuf import TimeUtilityFunction


class TestTaskType:
    def test_general_purpose_default(self):
        tt = TaskType(name="t", index=0)
        assert tt.category is TaskCategory.GENERAL_PURPOSE
        assert not tt.is_special_purpose
        assert tt.special_machine_type is None

    def test_special_purpose_names_machine(self):
        tt = TaskType(
            name="t",
            index=1,
            category=TaskCategory.SPECIAL_PURPOSE,
            special_machine_type=4,
        )
        assert tt.is_special_purpose
        assert tt.special_machine_type == 4

    def test_special_purpose_requires_machine(self):
        with pytest.raises(ModelError):
            TaskType(name="t", index=0, category=TaskCategory.SPECIAL_PURPOSE)

    def test_general_purpose_rejects_machine(self):
        with pytest.raises(ModelError):
            TaskType(name="t", index=0, special_machine_type=2)

    def test_negative_index_rejected(self):
        with pytest.raises(ModelError):
            TaskType(name="t", index=-1)

    def test_with_utility_function_copies(self):
        tt = TaskType(name="t", index=0)
        tuf = TimeUtilityFunction.linear(5.0, 0.01)
        tt2 = tt.with_utility_function(tuf)
        assert tt.utility_function is None
        assert tt2.utility_function is tuf
        assert tt2.name == tt.name and tt2.index == tt.index
