"""The grid manifest journal: lifecycle, total replay, corruption.

Replay must be *total*: a journal damaged in any way — torn tail,
garbage interior lines, duplicate terminal transitions — reconstructs
a usable state and surfaces the damage through counters instead of
raising or silently reusing questionable results.
"""

import json
import os

import pytest

from repro.errors import GridManifestError
from repro.parallel.manifest import (
    DEFAULT_LEASE_TTL,
    MANIFEST_NAME,
    GridManifest,
)


def _fresh(tmp_path, cells=(0, 1, 2)):
    return GridManifest.create(
        tmp_path, spec={"driver": "test"}, fingerprint="fp-1",
        cells=list(cells),
    )


class TestLifecycle:
    def test_create_then_load_round_trips(self, tmp_path):
        manifest = _fresh(tmp_path)
        manifest.mark_leased(0, 1)
        manifest.mark_running(0, 1)
        manifest.mark_done(0, 1, "abc123")
        manifest.mark_failed(1, 1, kind="timeout", error="too slow")

        loaded = GridManifest.load(tmp_path)
        assert loaded.fingerprint == "fp-1"
        assert loaded.spec == {"driver": "test"}
        assert loaded.cells[0].state == "done"
        assert loaded.cells[0].checksum == "abc123"
        assert loaded.cells[1].state == "failed"
        assert loaded.cells[1].failures[0]["kind"] == "timeout"
        assert loaded.cells[2].state == "pending"
        assert not loaded.torn_tail
        assert loaded.damaged_records == 0

    def test_status_counts(self, tmp_path):
        manifest = _fresh(tmp_path)
        manifest.mark_done(0, 1, "x")
        counts = manifest.status_counts()
        assert counts["done"] == 1
        assert counts["pending"] == 2

    def test_requeue_reopens_terminal_cell(self, tmp_path):
        manifest = _fresh(tmp_path)
        manifest.mark_quarantined(0, 3, owners=(111, 222))
        manifest.requeue(0)
        loaded = GridManifest.load(tmp_path)
        assert loaded.cells[0].state == "pending"
        assert loaded.cells[0].requeues == 1
        assert loaded.cells[0].failures == []

    def test_non_scalar_keys_rejected(self, tmp_path):
        with pytest.raises(GridManifestError, match="JSON scalars"):
            GridManifest.create(
                tmp_path, spec={}, fingerprint="fp", cells=[(0, 1)],
            )

    def test_create_rotates_existing_manifest(self, tmp_path):
        _fresh(tmp_path)
        GridManifest.create(
            tmp_path, spec={"driver": "other"}, fingerprint="fp-2",
            cells=[0],
        )
        stale = list(tmp_path.glob("manifest.stale-*.jsonl"))
        assert len(stale) == 1
        loaded = GridManifest.load(tmp_path)
        assert loaded.fingerprint == "fp-2"
        assert list(loaded.cells) == [0]

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(GridManifestError, match="no grid manifest"):
            GridManifest.load(tmp_path / "nowhere")

    def test_worker_journal_heartbeat_replays(self, tmp_path):
        manifest = _fresh(tmp_path)
        manifest.mark_leased(1, 2)
        journal = manifest.worker_journal()
        assert journal.lease_ttl == DEFAULT_LEASE_TTL
        journal.running(1, 2)
        loaded = GridManifest.load(tmp_path)
        assert loaded.cells[1].state == "running"
        assert loaded.cells[1].owner == os.getpid()


class TestPollRunning:
    def test_foreign_running_records_are_folded_in(self, tmp_path):
        manifest = _fresh(tmp_path)
        # A worker (different src pid) appends its heartbeat directly.
        record = {
            "rec": "cell", "cell": 2, "state": "running", "attempt": 1,
            "owner": 99999999, "src": 99999999, "t": 0.0,
            "lease_expires_at": 1e18,
        }
        with open(tmp_path / MANIFEST_NAME, "a") as handle:
            handle.write(json.dumps(record) + "\n")
        started = manifest.poll_running()
        assert started == [(2, 1, 99999999)]
        assert manifest.cells[2].state == "running"
        assert manifest.cells[2].owner == 99999999

    def test_own_records_are_not_double_applied(self, tmp_path):
        manifest = _fresh(tmp_path)
        manifest.mark_running(0, 1)
        assert manifest.poll_running() == []

    def test_incomplete_tail_line_is_deferred(self, tmp_path):
        manifest = _fresh(tmp_path)
        with open(tmp_path / MANIFEST_NAME, "a") as handle:
            handle.write('{"rec": "cell", "cell": 1, "sta')  # no newline
        assert manifest.poll_running() == []
        with open(tmp_path / MANIFEST_NAME, "a") as handle:
            handle.write('te": "running", "attempt": 1, '
                         '"owner": 7, "src": 7}\n')
        assert manifest.poll_running() == [(1, 1, 7)]


class TestCorruptionRecovery:
    def test_torn_tail_is_repaired_and_counted(self, tmp_path):
        manifest = _fresh(tmp_path)
        manifest.mark_done(0, 1, "sum-0")
        manifest.mark_leased(1, 1)
        # Simulate a crash mid-append: chop the last record in half.
        path = tmp_path / MANIFEST_NAME
        data = path.read_bytes()
        path.write_bytes(data[:-17])

        loaded = GridManifest.load(tmp_path)
        assert loaded.torn_tail
        # The completed record before the torn one survives intact.
        assert loaded.cells[0].state == "done"
        assert loaded.cells[1].state == "pending"
        # The repair terminates the torn line, so future appends land
        # clean: a reload sees the torn fragment as one damaged record.
        loaded.mark_done(1, 1, "sum-1")
        reloaded = GridManifest.load(tmp_path)
        assert reloaded.cells[1].state == "done"
        assert reloaded.damaged_records == 1

    def test_damaged_interior_lines_are_skipped(self, tmp_path):
        manifest = _fresh(tmp_path)
        manifest.mark_done(0, 1, "ok")
        path = tmp_path / MANIFEST_NAME
        with open(path, "a") as handle:
            handle.write("{not json at all\n")
            handle.write("\x00\x01\x02 binary junk\n")
        manifest.mark_done(1, 1, "also-ok")

        loaded = GridManifest.load(tmp_path)
        assert loaded.damaged_records == 2
        assert loaded.cells[0].state == "done"
        assert loaded.cells[1].state == "done"
        assert loaded.cells[2].state == "pending"

    def test_duplicate_terminal_transitions_are_idempotent(self, tmp_path):
        manifest = _fresh(tmp_path)
        manifest.mark_done(0, 1, "first")
        path = tmp_path / MANIFEST_NAME
        dupes = [
            {"rec": "cell", "cell": 0, "state": "done", "attempt": 2,
             "checksum": "second", "src": 1, "t": 0.0},
            {"rec": "cell", "cell": 0, "state": "failed", "attempt": 2,
             "kind": "cell-exception", "src": 1, "t": 0.0},
            {"rec": "cell", "cell": 0, "state": "running", "attempt": 3,
             "owner": 4, "src": 4, "t": 0.0},
        ]
        with open(path, "a") as handle:
            for record in dupes:
                handle.write(json.dumps(record) + "\n")

        loaded = GridManifest.load(tmp_path)
        # First terminal record wins; the stragglers count as anomalies.
        assert loaded.cells[0].state == "done"
        assert loaded.cells[0].checksum == "first"
        assert loaded.cells[0].anomalies == len(dupes)

    def test_second_header_is_ignored(self, tmp_path):
        manifest = _fresh(tmp_path)
        with open(tmp_path / MANIFEST_NAME, "a") as handle:
            handle.write(json.dumps(
                {"rec": "grid", "format": "repro.grid/1",
                 "grid_id": "impostor", "fingerprint": "fp-9",
                 "spec": {}, "cells": [9], "src": 1, "t": 0.0}
            ) + "\n")
        loaded = GridManifest.load(tmp_path)
        assert loaded.fingerprint == "fp-1"
        assert 9 not in loaded.cells
        assert loaded.damaged_records == 1

    def test_header_only_corruption_raises(self, tmp_path):
        manifest = _fresh(tmp_path)
        path = tmp_path / MANIFEST_NAME
        # Destroy the header line specifically.
        lines = path.read_bytes().split(b"\n")
        lines[0] = b"garbage"
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(GridManifestError, match="no readable grid header"):
            GridManifest.load(tmp_path)

    def test_late_heartbeat_of_old_attempt_ignored(self, tmp_path):
        manifest = _fresh(tmp_path)
        manifest.mark_running(0, 3)
        with open(tmp_path / MANIFEST_NAME, "a") as handle:
            handle.write(json.dumps(
                {"rec": "cell", "cell": 0, "state": "running",
                 "attempt": 1, "owner": 42, "src": 42, "t": 0.0}
            ) + "\n")
        loaded = GridManifest.load(tmp_path)
        assert loaded.cells[0].attempt == 3
        assert loaded.cells[0].anomalies == 1
