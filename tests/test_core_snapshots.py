"""Tests for GenerationSnapshot/RunHistory accessors."""

import numpy as np
import pytest

from repro.core.nsga2 import NSGA2, NSGA2Config, GenerationSnapshot


@pytest.fixture
def history(small_evaluator):
    ga = NSGA2(small_evaluator, NSGA2Config(population_size=14), rng=77)
    return ga.run(6, checkpoints=[3, 6])


class TestSnapshotAccessors:
    def test_best_points(self, history):
        snap = history.final
        e_best = snap.best_energy_point()
        u_best = snap.best_utility_point()
        assert e_best[0] == snap.front_points[:, 0].min()
        assert u_best[1] == snap.front_points[:, 1].max()
        # Both are actual front points.
        assert any(np.allclose(p, e_best) for p in snap.front_points)
        assert any(np.allclose(p, u_best) for p in snap.front_points)

    def test_front_size(self, history):
        snap = history.final
        assert snap.front_size == snap.front_points.shape[0]

    def test_evaluations_monotone(self, history):
        evals = [s.evaluations for s in history.snapshots]
        assert evals == sorted(evals)

    def test_final_is_last(self, history):
        assert history.final is history.snapshots[-1]
        assert history.final.generation == history.total_generations

    def test_checkpoint_solutions_policy(self, history):
        """Intermediate checkpoints drop chromosomes by default; the
        final snapshot always carries them."""
        intermediate = history.snapshot_at(3)
        assert intermediate.front_assignments is None
        assert history.final.front_assignments is not None

    def test_store_front_solutions_flag(self, small_evaluator):
        ga = NSGA2(
            small_evaluator,
            NSGA2Config(population_size=14, store_front_solutions=True),
            rng=78,
        )
        hist = ga.run(4, checkpoints=[2, 4])
        assert hist.snapshot_at(2).front_assignments is not None

    def test_wall_seconds_positive(self, history):
        assert history.wall_seconds > 0
