"""Tests for the repro-analyze CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "--name", "figure9"])


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table III" in out
        assert "AMD A8-3870K" in out
        assert "TOTAL" in out

    def test_seeds(self, capsys):
        assert main(["seeds", "--dataset", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "min-energy" in out and "min-min-completion-time" in out

    def test_datagen(self, capsys):
        assert main(["datagen", "--new-task-types", "10", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "ETC real rows" in out and "EPC synthetic rows" in out

    def test_system_export(self, capsys, tmp_path):
        out_path = tmp_path / "sys.json"
        assert main(["system", "--dataset", "1", "--output", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert data["format"] == "repro.system/1"
        out = capsys.readouterr().out
        assert "SystemModel" in out

    def test_figure_small(self, capsys, tmp_path):
        out_path = tmp_path / "fig.json"
        code = main(
            [
                "figure",
                "--name",
                "figure3",
                "--scale",
                "0.00002",
                "--seed",
                "1",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "figure3" in out
        assert out_path.exists()
        saved = json.loads(out_path.read_text())
        assert saved["payload"]["name"] == "figure3"
        assert "checksum" in saved


class TestNewCommands:
    def test_gantt(self, capsys):
        assert main(
            ["gantt", "--dataset", "1", "--heuristic", "min-energy",
             "--width", "60", "--max-machines", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "min-energy on dataset1" in out
        assert "idle awaiting arrival" in out

    def test_repetitions(self, capsys):
        assert main(
            ["repetitions", "--repetitions", "2", "--generations", "3",
             "--population", "10", "--seed", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "best" in out and "worst" in out
        assert "hypervolume" in out

    def test_figure_csv_and_svg(self, capsys, tmp_path):
        csv_path = tmp_path / "fig.csv"
        svg_dir = tmp_path / "svg"
        code = main(
            [
                "figure", "--name", "figure3", "--scale", "0.00002",
                "--seed", "2", "--csv", str(csv_path),
                "--svg-dir", str(svg_dir),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        assert list(svg_dir.glob("*.svg"))

    def test_report(self, capsys):
        assert main(
            ["report", "--dataset", "1", "--scale", "0.00002",
             "--population", "10", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "Experiment report" in out
        assert "Best-known front" in out

    def test_reproduce_all(self, capsys, tmp_path):
        out_dir = tmp_path / "artifacts"
        assert main(
            ["reproduce-all", "--output", str(out_dir),
             "--scale", "0.00002", "--population", "10", "--seed", "3"]
        ) == 0
        assert (out_dir / "MANIFEST.txt").exists()
        assert (out_dir / "figure6.json").exists()
