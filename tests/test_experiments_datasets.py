"""Tests for the Section V-A data set builders."""

import numpy as np
import pytest

from repro.data.historical import HISTORICAL_ETC, MACHINE_NAMES, PROGRAM_NAMES
from repro.experiments.datasets import (
    TABLE3_MACHINE_COUNTS,
    dataset1,
    dataset2,
    dataset3,
)
from repro.model.machine import MachineCategory


class TestDataset1:
    def test_paper_parameters(self, ds1_bundle):
        assert ds1_bundle.system.num_machines == 9
        assert ds1_bundle.system.num_machine_types == 9
        assert ds1_bundle.system.num_task_types == 5
        assert ds1_bundle.num_tasks == 250
        assert ds1_bundle.horizon_seconds == 900.0
        assert ds1_bundle.trace.window == 900.0

    def test_real_matrices_used(self, ds1_bundle):
        np.testing.assert_array_equal(
            ds1_bundle.system.etc.values, HISTORICAL_ETC
        )

    def test_tufs_attached(self, ds1_bundle):
        assert all(
            tt.utility_function is not None
            for tt in ds1_bundle.system.task_types
        )

    def test_deterministic(self):
        a = dataset1(seed=5)
        b = dataset1(seed=5)
        np.testing.assert_array_equal(a.trace.task_types, b.trace.task_types)
        np.testing.assert_array_equal(a.trace.arrival_times, b.trace.arrival_times)


class TestTable3:
    def test_totals(self):
        counts = dict(TABLE3_MACHINE_COUNTS)
        assert sum(counts.values()) == 30
        assert len(counts) == 13
        # Four special-purpose machine types, one machine each.
        specials = [n for n in counts if n.startswith("Special")]
        assert len(specials) == 4
        assert all(counts[n] == 1 for n in specials)

    def test_paper_general_counts(self):
        counts = dict(TABLE3_MACHINE_COUNTS)
        assert counts["Intel Core i7 3770K"] == 5
        assert counts["Intel Core i7 3960X"] == 4
        assert counts["AMD A8-3870K"] == 2


class TestDataset2:
    def test_paper_parameters(self, ds2_bundle):
        sys_ = ds2_bundle.system
        assert sys_.num_machines == 30
        assert sys_.num_machine_types == 13
        assert sys_.num_task_types == 30
        assert ds2_bundle.num_tasks == 1000
        assert ds2_bundle.horizon_seconds == 900.0

    def test_special_machine_types(self, ds2_bundle):
        specials = [
            mt for mt in ds2_bundle.system.machine_types if mt.is_special_purpose
        ]
        assert len(specials) == 4
        sizes = sorted(len(mt.supported_task_types) for mt in specials)
        assert sizes == [2, 2, 3, 3]

    def test_special_task_types_point_to_machines(self, ds2_bundle):
        sys_ = ds2_bundle.system
        special_tasks = [tt for tt in sys_.task_types if tt.is_special_purpose]
        assert len(special_tasks) == 10  # 3+2+3+2
        for tt in special_tasks:
            mt = sys_.machine_types[tt.special_machine_type]
            assert mt.is_special_purpose
            assert tt.index in mt.supported_task_types

    def test_real_rows_retained(self, ds2_bundle):
        # First five task-type rows over general columns == real data.
        np.testing.assert_array_equal(
            ds2_bundle.system.etc.values[:5, : len(MACHINE_NAMES)],
            HISTORICAL_ETC,
        )
        assert tuple(
            tt.name for tt in ds2_bundle.system.task_types[:5]
        ) == PROGRAM_NAMES

    def test_special_speedup_rule(self, ds2_bundle):
        sys_ = ds2_bundle.system
        general = slice(0, len(MACHINE_NAMES))
        for tt in sys_.task_types:
            if tt.is_special_purpose:
                col = tt.special_machine_type
                row_avg = sys_.etc.values[tt.index, general].mean()
                assert sys_.etc.values[tt.index, col] == pytest.approx(row_avg / 10.0)
                epc_avg = sys_.epc.values[tt.index, general].mean()
                assert sys_.epc.values[tt.index, col] == pytest.approx(epc_avg)


class TestDataset3:
    def test_paper_parameters(self):
        ds3 = dataset3(seed=123)
        assert ds3.num_tasks == 4000
        assert ds3.horizon_seconds == 3600.0
        assert ds3.system.num_machines == 30

    def test_shares_system_with_dataset2(self, ds2_bundle):
        ds3 = dataset3(seed=123)
        np.testing.assert_array_equal(
            ds3.system.etc.values, ds2_bundle.system.etc.values
        )
        np.testing.assert_array_equal(
            ds3.system.epc.values, ds2_bundle.system.epc.values
        )
