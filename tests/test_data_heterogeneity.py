"""Tests for the mvsk heterogeneity measures."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.heterogeneity import (
    HeterogeneityStats,
    compare_stats,
    machine_heterogeneity,
    mvsk,
    task_heterogeneity,
)
from repro.errors import DataGenerationError


class TestMvsk:
    def test_known_values(self):
        x = np.array([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        s = mvsk(x)
        assert s.mean == pytest.approx(5.0)
        assert s.variance == pytest.approx(4.0)
        assert s.std == pytest.approx(2.0)
        assert s.cov == pytest.approx(0.4)

    def test_normal_sample_near_reference(self):
        rng = np.random.default_rng(0)
        s = mvsk(rng.normal(10.0, 2.0, size=200_000))
        assert abs(s.skewness) < 0.05
        assert abs(s.kurtosis - 3.0) < 0.1

    def test_degenerate_sample(self):
        s = mvsk([5.0, 5.0, 5.0])
        assert s.variance == 0.0
        assert s.skewness == 0.0 and s.kurtosis == 3.0

    def test_single_point(self):
        s = mvsk([3.0])
        assert s.mean == 3.0 and s.variance == 0.0

    def test_empty_rejected(self):
        with pytest.raises(DataGenerationError):
            mvsk([])

    def test_nonfinite_rejected(self):
        with pytest.raises(DataGenerationError):
            mvsk([1.0, np.inf])

    def test_cov_requires_nonzero_mean(self):
        s = mvsk([-1.0, 1.0])
        with pytest.raises(DataGenerationError):
            _ = s.cov

    def test_excess_kurtosis(self):
        s = HeterogeneityStats(0.0, 1.0, 0.0, 4.5)
        assert s.excess_kurtosis == pytest.approx(1.5)


class TestRowColumnMeasures:
    def test_task_heterogeneity_is_row_average_stats(self):
        m = np.array([[10.0, 20.0], [30.0, 50.0]])
        s = task_heterogeneity(m)
        expected = mvsk([15.0, 40.0])
        assert s.mean == pytest.approx(expected.mean)
        assert s.variance == pytest.approx(expected.variance)

    def test_machine_heterogeneity_uses_ratios(self):
        m = np.array([[10.0, 20.0], [30.0, 50.0]])
        s = machine_heterogeneity(m, 0)
        expected = mvsk([10.0 / 15.0, 30.0 / 40.0])
        assert s.mean == pytest.approx(expected.mean)

    def test_infeasible_entries_skipped(self):
        m = np.array([[10.0, np.inf, 20.0], [30.0, 40.0, 50.0]])
        s = task_heterogeneity(m)
        expected = mvsk([15.0, 40.0])
        assert s.mean == pytest.approx(expected.mean)

    def test_all_infeasible_row_rejected(self):
        m = np.array([[np.inf, np.inf], [1.0, 2.0]])
        with pytest.raises(DataGenerationError):
            task_heterogeneity(m)


class TestCompareStats:
    def test_self_similar(self):
        s = mvsk(np.random.default_rng(1).gamma(2.0, 3.0, size=1000))
        assert compare_stats(s, s)

    def test_detects_mean_shift(self):
        a = HeterogeneityStats(10.0, 4.0, 0.0, 3.0)
        b = HeterogeneityStats(20.0, 4.0, 0.0, 3.0)
        assert not compare_stats(a, b)

    def test_detects_skew_shift(self):
        a = HeterogeneityStats(10.0, 4.0, 0.0, 3.0)
        b = HeterogeneityStats(10.0, 4.0, 2.5, 3.0)
        assert not compare_stats(a, b)


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(st.floats(0.1, 1e4), min_size=2, max_size=50),
    shift=st.floats(0.1, 100.0),
    scale=st.floats(0.1, 10.0),
)
def test_property_affine_transforms(data, shift, scale):
    """Skewness/kurtosis are scale-invariant; mean/variance transform
    affinely."""
    x = np.asarray(data)
    base = mvsk(x)
    moved = mvsk(x * scale + shift)
    assert moved.mean == pytest.approx(base.mean * scale + shift, rel=1e-6)
    assert moved.variance == pytest.approx(base.variance * scale**2, rel=1e-6)
    if base.variance > 1e-12 * max(1.0, base.mean**2):
        assert moved.skewness == pytest.approx(base.skewness, rel=1e-4, abs=1e-6)
        assert moved.kurtosis == pytest.approx(base.kurtosis, rel=1e-4, abs=1e-6)
