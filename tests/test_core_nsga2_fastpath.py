"""Fast-path NSGA-II: bit-identical fronts, shared ranks, order sampling.

``NSGA2Config(fast_path=True)`` swaps the O(N²) dominance-matrix
machinery for the O(N log N) sweep and reuses one ranks computation
per generation.  The whole point is that this is *only* a speedup:
every front, snapshot, and checkpoint must be bit-identical to the
reference path for the same seed, with the evaluation cache on or
off, through kill-and-resume, under both parent-selection modes.
"""

import numpy as np
import pytest

from repro.core.crowding import crowding_by_front
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.core.operators import FeasibleMachines, OperatorConfig
from repro.core.population import Population
from repro.core.sorting import fast_nondominated_sort
from repro.errors import OptimizationError
from repro.sim.evaluator import ScheduleEvaluator
from repro.testing.faults import FaultPlan, InjectedFault

GENS = 8
CPS = [2, 5, 8]
SEED = 17
POP = 16


def make_engine(
    system,
    trace,
    fast_path=True,
    cache_size=1000,
    parent_selection="uniform",
    seed=SEED,
    fault_hook=None,
    label="fastpath",
):
    evaluator = ScheduleEvaluator(
        system,
        trace,
        check_feasibility=False,
        cache_size=cache_size,
        kernel_method="fast",
        fault_hook=fault_hook,
    )
    config = NSGA2Config(
        population_size=POP,
        fast_path=fast_path,
        operators=OperatorConfig(parent_selection=parent_selection),
    )
    return NSGA2(evaluator, config, rng=seed, label=label)


def assert_identical_histories(a, b):
    assert a.total_generations == b.total_generations
    assert a.total_evaluations == b.total_evaluations
    assert len(a.snapshots) == len(b.snapshots)
    for sa, sb in zip(a.snapshots, b.snapshots):
        assert sa.generation == sb.generation
        assert sa.evaluations == sb.evaluations
        np.testing.assert_array_equal(sa.front_points, sb.front_points)


class TestBitIdenticalFronts:
    @pytest.mark.parametrize("parent_selection", ["uniform", "tournament"])
    def test_fast_vs_reference_path(self, small_system, small_trace,
                                    parent_selection):
        fast = make_engine(
            small_system, small_trace, fast_path=True,
            parent_selection=parent_selection,
        ).run(GENS, CPS)
        slow = make_engine(
            small_system, small_trace, fast_path=False,
            parent_selection=parent_selection,
        ).run(GENS, CPS)
        assert_identical_histories(fast, slow)

    @pytest.mark.parametrize("parent_selection", ["uniform", "tournament"])
    def test_cache_on_vs_off(self, small_system, small_trace, parent_selection):
        cached = make_engine(
            small_system, small_trace, cache_size=1000,
            parent_selection=parent_selection,
        ).run(GENS, CPS)
        uncached = make_engine(
            small_system, small_trace, cache_size=0,
            parent_selection=parent_selection,
        ).run(GENS, CPS)
        assert_identical_histories(cached, uncached)

    def test_populations_identical_every_generation(
        self, small_system, small_trace
    ):
        """Stronger than front equality: the full population (points and
        chromosomes) matches step by step."""
        fast = make_engine(small_system, small_trace, fast_path=True)
        slow = make_engine(small_system, small_trace, fast_path=False,
                           cache_size=0)
        for _ in range(GENS):
            fast.step()
            slow.step()
            np.testing.assert_array_equal(
                fast.population.objectives, slow.population.objectives
            )
            np.testing.assert_array_equal(
                fast.population.assignments, slow.population.assignments
            )
            np.testing.assert_array_equal(
                fast.population.orders, slow.population.orders
            )

    def test_kill_and_resume_with_fastpath_and_cache(
        self, small_system, small_trace, tmp_path
    ):
        """The scenario that once exposed batch-composition dependence:
        the resumed engine has a cold cache, so its miss sub-batches
        differ from the uninterrupted run's — results must not."""
        straight = make_engine(small_system, small_trace).run(GENS, CPS)
        plan = FaultPlan().crash("evaluate", at_call=6)
        with pytest.raises(InjectedFault):
            make_engine(
                small_system, small_trace, fault_hook=plan.evaluation_hook()
            ).run(GENS, CPS, checkpoint_dir=str(tmp_path))
        resumed = make_engine(small_system, small_trace).run(
            GENS, CPS, checkpoint_dir=str(tmp_path), resume=True
        )
        assert_identical_histories(straight, resumed)


class TestSharedRanks:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_cached_ranks_equal_fresh_sort(self, small_system, small_trace,
                                           seed):
        """The ranks carried over from environmental selection must equal
        a from-scratch front peeling of the surviving parents — the
        invariant that lets tournament selection skip a sort."""
        engine = make_engine(small_system, small_trace, seed=seed,
                             parent_selection="tournament")
        for _ in range(5):
            engine.step()
            assert engine._ranks is not None
            fresh = fast_nondominated_sort(engine.population.objectives)
            np.testing.assert_array_equal(engine._ranks, fresh)

    def test_ranks_cache_reset_forces_resort(self, small_system, small_trace):
        """Dropping the cache (as checkpoint restore does) must be safe:
        the next generation recomputes and stays on-track."""
        a = make_engine(small_system, small_trace,
                        parent_selection="tournament")
        b = make_engine(small_system, small_trace,
                        parent_selection="tournament")
        for _ in range(3):
            a.step()
            b.step()
        b._ranks = None  # simulate a restored engine
        a.step()
        b.step()
        np.testing.assert_array_equal(
            a.population.objectives, b.population.objectives
        )

    def test_crowding_by_front_matches_per_front(self, small_system,
                                                 small_trace):
        from repro.core.crowding import crowding_distance
        from repro.core.sorting import fronts_from_ranks

        engine = make_engine(small_system, small_trace)
        engine.step()
        pts = engine.population.objectives
        ranks = fast_nondominated_sort(pts)
        combined = crowding_by_front(pts, ranks)
        for front in fronts_from_ranks(ranks):
            expected = np.nan_to_num(
                crowding_distance(pts[front]), posinf=np.finfo(np.float64).max
            )
            per_front = np.nan_to_num(
                combined[front], posinf=np.finfo(np.float64).max
            )
            np.testing.assert_array_equal(per_front, expected)


class TestOrderSampling:
    def test_vectorized_orders_are_permutations(self, small_system,
                                                small_trace):
        feasible = FeasibleMachines.from_system_trace(small_system, small_trace)
        rng = np.random.default_rng(5)
        pop = Population.random(feasible, 12, rng, order_sampling="vectorized")
        T = small_trace.num_tasks
        for row in pop.orders:
            np.testing.assert_array_equal(np.sort(row), np.arange(T))

    def test_legacy_is_the_default_stream(self, small_system, small_trace):
        feasible = FeasibleMachines.from_system_trace(small_system, small_trace)
        default = Population.random(feasible, 6, np.random.default_rng(9))
        legacy = Population.random(
            feasible, 6, np.random.default_rng(9), order_sampling="legacy"
        )
        np.testing.assert_array_equal(default.orders, legacy.orders)
        np.testing.assert_array_equal(default.assignments, legacy.assignments)

    def test_engine_accepts_vectorized_sampling(self, small_system,
                                                small_trace):
        evaluator = ScheduleEvaluator(
            small_system, small_trace, check_feasibility=False
        )
        config = NSGA2Config(population_size=POP, order_sampling="vectorized")
        engine = NSGA2(evaluator, config, rng=SEED)
        engine.step()
        assert engine.generation == 1

    def test_invalid_sampling_rejected(self):
        with pytest.raises(OptimizationError):
            NSGA2Config(population_size=4, order_sampling="shuffled")


class TestStageTimings:
    def test_timings_populated_after_steps(self, small_system, small_trace):
        engine = make_engine(small_system, small_trace)
        assert engine.stage_timings.as_dict() == {}
        for _ in range(3):
            engine.step()
        timings = engine.stage_timings.as_dict()
        for stage in ("selection", "variation", "evaluate", "environmental"):
            assert timings[stage]["count"] == 3
            assert timings[stage]["total_s"] >= 0.0
            assert timings[stage]["mean_ms"] >= 0.0
        engine.stage_timings.reset()
        assert engine.stage_timings.as_dict() == {}
