"""The ``repro serve`` console entry point (repro.service.cli)."""

from __future__ import annotations

import json

import pytest

from repro.service.cli import main


@pytest.fixture(scope="module")
def serve_report(tmp_path_factory):
    """One short synthetic serve run, shared by the assertions below."""
    out = tmp_path_factory.mktemp("serve") / "report.json"
    rc = main([
        "serve", "--dataset", "1", "--window", "120", "--windows", "3",
        "--arrival-rate", "0.05", "--population", "12",
        "--generations", "3", "--seed", "5",
        "--output", str(out),
    ])
    assert rc == 0
    return json.loads(out.read_text())


def test_report_structure(serve_report):
    assert len(serve_report["windows"]) == 3
    assert serve_report["tasks_dispatched"] == sum(
        w["tasks"] for w in serve_report["windows"]
    )
    for key in (
        "total_energy", "total_utility", "tasks_per_second",
        "dispatch_latency_p50_s", "dispatch_latency_p99_s",
        "mean_flow_time_s", "archive_front", "config",
    ):
        assert key in serve_report, key


def test_report_reuse_and_warmth(serve_report):
    busy = [w for w in serve_report["windows"] if w["tasks"]]
    assert any(w["warm_seeds"] > 0 for w in busy[1:])
    assert any(w["reuse_rate"] > 0 for w in busy)


def test_config_echoed(serve_report):
    config = serve_report["config"]
    assert config["kernel_method"] == "batch"
    assert config["warm_start"] is True
    assert config["window"] == 120.0


def test_stdout_mode(capsys):
    rc = main([
        "serve", "--dataset", "1", "--window", "200", "--windows", "1",
        "--arrival-rate", "0.02", "--population", "12",
        "--generations", "2", "--seed", "9",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["windows"]) == 1


def test_trace_source(tmp_path):
    out = tmp_path / "trace-report.json"
    rc = main([
        "serve", "--dataset", "1", "--source", "trace",
        "--window", "300", "--windows", "2", "--population", "12",
        "--generations", "2", "--seed", "5", "--output", str(out),
    ])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["tasks_dispatched"] > 0
    assert payload["config"]["source"] == "trace"


def test_obs_dir_written(tmp_path):
    obs_dir = tmp_path / "obs"
    rc = main([
        "serve", "--dataset", "1", "--window", "200", "--windows", "2",
        "--arrival-rate", "0.03", "--population", "12",
        "--generations", "2", "--seed", "5",
        "--obs-dir", str(obs_dir), "--output", str(tmp_path / "r.json"),
    ])
    assert rc == 0
    metrics = json.loads((obs_dir / "metrics.json").read_text())
    assert "service_dispatch_seconds" in metrics
