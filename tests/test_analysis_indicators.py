"""Tests for multi-objective quality indicators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.indicators import (
    additive_epsilon,
    hypervolume,
    igd,
    spacing,
    spread,
)
from repro.errors import AnalysisError


FRONT = np.array([[1.0, 5.0], [2.0, 8.0], [3.0, 9.0]])


class TestHypervolume:
    def test_hand_computed(self):
        # Staircase widths (1,1,1) x heights (5,8,9) to ref (4, 0).
        assert hypervolume(FRONT, (4.0, 0.0)) == pytest.approx(22.0)

    def test_dominated_points_do_not_add(self):
        with_dominated = np.vstack([FRONT, [[2.5, 7.0]]])
        assert hypervolume(with_dominated, (4.0, 0.0)) == pytest.approx(22.0)

    def test_points_beyond_reference_ignored(self):
        beyond = np.vstack([FRONT, [[10.0, 20.0]]])
        assert hypervolume(beyond, (4.0, 0.0)) == pytest.approx(22.0)

    def test_empty_contribution(self):
        assert hypervolume(np.array([[5.0, 1.0]]), (4.0, 2.0)) == 0.0

    def test_monotone_in_front_quality(self):
        better = FRONT.copy()
        better[:, 1] += 1.0  # more utility everywhere
        assert hypervolume(better, (4.0, 0.0)) > hypervolume(FRONT, (4.0, 0.0))

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            hypervolume(np.empty((0, 2)), (1.0, 1.0))


class TestSpacing:
    def test_uniform_spacing_zero(self):
        pts = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        assert spacing(pts) == pytest.approx(0.0, abs=1e-12)

    def test_clustered_positive(self):
        pts = np.array([[0.0, 3.0], [0.1, 2.9], [2.0, 1.0], [3.0, 0.0]])
        assert spacing(pts) > 0.05

    def test_few_points_zero(self):
        assert spacing(np.array([[1.0, 2.0]])) == 0.0
        assert spacing(np.array([[1.0, 2.0], [3.0, 4.0]])) == 0.0


class TestSpread:
    def test_even_front_low_spread(self):
        even = np.column_stack([np.linspace(0, 10, 11), np.linspace(10, 0, 11)])
        uneven = np.array(
            [[0.0, 10.0], [0.5, 9.5], [0.6, 9.4], [9.0, 1.0], [10.0, 0.0]]
        )
        assert spread(even) < spread(uneven)

    def test_degenerate(self):
        assert spread(np.array([[1.0, 1.0], [2.0, 2.0]])) == 0.0


class TestEpsilon:
    def test_self_zero(self):
        assert additive_epsilon(FRONT, FRONT) == 0.0

    def test_dominating_front_nonpositive(self):
        better = FRONT + np.array([[-0.5, 0.5]])
        assert additive_epsilon(better, FRONT) <= 0.0

    def test_shortfall_measured(self):
        worse = FRONT + np.array([[1.0, 0.0]])  # 1 J more everywhere
        assert additive_epsilon(worse, FRONT) == pytest.approx(1.0)


class TestIGD:
    def test_self_zero(self):
        assert igd(FRONT, FRONT) == 0.0

    def test_distance_grows_with_gap(self):
        near = FRONT + np.array([[0.05, 0.0]])
        far = FRONT + np.array([[0.5, 0.0]])
        assert igd(near, FRONT) < igd(far, FRONT)

    def test_subset_approx(self):
        # Approximating with one middle point: distance to extremes.
        approx = FRONT[[1]]
        assert igd(approx, FRONT) > 0


@settings(max_examples=30, deadline=None)
@given(
    pts=st.lists(
        st.tuples(st.floats(0.1, 50.0), st.floats(0.1, 50.0)),
        min_size=1,
        max_size=25,
    )
)
def test_property_hypervolume_bounds(pts):
    """HV is between 0 and the full reference box."""
    arr = np.asarray(pts)
    ref = (arr[:, 0].max() + 1.0, 0.0)
    hv = hypervolume(arr, ref)
    box = ref[0] * (arr[:, 1].max() + 1.0)
    assert 0.0 <= hv <= box


@settings(max_examples=30, deadline=None)
@given(
    pts=st.lists(
        st.tuples(st.floats(0.1, 50.0), st.floats(0.1, 50.0)),
        min_size=1,
        max_size=20,
    ),
    extra=st.tuples(st.floats(0.1, 50.0), st.floats(0.1, 50.0)),
)
def test_property_hypervolume_monotone_under_union(pts, extra):
    """Adding a point never decreases hypervolume."""
    arr = np.asarray(pts)
    ref = (max(arr[:, 0].max(), extra[0]) + 1.0, 0.0)
    hv_before = hypervolume(arr, ref)
    hv_after = hypervolume(np.vstack([arr, [extra]]), ref)
    assert hv_after >= hv_before - 1e-9
