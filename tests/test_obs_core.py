"""Unit tests for the observability subsystem (``repro.obs``)."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    NULL_CONTEXT,
    EventLog,
    MetricsRegistry,
    RunContext,
    Tracer,
)
from repro.obs.context import OBS_FORMAT
from repro.obs.report import load_run_dir, stage_totals, trace_report
from repro.obs.schema import (
    check_run_dir,
    validate_events_file,
    validate_metrics_file,
    validate_run_dir,
    validate_trace_file,
)
from repro.obs.trace import render_flame


class FakeClock:
    """A manually advanced clock for deterministic span durations."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTracer:
    def test_block_spans_nest(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", label="x"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.25)
        # Children close (and are appended) before their parents.
        inner, outer = tracer.spans
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration_s == pytest.approx(0.25)
        assert outer.duration_s == pytest.approx(1.25)
        assert outer.attrs == {"label": "x"}
        assert outer.start_s == pytest.approx(0.0)

    def test_record_files_under_open_parent(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("run"):
            clock.advance(2.0)
            tracer.record("stage", 0.5, generation=3)
        stage = next(s for s in tracer.spans if s.name == "stage")
        run = next(s for s in tracer.spans if s.name == "run")
        assert stage.parent_id == run.span_id
        assert stage.duration_s == 0.5
        assert stage.start_s == pytest.approx(1.5)
        assert stage.attrs == {"generation": 3}

    def test_exception_marks_error_status(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.spans[0].status == "error"

    def test_totals_and_flame(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        for _ in range(3):
            with tracer.span("work"):
                clock.advance(1.0)
        assert tracer.totals_by_name() == {"work": (pytest.approx(3.0), 3)}
        flame = tracer.flame_summary(width=10)
        assert "work" in flame and "x3" in flame
        assert render_flame([]) == "(no spans recorded)"

    def test_jsonl_round_trip(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("a"):
            clock.advance(0.1)
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(path)
        docs = [json.loads(line) for line in path.read_text().splitlines()]
        assert docs[0]["name"] == "a" and docs[0]["status"] == "ok"
        assert validate_trace_file(path) == []


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_get_or_create_shares_and_rejects_type_drift(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert [b["count"] for b in snap["buckets"]] == [1, 2, 3]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(55.55)
        with pytest.raises(ObservabilityError):
            hist.observe(float("nan"))
        with pytest.raises(ObservabilityError):
            registry.histogram("bad", buckets=(1.0, 1.0))

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("evals_total", help="total evals").inc(7)
        registry.gauge("front_size").set(13)
        registry.histogram("dur_seconds", buckets=(0.5, 2.0)).observe(1.0)
        text = registry.to_prometheus_text()
        assert "# HELP evals_total total evals" in text
        assert "# TYPE evals_total counter" in text
        assert "evals_total 7" in text
        assert "front_size 13" in text
        assert 'dur_seconds_bucket{le="0.5"} 0' in text
        assert 'dur_seconds_bucket{le="2"} 1' in text
        assert 'dur_seconds_bucket{le="+Inf"} 1' in text
        assert "dur_seconds_sum 1" in text
        assert "dur_seconds_count 1" in text

    def test_as_dict_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zz")
        registry.counter("aa")
        assert list(registry.as_dict()) == ["aa", "zz"]


class TestPrometheusExport:
    """The text exposition format under labels, escaping, and validation."""

    def test_metric_name_validated(self):
        registry = MetricsRegistry()
        for bad in ("1starts_with_digit", "has-dash", "has space", ""):
            with pytest.raises(ObservabilityError):
                registry.counter(bad)
        # Colons are legal in metric names (recording rules use them).
        registry.counter("ns:sub:total").inc()
        assert "ns:sub:total 1" in registry.to_prometheus_text()

    def test_label_name_validated(self):
        registry = MetricsRegistry()
        for bad in ("has-dash", "1digit", "with:colon", ""):
            with pytest.raises(ObservabilityError):
                registry.counter("ok_total", labels={bad: "v"})

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter(
            "odd_total", labels={"path": 'a\\b"c\nd'}
        ).inc(2)
        text = registry.to_prometheus_text()
        assert 'odd_total{path="a\\\\b\\"c\\nd"} 2' in text
        # The raw characters never leak unescaped into the exposition.
        assert '\n"c' not in text

    def test_labeled_series_are_distinct_one_header(self):
        registry = MetricsRegistry()
        registry.counter("cells_total", help="cells",
                         labels={"worker": "1"}).inc(3)
        registry.counter("cells_total", labels={"worker": "2"}).inc(4)
        registry.counter("cells_total").inc(7)
        text = registry.to_prometheus_text()
        assert text.count("# TYPE cells_total counter") == 1
        assert text.count("# HELP cells_total cells") == 1
        assert "cells_total 7" in text
        assert 'cells_total{worker="1"} 3' in text
        assert 'cells_total{worker="2"} 4' in text

    def test_type_drift_rejected_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels={"worker": "1"})
        with pytest.raises(ObservabilityError):
            registry.gauge("x_total", labels={"worker": "2"})

    def test_label_order_canonicalized(self):
        registry = MetricsRegistry()
        a = registry.counter("y_total", labels={"b": "2", "a": "1"})
        b = registry.counter("y_total", labels={"a": "1", "b": "2"})
        assert a is b
        assert 'y_total{a="1",b="2"}' in registry.to_prometheus_text()

    def test_histogram_bucket_ordering_and_labels(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "lat_seconds", buckets=(0.1, 1.0, 10.0),
            labels={"worker": "9"},
        )
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        text = registry.to_prometheus_text()
        lines = [l for l in text.splitlines() if l.startswith("lat_seconds")]
        # Buckets in bound order, cumulative, le first then the series
        # labels, +Inf equal to the total count, then sum and count.
        assert lines == [
            'lat_seconds_bucket{le="0.1",worker="9"} 1',
            'lat_seconds_bucket{le="1",worker="9"} 2',
            'lat_seconds_bucket{le="10",worker="9"} 3',
            'lat_seconds_bucket{le="+Inf",worker="9"} 4',
            'lat_seconds_sum{worker="9"} 55.55',
            'lat_seconds_count{worker="9"} 4',
        ]

    def test_prefix_names_do_not_interleave(self):
        """A metric whose name prefixes another must keep its samples
        contiguous under its own headers ("foo" vs "foo_bar")."""
        registry = MetricsRegistry()
        registry.counter("foo", labels={"z": "1"}).inc()
        registry.counter("foo_bar").inc()
        registry.counter("foo").inc()
        text = registry.to_prometheus_text()
        foo_lines = [
            i for i, l in enumerate(text.splitlines())
            if l == "foo 1" or l.startswith("foo{")
        ]
        assert foo_lines == list(range(foo_lines[0], foo_lines[0] + 2))

    def test_snapshot_keys_match_prom_series(self):
        registry = MetricsRegistry()
        registry.gauge("g", labels={"k": "v"}).set(1)
        snapshot = registry.as_dict()
        assert 'g{k="v"}' in snapshot
        assert snapshot['g{k="v"}']["labels"] == {"k": "v"}


class TestEventLog:
    def test_threshold_filters_at_emit(self):
        log = EventLog(level="warning", clock=FakeClock())
        log.emit("kept", level="error")
        log.emit("dropped", level="info")
        assert [e["event"] for e in log.events] == ["kept"]

    def test_unknown_levels_rejected(self):
        with pytest.raises(ObservabilityError):
            EventLog(level="chatty")
        log = EventLog(clock=FakeClock())
        with pytest.raises(ObservabilityError):
            log.emit("x", level="chatty")

    def test_jsonl_schema_valid(self, tmp_path):
        clock = FakeClock()
        log = EventLog(clock=clock)
        log.emit("run.started", generations=5)
        clock.advance(1.0)
        log.emit("run.finished", level="info", wall_seconds=1.0)
        path = tmp_path / "events.jsonl"
        log.to_jsonl(path)
        assert validate_events_file(path) == []
        docs = [json.loads(line) for line in path.read_text().splitlines()]
        assert docs[1]["t_s"] > docs[0]["t_s"]
        assert docs[0]["fields"] == {"generations": 5}


class TestRunContext:
    def test_null_context_is_inert(self):
        assert not NULL_CONTEXT.enabled
        with NULL_CONTEXT.span("anything"):
            pass
        NULL_CONTEXT.record_span("x", 1.0)
        NULL_CONTEXT.event("x")
        assert NULL_CONTEXT.counter("x") is None
        assert NULL_CONTEXT.flush() is None
        assert len(NULL_CONTEXT.tracer) == 0
        assert NULL_CONTEXT.bind(extra=1) is NULL_CONTEXT
        assert RunContext.disabled() is NULL_CONTEXT

    def test_create_validates_level(self):
        with pytest.raises(ObservabilityError):
            RunContext.create(level="loud")

    def test_bind_shares_channels_merges_fields(self):
        obs = RunContext.create(dataset="ds1")
        bound = obs.bind(label="random")
        assert bound.tracer is obs.tracer
        assert bound.metrics is obs.metrics
        assert bound.events is obs.events
        bound.event("sampled", generation=2)
        assert obs.events.events[0]["fields"] == {
            "dataset": "ds1", "label": "random", "generation": 2,
        }

    def test_debug_property(self):
        assert RunContext.create(level="debug").debug
        assert not RunContext.create(level="info").debug
        assert not NULL_CONTEXT.debug

    def test_flush_writes_all_artifacts(self, tmp_path):
        obs = RunContext.create(
            obs_dir=tmp_path / "obs", run_id="run-test", dataset="ds1"
        )
        with obs.span("work"):
            pass
        obs.event("run.started")
        obs.counter("things_total").inc()
        out = obs.flush()
        assert out == tmp_path / "obs"
        for name in ("trace.jsonl", "events.jsonl", "metrics.json",
                     "metrics.prom", "meta.json"):
            assert (out / name).exists(), name
        meta = json.loads((out / "meta.json").read_text())
        assert meta["format"] == OBS_FORMAT
        assert meta["run_id"] == "run-test"
        check_run_dir(out)
        # Idempotent: a second flush overwrites with the fuller state.
        obs.counter("things_total").inc()
        obs.flush()
        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics["things_total"]["value"] == 2

    def test_in_memory_context_flushes_nowhere(self):
        obs = RunContext.create()
        with obs.span("work"):
            pass
        assert obs.flush() is None


class TestSchema:
    def _write_run_dir(self, tmp_path):
        obs = RunContext.create(obs_dir=tmp_path / "obs", run_id="r1")
        with obs.span("a"):
            obs.record_span("b", 0.1)
        obs.event("run.started")
        obs.counter("c_total").inc()
        obs.metrics.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        return obs.flush()

    def test_valid_dir_passes(self, tmp_path):
        out = self._write_run_dir(tmp_path)
        assert validate_run_dir(out) == []

    def test_missing_file_reported(self, tmp_path):
        out = self._write_run_dir(tmp_path)
        (out / "events.jsonl").unlink()
        problems = validate_run_dir(out)
        assert any("missing events.jsonl" in p for p in problems)
        with pytest.raises(ObservabilityError):
            check_run_dir(out)

    def test_corrupt_trace_line_reported(self, tmp_path):
        out = self._write_run_dir(tmp_path)
        with open(out / "trace.jsonl", "a") as fh:
            fh.write("{not json}\n")
        assert any("not valid JSON" in p for p in validate_trace_file(
            out / "trace.jsonl"))

    def test_dangling_parent_and_duplicate_id(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        doc = {"span_id": 1, "parent_id": 99, "name": "x", "start_s": 0.0,
               "duration_s": -1.0, "status": "weird", "attrs": {}}
        path.write_text(
            json.dumps(doc) + "\n" + json.dumps({**doc, "parent_id": None})
            + "\n"
        )
        problems = validate_trace_file(path)
        assert any("duplicate span_id" in p for p in problems)
        assert any("negative duration_s" in p for p in problems)
        assert any("status" in p for p in problems)
        assert any("does not reference" in p for p in problems)

    def test_non_monotone_events_reported(self, tmp_path):
        path = tmp_path / "events.jsonl"
        e = {"t_s": 5.0, "level": "info", "event": "a", "fields": {}}
        path.write_text(
            json.dumps(e) + "\n" + json.dumps({**e, "t_s": 1.0}) + "\n"
        )
        assert any(
            "went backwards" in p for p in validate_events_file(path)
        )

    def test_metrics_problems_reported(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({
            "neg": {"type": "counter", "value": -3},
            "odd": {"type": "thermometer"},
            "hist": {"type": "histogram", "count": 2,
                     "buckets": [{"le": 1.0, "count": 2},
                                 {"le": 2.0, "count": 1}]},
        }))
        problems = validate_metrics_file(path)
        assert any("negative" in p for p in problems)
        assert any("unknown type" in p for p in problems)
        assert any("not cumulative" in p for p in problems)


class TestReport:
    def test_report_renders_stage_breakdown(self, tmp_path):
        obs = RunContext.create(obs_dir=tmp_path / "obs", run_id="r2",
                                dataset="ds1")
        obs.record_span("ga.stage_total.evaluate", 3.0, count=10,
                        aggregate=True)
        obs.record_span("ga.stage_total.selection", 1.0, count=10,
                        aggregate=True)
        obs.event("run.started", generations=10)
        obs.event("retry.scheduled", level="warning", label="random")
        obs.metrics.counter("evaluator_cache_hits_total").inc(30)
        obs.metrics.counter("evaluator_cache_misses_total").inc(70)
        out = obs.flush()
        report = trace_report(out)
        assert "r2" in report
        assert "evaluate" in report and "75.0%" in report
        assert "30 hits / 70 misses (30.0% hit rate)" in report
        assert "retry.scheduled" in report

    def test_stage_totals_aggregation(self):
        spans = [
            {"name": "ga.stage_total.evaluate", "duration_s": 2.0,
             "attrs": {"count": 4}},
            {"name": "ga.stage_total.evaluate", "duration_s": 1.0,
             "attrs": {"count": 2}},
            {"name": "ga.generation", "duration_s": 9.0, "attrs": {}},
        ]
        assert stage_totals(spans) == {"evaluate": (3.0, 6)}

    def test_load_run_dir_errors(self, tmp_path):
        with pytest.raises(ObservabilityError):
            load_run_dir(tmp_path / "nope")
        (tmp_path / "empty").mkdir()
        with pytest.raises(ObservabilityError):
            load_run_dir(tmp_path / "empty")
