"""Tests for shared value types."""

import pytest

from repro.types import ObjectivePoint


class TestObjectivePoint:
    def test_units(self):
        p = ObjectivePoint(energy=2.5e6, utility=400.0)
        assert p.energy_megajoules == pytest.approx(2.5)
        assert p.utility_per_energy == pytest.approx(400.0 / 2.5e6)
        assert p.as_tuple() == (2.5e6, 400.0)

    def test_zero_energy_edge(self):
        assert ObjectivePoint(0.0, 5.0).utility_per_energy == float("inf")
        assert ObjectivePoint(0.0, 0.0).utility_per_energy == 0.0

    def test_hashable_value_semantics(self):
        a = ObjectivePoint(1.0, 2.0)
        b = ObjectivePoint(1.0, 2.0)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_immutable(self):
        p = ObjectivePoint(1.0, 2.0)
        with pytest.raises(AttributeError):
            p.energy = 5.0  # type: ignore[misc]
