"""Tests for the Gram-Charlier expansion PDF and sampler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.gram_charlier import GramCharlierPDF, hermite_he3, hermite_he4
from repro.data.heterogeneity import mvsk
from repro.errors import DataGenerationError


class TestHermite:
    def test_he3_roots(self):
        # He3(z) = z^3 - 3z has roots 0, ±sqrt(3).
        z = np.array([0.0, np.sqrt(3.0), -np.sqrt(3.0)])
        np.testing.assert_allclose(hermite_he3(z), 0.0, atol=1e-12)

    def test_he4_at_zero(self):
        assert hermite_he4(np.array([0.0]))[0] == 3.0


class TestNormalReduction:
    """With skew 0 and kurtosis 3 the expansion *is* the normal."""

    def test_density_matches_normal(self):
        pdf = GramCharlierPDF(mean=10.0, std=2.0)
        x = np.linspace(4.0, 16.0, 101)
        normal = np.exp(-0.5 * ((x - 10.0) / 2.0) ** 2) / (
            np.sqrt(2 * np.pi) * 2.0
        )
        np.testing.assert_allclose(pdf.density_raw(x), normal, rtol=1e-12)

    def test_numeric_moments_match(self):
        pdf = GramCharlierPDF(mean=10.0, std=2.0)
        m = pdf.numeric_moments()
        assert m.mean == pytest.approx(10.0, rel=1e-6)
        assert m.std == pytest.approx(2.0, rel=1e-3)
        assert abs(m.skewness) < 1e-6
        assert m.kurtosis == pytest.approx(3.0, abs=1e-2)


class TestMomentTargets:
    def test_moderate_skew_reproduced(self):
        pdf = GramCharlierPDF(mean=0.0, std=1.0, skewness=0.5, kurtosis=3.2)
        m = pdf.numeric_moments()
        assert m.mean == pytest.approx(0.0, abs=0.02)
        assert m.skewness == pytest.approx(0.5, abs=0.1)
        assert m.kurtosis == pytest.approx(3.2, abs=0.25)

    def test_extreme_parameters_clipped_not_crashing(self):
        pdf = GramCharlierPDF(mean=0.0, std=1.0, skewness=3.0, kurtosis=10.0)
        m = pdf.numeric_moments()
        # Clipping pulls extreme requests toward normality but keeps a
        # valid density.
        assert np.isfinite(m.skewness) and np.isfinite(m.kurtosis)
        x = np.linspace(-8, 8, 500)
        assert np.all(pdf.density(x) >= 0.0)


class TestSampler:
    def test_deterministic(self):
        pdf = GramCharlierPDF(mean=5.0, std=1.0, skewness=0.4)
        np.testing.assert_array_equal(pdf.sample(100, seed=3), pdf.sample(100, seed=3))

    def test_sample_moments_near_targets(self):
        pdf = GramCharlierPDF(mean=50.0, std=10.0, skewness=0.6, kurtosis=3.5)
        s = mvsk(pdf.sample(200_000, seed=1))
        assert s.mean == pytest.approx(50.0, rel=0.02)
        assert s.std == pytest.approx(10.0, rel=0.05)
        assert s.skewness == pytest.approx(0.6, abs=0.15)
        assert s.kurtosis == pytest.approx(3.5, abs=0.5)

    def test_support_floor_respected(self):
        pdf = GramCharlierPDF(mean=1.0, std=2.0, support_floor=0.1)
        samples = pdf.sample(10_000, seed=2)
        assert np.all(samples >= 0.1)

    def test_zero_samples(self):
        pdf = GramCharlierPDF(mean=0.0, std=1.0)
        assert pdf.sample(0, seed=1).shape == (0,)

    def test_negative_count_rejected(self):
        pdf = GramCharlierPDF(mean=0.0, std=1.0)
        with pytest.raises(DataGenerationError):
            pdf.sample(-1)


class TestCDFAndPPF:
    def test_cdf_monotone_0_to_1(self):
        pdf = GramCharlierPDF(mean=0.0, std=1.0, skewness=0.5)
        x = np.linspace(-9, 9, 200)
        c = pdf.cdf(x)
        assert np.all(np.diff(c) >= -1e-12)
        assert c[0] == pytest.approx(0.0, abs=1e-9)
        assert c[-1] == pytest.approx(1.0, abs=1e-9)

    def test_ppf_inverts_cdf(self):
        pdf = GramCharlierPDF(mean=3.0, std=1.5, skewness=0.3)
        q = np.array([0.1, 0.25, 0.5, 0.75, 0.9])
        x = pdf.ppf(q)
        np.testing.assert_allclose(pdf.cdf(x), q, atol=1e-3)

    def test_ppf_rejects_out_of_range(self):
        pdf = GramCharlierPDF(mean=0.0, std=1.0)
        with pytest.raises(DataGenerationError):
            pdf.ppf(np.array([1.5]))


class TestValidation:
    def test_bad_std(self):
        with pytest.raises(DataGenerationError):
            GramCharlierPDF(mean=0.0, std=0.0)

    def test_floor_above_grid(self):
        with pytest.raises(DataGenerationError):
            GramCharlierPDF(mean=0.0, std=1.0, support_floor=100.0)

    def test_from_stats_degenerate_variance(self):
        s = mvsk([5.0, 5.0])
        pdf = GramCharlierPDF.from_stats(s)
        samples = pdf.sample(100, seed=0)
        np.testing.assert_allclose(samples, 5.0, atol=0.1)


@settings(max_examples=25, deadline=None)
@given(
    mean=st.floats(1.0, 100.0),
    std=st.floats(0.1, 20.0),
    skew=st.floats(-0.8, 0.8),
    ex_kurt=st.floats(-0.5, 1.5),
)
def test_property_moments_roundtrip_moderate_regime(mean, std, skew, ex_kurt):
    """Within the expansion's validity region the clipped density
    reproduces the requested moments to loose tolerances."""
    pdf = GramCharlierPDF(mean=mean, std=std, skewness=skew,
                          kurtosis=3.0 + ex_kurt)
    m = pdf.numeric_moments()
    assert m.mean == pytest.approx(mean, rel=0.15, abs=0.3 * std)
    assert m.std == pytest.approx(std, rel=0.25)
    assert m.skewness == pytest.approx(skew, abs=0.45)
