"""Tests for objective-space conventions."""

import numpy as np
import pytest

from repro.core.objectives import (
    ENERGY_UTILITY,
    BiObjectiveSpace,
    ObjectiveSense,
)
from repro.errors import OptimizationError


class TestSenses:
    def test_signs(self):
        assert ObjectiveSense.MINIMIZE.sign == 1.0
        assert ObjectiveSense.MAXIMIZE.sign == -1.0

    def test_energy_utility_space(self):
        assert ENERGY_UTILITY.senses[0] is ObjectiveSense.MINIMIZE
        assert ENERGY_UTILITY.senses[1] is ObjectiveSense.MAXIMIZE


class TestTransforms:
    def test_to_minimization(self):
        pts = np.array([[10.0, 5.0], [20.0, 8.0]])
        out = ENERGY_UTILITY.to_minimization(pts)
        np.testing.assert_allclose(out, [[10.0, -5.0], [20.0, -8.0]])

    def test_shape_rejected(self):
        with pytest.raises(OptimizationError):
            ENERGY_UTILITY.to_minimization(np.array([1.0, 2.0, 3.0]))

    def test_better_or_equal(self):
        a = np.array([10.0, 5.0])
        b = np.array([12.0, 4.0])
        np.testing.assert_array_equal(
            ENERGY_UTILITY.better_or_equal(a, b), [True, True]
        )
        np.testing.assert_array_equal(
            ENERGY_UTILITY.strictly_better(a, b), [True, True]
        )
        np.testing.assert_array_equal(
            ENERGY_UTILITY.strictly_better(a, a), [False, False]
        )

    def test_ideal_and_nadir(self):
        pts = np.array([[10.0, 5.0], [20.0, 8.0], [15.0, 2.0]])
        np.testing.assert_allclose(ENERGY_UTILITY.ideal_point(pts), [10.0, 8.0])
        np.testing.assert_allclose(ENERGY_UTILITY.nadir_point(pts), [20.0, 2.0])
