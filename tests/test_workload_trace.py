"""Tests for the Trace container."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.trace import Trace


def make_trace() -> Trace:
    return Trace(
        task_types=np.array([0, 2, 1, 0]),
        arrival_times=np.array([0.0, 1.5, 3.0, 9.0]),
        window=10.0,
    )


class TestConstruction:
    def test_basic(self):
        t = make_trace()
        assert t.num_tasks == 4
        assert len(t) == 4

    def test_columns_immutable(self):
        t = make_trace()
        with pytest.raises(ValueError):
            t.task_types[0] = 5

    def test_unsorted_arrivals_rejected(self):
        with pytest.raises(WorkloadError):
            Trace(np.array([0, 1]), np.array([5.0, 1.0]), window=10.0)

    def test_arrival_outside_window_rejected(self):
        with pytest.raises(WorkloadError):
            Trace(np.array([0]), np.array([10.0]), window=10.0)
        with pytest.raises(WorkloadError):
            Trace(np.array([0]), np.array([-1.0]), window=10.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            Trace(np.array([0, 1]), np.array([0.0]), window=10.0)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            Trace(np.array([], dtype=np.int64), np.array([]), window=10.0)

    def test_negative_type_rejected(self):
        with pytest.raises(WorkloadError):
            Trace(np.array([-1]), np.array([0.0]), window=10.0)


class TestAccess:
    def test_task_view(self):
        t = make_trace()
        task = t.task(1)
        assert task.index == 1 and task.task_type == 2
        assert task.arrival_time == 1.5

    def test_task_out_of_range(self):
        with pytest.raises(WorkloadError):
            make_trace().task(4)

    def test_iteration(self):
        tasks = list(make_trace())
        assert [t.index for t in tasks] == [0, 1, 2, 3]

    def test_type_counts(self):
        t = make_trace()
        np.testing.assert_array_equal(t.type_counts(), [2, 1, 1])
        np.testing.assert_array_equal(t.type_counts(5), [2, 1, 1, 0, 0])

    def test_validate_against(self):
        t = make_trace()
        t.validate_against(3)  # fine
        with pytest.raises(WorkloadError):
            t.validate_against(2)


class TestSerialization:
    def test_dict_roundtrip(self):
        t = make_trace()
        restored = Trace.from_dict(t.to_dict())
        np.testing.assert_array_equal(restored.task_types, t.task_types)
        np.testing.assert_array_equal(restored.arrival_times, t.arrival_times)
        assert restored.window == t.window

    def test_file_roundtrip(self, tmp_path):
        t = make_trace()
        path = tmp_path / "trace.json"
        t.save(path)
        restored = Trace.load(path)
        np.testing.assert_array_equal(restored.task_types, t.task_types)

    def test_unknown_format_rejected(self):
        with pytest.raises(WorkloadError):
            Trace.from_dict({"format": "bogus"})
