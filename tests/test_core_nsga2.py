"""Tests for the NSGA-II engine (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.dominance import nondominated_mask
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.core.operators import OperatorConfig
from repro.errors import OptimizationError
from repro.heuristics import MinEnergy, MinMinCompletionTime


def make_engine(evaluator, seeds=(), rng=0, pop=20):
    return NSGA2(
        evaluator,
        NSGA2Config(population_size=pop,
                    operators=OperatorConfig(mutation_probability=0.5)),
        seeds=list(seeds),
        rng=rng,
    )


class TestConfig:
    def test_population_size_validation(self):
        with pytest.raises(OptimizationError):
            NSGA2Config(population_size=1)


class TestEngine:
    def test_population_size_constant(self, small_evaluator):
        ga = make_engine(small_evaluator)
        for _ in range(5):
            ga.step()
            assert ga.population.size == 20

    def test_elitism_front_never_regresses(self, small_evaluator):
        """The best front's hypervolume is non-decreasing because the
        meta-population always contains the previous parents."""
        from repro.analysis.indicators import hypervolume

        ga = make_engine(small_evaluator, rng=1)
        ref = (1e9, 0.0)
        last_hv = -1.0
        for _ in range(15):
            ga.step()
            pts, _ = ga.current_front()
            hv = hypervolume(pts, ref)
            assert hv >= last_hv - 1e-6
            last_hv = hv

    def test_min_energy_seed_survives(self, small_system, small_trace,
                                      small_evaluator):
        """The minimum-energy solution is nondominated by construction
        (nothing can use less energy), so elitism keeps its objective
        point forever."""
        seed = MinEnergy().build(small_system, small_trace)
        e0, _ = small_evaluator.objectives(seed)
        ga = make_engine(small_evaluator, seeds=[seed], rng=2)
        for _ in range(10):
            ga.step()
        assert float(ga.population.energies.min()) <= e0 + 1e-6

    def test_current_front_is_nondominated_and_sorted(self, small_evaluator):
        ga = make_engine(small_evaluator, rng=3)
        ga.step()
        pts, rows = ga.current_front()
        assert nondominated_mask(pts).all()
        assert np.all(np.diff(pts[:, 0]) >= 0)
        assert pts.shape[0] == rows.shape[0]

    def test_run_checkpoints(self, small_evaluator):
        ga = make_engine(small_evaluator, rng=4)
        hist = ga.run(10, checkpoints=[2, 5, 10])
        gens = [s.generation for s in hist.snapshots]
        assert gens == [2, 5, 10]
        assert hist.total_generations == 10
        assert hist.final.front_assignments is not None

    def test_run_validates_checkpoints(self, small_evaluator):
        ga = make_engine(small_evaluator, rng=5)
        with pytest.raises(OptimizationError):
            ga.run(5, checkpoints=[10])

    def test_snapshot_at(self, small_evaluator):
        ga = make_engine(small_evaluator, rng=6)
        hist = ga.run(4, checkpoints=[2, 4])
        assert hist.snapshot_at(2).generation == 2
        with pytest.raises(OptimizationError):
            hist.snapshot_at(3)

    def test_evaluation_count(self, small_evaluator):
        ga = make_engine(small_evaluator, rng=7, pop=10)
        hist = ga.run(3)
        # Initial 10 + 3 generations x 10 offspring.
        assert hist.total_evaluations == 10 + 30

    def test_progress_callback(self, small_evaluator):
        ga = make_engine(small_evaluator, rng=8)
        seen = []
        ga.run(3, progress=lambda gen, engine: seen.append(gen))
        assert seen == [1, 2, 3]

    def test_zero_generations(self, small_evaluator):
        ga = make_engine(small_evaluator, rng=9)
        hist = ga.run(0)
        assert hist.total_generations == 0
        assert len(hist.snapshots) == 1


class TestDeterminism:
    def test_same_seed_same_history(self, small_evaluator):
        h1 = make_engine(small_evaluator, rng=42).run(5, checkpoints=[5])
        h2 = make_engine(small_evaluator, rng=42).run(5, checkpoints=[5])
        np.testing.assert_array_equal(
            h1.final.front_points, h2.final.front_points
        )

    def test_different_seed_differs(self, small_evaluator):
        h1 = make_engine(small_evaluator, rng=1).run(5)
        h2 = make_engine(small_evaluator, rng=2).run(5)
        assert not np.array_equal(h1.final.front_points, h2.final.front_points)


class TestOptimizationQuality:
    def test_beats_random_baseline(self, small_system, small_trace,
                                   small_evaluator):
        """After a few dozen generations the GA front should dominate
        most of a fresh random population."""
        from repro.analysis.convergence import dominance_fraction
        from repro.core.operators import FeasibleMachines
        from repro.core.population import Population

        ga = make_engine(small_evaluator, rng=10, pop=30)
        hist = ga.run(40)
        feas = FeasibleMachines.from_system_trace(small_system, small_trace)
        fresh = Population.random(feas, 30, np.random.default_rng(99))
        fresh.evaluate(small_evaluator)
        frac = dominance_fraction(fresh.objectives, hist.final.front_points)
        assert frac > 0.8

    def test_seeded_reaches_seed_quality_immediately(
        self, small_system, small_trace, small_evaluator
    ):
        seed = MinMinCompletionTime().build(small_system, small_trace)
        _, u_seed = small_evaluator.objectives(seed)
        ga = make_engine(small_evaluator, seeds=[seed], rng=11)
        pts, _ = ga.current_front()
        assert float(pts[:, 1].max()) >= u_seed - 1e-9
