"""Tests for batched TUF evaluation (TUFTable)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UtilityFunctionError
from repro.utility.presets import default_catalog
from repro.utility.tuf import TimeUtilityFunction
from repro.utility.vectorized import TUFTable


def make_table():
    functions = [
        TimeUtilityFunction.linear(10.0, 0.01),
        TimeUtilityFunction.exponential(4.0, 0.05),
        TimeUtilityFunction.hard_deadline(8.0, 30.0),
        TimeUtilityFunction.figure1_example(),
    ]
    return functions, TUFTable.from_functions(functions)


class TestTable:
    def test_matches_scalar_evaluation(self):
        functions, table = make_table()
        rng = np.random.default_rng(0)
        types = rng.integers(0, len(functions), size=200)
        elapsed = rng.uniform(0.0, 200.0, size=200)
        batch = table.evaluate(types, elapsed)
        expected = np.array(
            [functions[tt](float(t)) for tt, t in zip(types, elapsed)]
        )
        np.testing.assert_allclose(batch, expected, rtol=1e-9, atol=1e-12)

    def test_negative_elapsed_clamped(self):
        functions, table = make_table()
        out = table.evaluate(np.array([0]), np.array([-10.0]))
        assert out[0] == pytest.approx(10.0)

    def test_shape_mismatch_rejected(self):
        _, table = make_table()
        with pytest.raises(UtilityFunctionError):
            table.evaluate(np.array([0, 1]), np.array([1.0]))

    def test_empty_functions_rejected(self):
        with pytest.raises(UtilityFunctionError):
            TUFTable.from_functions([])

    def test_upper_bound(self):
        _, table = make_table()
        types = np.array([0, 0, 1, 2, 3])
        assert table.utility_upper_bound(types) == pytest.approx(
            10.0 + 10.0 + 4.0 + 8.0 + 16.0
        )

    def test_num_types(self):
        _, table = make_table()
        assert table.num_types == 4

    def test_from_system_requires_tufs(self):
        from conftest import make_tiny_system

        bare = make_tiny_system(with_tufs=False)
        with pytest.raises(UtilityFunctionError):
            TUFTable.from_system(bare)
        table = TUFTable.from_system(make_tiny_system(with_tufs=True))
        assert table.num_types == 3


@settings(max_examples=30, deadline=None)
@given(
    elapsed=st.lists(st.floats(0.0, 5000.0), min_size=1, max_size=40),
    seed=st.integers(0, 1000),
)
def test_property_table_matches_scalars_on_catalog(elapsed, seed):
    """The padded table agrees with per-function scalar evaluation for
    arbitrary subsets of the full preset catalogue (mixed shapes and
    segment counts exercise the padding)."""
    cat = default_catalog(900.0)
    rng = np.random.default_rng(seed)
    functions = [cat[int(i)] for i in rng.integers(0, len(cat), size=5)]
    table = TUFTable.from_functions(functions)
    types = rng.integers(0, 5, size=len(elapsed))
    t = np.asarray(elapsed)
    batch = table.evaluate(types, t)
    expected = np.array([functions[tt](float(x)) for tt, x in zip(types, t)])
    np.testing.assert_allclose(batch, expected, rtol=1e-9, atol=1e-12)
