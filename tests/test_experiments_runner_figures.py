"""Tests for the seeded-population runner and figure drivers.

These run real (small) NSGA-II optimizations on data set 1 and assert
the paper's qualitative claims hold on the reproduced data.
"""

import numpy as np
import pytest

from repro.analysis.efficiency import max_utility_per_energy_region
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import PAPER_CHECKPOINTS, figure3, figure5
from repro.experiments.runner import POPULATION_LABELS, run_seeded_populations
from repro.experiments.tables import table1, table2, table3


CFG = ExperimentConfig(
    population_size=24,
    generations=30,
    checkpoints=(5, 30),
    base_seed=99,
)


@pytest.fixture(scope="module")
def ds1_result():
    from repro.experiments.datasets import dataset1

    return run_seeded_populations(dataset1(seed=99), CFG)


class TestRunner:
    def test_all_populations_present(self, ds1_result):
        assert set(ds1_result.histories) == set(POPULATION_LABELS)

    def test_seed_objectives_recorded(self, ds1_result):
        assert set(ds1_result.seed_objectives) == {
            "min-energy",
            "max-utility",
            "max-utility-per-energy",
            "min-min-completion-time",
        }

    def test_min_energy_population_holds_min_energy(self, ds1_result):
        """The min-energy seed's energy is globally minimal, so its
        population's front must retain it at every checkpoint."""
        e_seed = ds1_result.seed_objectives["min-energy"][0]
        for gen in CFG.checkpoints:
            front = ds1_result.front("min-energy", gen)
            assert front.energy_range[0] == pytest.approx(e_seed)

    def test_seeded_fronts_distinct_early(self, ds1_result):
        """Figure 3, early subplot: seeded populations occupy different
        regions — min-energy's front reaches lower energy than
        min-min's at the early checkpoint."""
        early = CFG.checkpoints[0]
        e_front = ds1_result.front("min-energy", early)
        m_front = ds1_result.front("min-min-completion-time", early)
        assert e_front.energy_range[0] < m_front.energy_range[0]
        assert m_front.utility_range[1] > e_front.utility_range[1]

    def test_min_min_best_utility_early(self, ds1_result):
        """Fig. 4 narrative: the min-min population finds the
        best-utility solutions early on."""
        early = CFG.checkpoints[0]
        u_minmin = ds1_result.front("min-min-completion-time", early).utility_range[1]
        u_random = ds1_result.front("random", early).utility_range[1]
        assert u_minmin > u_random

    def test_random_dominated_by_seeded(self, ds1_result):
        """Fig. 6 narrative: seeded populations find solutions that
        dominate those of the all-random population."""
        rand = ds1_result.front("random")
        combined_seeded = ds1_result.front("min-energy").merge(
            ds1_result.front("min-min-completion-time")
        )
        frac = rand.fraction_dominated_by(combined_seeded)
        assert frac > 0.5

    def test_combined_front(self, ds1_result):
        combined = ds1_result.combined_front()
        for label in POPULATION_LABELS:
            assert combined.fraction_dominated_by(ds1_result.front(label)) == 0.0

    def test_unknown_label_rejected(self, ds1_result):
        with pytest.raises(ExperimentError):
            ds1_result.front("bogus")

    def test_all_seeds_label(self):
        from repro.experiments.datasets import dataset1

        cfg = ExperimentConfig(
            population_size=16, generations=3, checkpoints=(3,), base_seed=7
        )
        result = run_seeded_populations(
            dataset1(seed=7), cfg, labels=["all-seeds", "random"]
        )
        assert set(result.histories) == {"all-seeds", "random"}


class TestFigureDrivers:
    def test_figure3_structure(self):
        fig = figure3(
            checkpoints=[2, 6],
            population_size=16,
            base_seed=5,
        )
        assert fig.name == "figure3"
        assert fig.checkpoints == (2, 6)
        assert fig.paper_checkpoints == PAPER_CHECKPOINTS["figure3"]
        subplot = fig.subplot(0)
        assert set(subplot) == set(POPULATION_LABELS)
        with pytest.raises(ExperimentError):
            fig.subplot(2)

    def test_figure3_render(self):
        fig = figure3(checkpoints=[2], population_size=16, base_seed=5)
        text = fig.render(plot=True)
        assert "figure3" in text
        assert "min-energy" in text
        assert "subplot 1" in text

    def test_figure5_analysis(self):
        fig4_like = figure3(checkpoints=[4], population_size=16, base_seed=5)
        fig5 = figure5(figure4_result=fig4_like)
        assert fig5.front.label == "max-utility-per-energy"
        region = fig5.region
        assert region.peak_ratio > 0
        assert fig5.curve_vs_utility.shape == (fig5.front.size, 2)
        assert fig5.curve_vs_energy.shape == (fig5.front.size, 2)
        np.testing.assert_allclose(
            fig5.curve_vs_utility[:, 1], fig5.curve_vs_energy[:, 1]
        )
        assert "max utility-per-energy" in fig5.render()

    def test_efficiency_regions_per_population(self):
        fig = figure3(checkpoints=[3], population_size=16, base_seed=5)
        regions = fig.efficiency_regions()
        assert set(regions) == set(POPULATION_LABELS)
        for region in regions.values():
            assert region.region_size >= 1


class TestTables:
    def test_table1_is_9_machines(self):
        assert len(table1()) == 9
        assert "AMD A8-3870K" in table1()

    def test_table2_is_5_programs(self):
        assert len(table2()) == 5
        assert "C-Ray" in table2()

    def test_table3_machine_total(self):
        assert sum(count for _, count in table3()) == 30
