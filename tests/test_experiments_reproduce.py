"""Tests for the one-shot reproduction driver."""

import json

import pytest

from repro.experiments.reproduce import reproduce_all


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    out = tmp_path_factory.mktemp("reproduction")
    messages = []
    reproduce_all(
        out,
        scale=0.00002,  # single-digit generations: structure test only
        base_seed=5,
        population_size=12,
        progress=messages.append,
    )
    return out, messages


class TestReproduceAll:
    def test_all_artifacts_written(self, artifacts):
        out, _ = artifacts
        expected = {
            "MANIFEST.txt",
            "tables.txt",
            "figure1.txt",
            "figure2.txt",
            "figure5.txt",
        }
        names = {p.name for p in out.iterdir()}
        assert expected <= names
        for fig in ("figure3", "figure4", "figure6"):
            assert f"{fig}.json" in names
            assert f"{fig}.csv" in names
            assert f"{fig}.txt" in names
            assert any(n.startswith(f"{fig}_subplot") for n in names)

    def test_manifest_mentions_scale_and_seed(self, artifacts):
        out, _ = artifacts
        manifest = (out / "MANIFEST.txt").read_text()
        assert "scale: 2e-05" in manifest
        assert "base seed: 5" in manifest
        assert "total wall time" in manifest

    def test_progress_reported(self, artifacts):
        _, messages = artifacts
        assert any("figure3" in m for m in messages)
        assert any(m.startswith("done") for m in messages)

    def test_figure_json_loadable(self, artifacts):
        out, _ = artifacts
        from repro.experiments.io import load_figure_result

        result = load_figure_result(out / "figure3.json")
        assert result.name == "figure3"
        assert set(result.result.histories) == {
            "min-energy",
            "min-min-completion-time",
            "max-utility",
            "max-utility-per-energy",
            "random",
        }

    def test_tables_content(self, artifacts):
        out, _ = artifacts
        text = (out / "tables.txt").read_text()
        assert "Table I" in text and "Table III" in text
        assert "AMD A8-3870K" in text

    def test_figure1_spot_checks_in_text(self, artifacts):
        out, _ = artifacts
        text = (out / "figure1.txt").read_text()
        assert "U(20)=12" in text and "U(47)=7" in text

    def test_silent_mode(self, tmp_path):
        reproduce_all(
            tmp_path / "quiet",
            scale=0.00002,
            base_seed=6,
            population_size=12,
            progress=None,
        )
        assert (tmp_path / "quiet" / "MANIFEST.txt").exists()


class TestClaimsAudit:
    def test_claims_files_written(self, artifacts):
        out, _ = artifacts
        for fig in ("figure3", "figure4", "figure6"):
            text = (out / f"{fig}_claims.txt").read_text()
            assert "min-energy-owns-low-end" in text
            assert "PASS" in text

    def test_manifest_records_claim_counts(self, artifacts):
        out, _ = artifacts
        manifest = (out / "MANIFEST.txt").read_text()
        assert "claims" in manifest and "PASS" in manifest
