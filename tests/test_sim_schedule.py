"""Tests for the ResourceAllocation representation."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.sim.schedule import ResourceAllocation


def make_alloc() -> ResourceAllocation:
    return ResourceAllocation(
        machine_assignment=np.array([0, 1, 0, 2]),
        scheduling_order=np.array([3, 0, 1, 2]),
    )


class TestConstruction:
    def test_basic(self):
        a = make_alloc()
        assert a.num_tasks == 4

    def test_immutable(self):
        a = make_alloc()
        with pytest.raises(ValueError):
            a.machine_assignment[0] = 9

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ScheduleError):
            ResourceAllocation(np.array([0, 1]), np.array([0]))

    def test_negative_machine_rejected(self):
        with pytest.raises(ScheduleError):
            ResourceAllocation(np.array([-1]), np.array([0]))

    def test_empty_rejected(self):
        with pytest.raises(ScheduleError):
            ResourceAllocation(np.array([], dtype=int), np.array([], dtype=int))


class TestValidation:
    def test_machine_range(self):
        a = make_alloc()
        a.validate_against(3)
        with pytest.raises(ScheduleError):
            a.validate_against(2)

    def test_feasibility_check(self):
        a = ResourceAllocation(np.array([1]), np.array([0]))
        feasible = np.array([[True, False]])
        with pytest.raises(ScheduleError):
            a.validate_against(2, feasible, np.array([0]))
        ok = ResourceAllocation(np.array([0]), np.array([0]))
        ok.validate_against(2, feasible, np.array([0]))

    def test_feasibility_requires_task_types(self):
        a = make_alloc()
        with pytest.raises(ScheduleError):
            a.validate_against(3, np.ones((1, 3), dtype=bool), None)


class TestOrderSemantics:
    def test_is_order_permutation(self):
        assert make_alloc().is_order_permutation()
        dup = ResourceAllocation(np.array([0, 0]), np.array([1, 1]))
        assert not dup.is_order_permutation()

    def test_normalized_order_stable(self):
        dup = ResourceAllocation(np.array([0, 0, 0]), np.array([5, 5, 2]))
        norm = dup.normalized_order()
        # Key 2 -> rank 0; ties on 5 break by task index.
        np.testing.assert_array_equal(norm.scheduling_order, [1, 2, 0])
        assert norm.is_order_permutation()

    def test_machine_queue_order(self):
        a = make_alloc()
        # Machine 0 runs tasks 0 (key 3) and 2 (key 1) -> queue [2, 0].
        np.testing.assert_array_equal(a.machine_queue(0), [2, 0])
        np.testing.assert_array_equal(a.machine_queue(1), [1])
        assert a.machine_queue(5).shape == (0,)

    def test_machine_queue_tie_break_by_index(self):
        a = ResourceAllocation(np.array([0, 0, 0]), np.array([1, 1, 0]))
        np.testing.assert_array_equal(a.machine_queue(0), [2, 0, 1])
