"""Property tests: the vectorized evaluator equals the reference simulator.

This is the central correctness property of the simulator layer — the
closed-form segmented-scan evaluation must agree with the obviously
correct sequential simulation on arbitrary feasible inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model.system import SystemModel
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.events import simulate_reference
from repro.sim.schedule import ResourceAllocation
from repro.utility.presets import assign_presets
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import Trace

from conftest import make_tiny_system, random_allocation


def random_scenario(seed: int, num_tasks: int, num_types: int, num_machines: int):
    """A seeded random (system, trace) pair."""
    rng = np.random.default_rng(seed)
    etc = rng.uniform(1.0, 100.0, size=(num_types, num_machines))
    epc = rng.uniform(10.0, 300.0, size=(num_types, num_machines))
    system = SystemModel.from_matrices(etc, epc)
    system = system.with_utility_functions(
        assign_presets(num_types, 300.0, seed=seed + 1)
    )
    trace = WorkloadGenerator.uniform_for(num_types).generate(
        num_tasks, 300.0, seed=seed + 2
    )
    return system, trace


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_tasks=st.integers(1, 60),
    num_types=st.integers(1, 6),
    num_machines=st.integers(1, 8),
)
def test_property_fast_equals_reference(seed, num_tasks, num_types, num_machines):
    system, trace = random_scenario(seed, num_tasks, num_types, num_machines)
    alloc = random_allocation(system, trace, seed=seed + 3)
    fast = ScheduleEvaluator(system, trace).evaluate(alloc)
    ref = simulate_reference(system, trace, alloc)
    np.testing.assert_allclose(fast.completion_times, ref.completion_times,
                               rtol=1e-12, atol=1e-9)
    np.testing.assert_allclose(fast.start_times, ref.start_times,
                               rtol=1e-12, atol=1e-9)
    assert fast.energy == pytest.approx(ref.energy, rel=1e-12)
    assert fast.utility == pytest.approx(ref.utility, rel=1e-9, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_duplicate_keys_agree(seed):
    """Equivalence holds with non-permutation order keys too."""
    system, trace = random_scenario(seed, 40, 4, 5)
    rng = np.random.default_rng(seed)
    alloc = ResourceAllocation(
        machine_assignment=rng.integers(0, 5, size=40),
        scheduling_order=rng.integers(0, 10, size=40),  # many duplicates
    )
    fast = ScheduleEvaluator(system, trace).evaluate(alloc)
    ref = simulate_reference(system, trace, alloc)
    np.testing.assert_allclose(fast.completion_times, ref.completion_times,
                               rtol=1e-12, atol=1e-9)


class TestGantt:
    def test_gantt_consistency(self, tiny_system, tiny_trace):
        alloc = random_allocation(tiny_system, tiny_trace, seed=0)
        ref = simulate_reference(tiny_system, tiny_trace, alloc)
        assert len(ref.gantt) == tiny_trace.num_tasks
        for entry in ref.gantt:
            assert entry.finish > entry.start
            assert entry.idle_before >= 0
            assert entry.start >= tiny_trace.arrival_times[entry.task]
        # Entries sorted by start time.
        starts = [e.start for e in ref.gantt]
        assert starts == sorted(starts)

    def test_no_machine_overlap(self, small_system, small_trace):
        alloc = random_allocation(small_system, small_trace, seed=9)
        ref = simulate_reference(small_system, small_trace, alloc)
        by_machine: dict[int, list] = {}
        for e in ref.gantt:
            by_machine.setdefault(e.machine, []).append(e)
        for entries in by_machine.values():
            entries.sort(key=lambda e: e.start)
            for a, b in zip(entries, entries[1:]):
                assert b.start >= a.finish - 1e-9


class TestInvariants:
    def test_start_after_arrival(self, small_system, small_trace, small_evaluator):
        for seed in range(5):
            alloc = random_allocation(small_system, small_trace, seed=seed)
            res = small_evaluator.evaluate(alloc)
            assert np.all(res.start_times >= small_trace.arrival_times - 1e-9)

    def test_energy_independent_of_order(self, small_system, small_trace,
                                         small_evaluator):
        """Energy (Eq. 3) depends only on the mapping, not the order."""
        alloc = random_allocation(small_system, small_trace, seed=1)
        rng = np.random.default_rng(2)
        reordered = ResourceAllocation(
            machine_assignment=alloc.machine_assignment,
            scheduling_order=rng.permutation(small_trace.num_tasks),
        )
        a = small_evaluator.evaluate(alloc)
        b = small_evaluator.evaluate(reordered)
        assert a.energy == pytest.approx(b.energy)

    def test_utility_nonnegative_and_bounded(self, small_system, small_trace,
                                             small_evaluator):
        bound = small_evaluator.tuf_table.utility_upper_bound(small_trace.task_types)
        for seed in range(5):
            alloc = random_allocation(small_system, small_trace, seed=seed)
            res = small_evaluator.evaluate(alloc)
            assert 0.0 <= res.utility <= bound + 1e-9
