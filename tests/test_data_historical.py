"""Tests for the historical (Table I/II) data set."""

import numpy as np
import pytest

from repro.data.historical import (
    HISTORICAL_EPC,
    HISTORICAL_ETC,
    MACHINE_NAMES,
    PROGRAM_NAMES,
    historical_epc,
    historical_etc,
    historical_system,
    load_matrices_csv,
    save_matrices_csv,
)
from repro.errors import DataGenerationError


class TestShapes:
    def test_table_sizes(self):
        assert len(MACHINE_NAMES) == 9  # Table I
        assert len(PROGRAM_NAMES) == 5  # Table II
        assert HISTORICAL_ETC.shape == (5, 9)
        assert HISTORICAL_EPC.shape == (5, 9)

    def test_all_feasible_positive(self):
        assert np.all(HISTORICAL_ETC > 0)
        assert np.all(HISTORICAL_EPC > 0)
        assert historical_etc().feasible.all()
        assert historical_epc().feasible.all()


class TestHeterogeneityStructure:
    """Orderings the paper's analysis depends on."""

    def test_overclocked_parts_faster_than_stock(self):
        names = list(MACHINE_NAMES)
        i3960 = names.index("Intel Core i7 3960X")
        i3960oc = names.index("Intel Core i7 3960X @ 4.2 GHz")
        i3770 = names.index("Intel Core i7 3770K")
        i3770oc = names.index("Intel Core i7 3770K @ 4.3 GHz")
        assert np.all(HISTORICAL_ETC[:, i3960oc] <= HISTORICAL_ETC[:, i3960])
        assert np.all(HISTORICAL_ETC[:, i3770oc] <= HISTORICAL_ETC[:, i3770])

    def test_overclocked_parts_draw_more_power(self):
        names = list(MACHINE_NAMES)
        for stock, oc in [
            ("Intel Core i7 3960X", "Intel Core i7 3960X @ 4.2 GHz"),
            ("Intel Core i7 3770K", "Intel Core i7 3770K @ 4.3 GHz"),
        ]:
            assert np.all(
                HISTORICAL_EPC[:, names.index(oc)]
                > HISTORICAL_EPC[:, names.index(stock)]
            )

    def test_machine_performance_is_inconsistent_across_tasks(self):
        """Heterogeneous systems: no single machine ranking fits all
        tasks (GPU-bound tasks compress the spread)."""
        rank_per_task = np.argsort(np.argsort(HISTORICAL_ETC, axis=1), axis=1)
        assert not np.all(rank_per_task == rank_per_task[0])

    def test_compute_tasks_separate_machines_more_than_gpu_tasks(self):
        cov = HISTORICAL_ETC.std(axis=1) / HISTORICAL_ETC.mean(axis=1)
        names = list(PROGRAM_NAMES)
        assert cov[names.index("C-Ray")] > cov[names.index("Unigine Heaven")]
        assert (
            cov[names.index("Timed Linux Kernel Compilation")]
            > cov[names.index("Warsow")]
        )


class TestSystem:
    def test_one_machine_per_type(self):
        sys_ = historical_system()
        assert sys_.num_machines == 9
        assert sys_.num_machine_types == 9
        assert sys_.num_task_types == 5

    def test_no_tufs_attached(self):
        sys_ = historical_system()
        assert all(tt.utility_function is None for tt in sys_.task_types)


class TestCSV:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "data.csv"
        save_matrices_csv(HISTORICAL_ETC, HISTORICAL_EPC, path)
        etc, epc, machines, programs = load_matrices_csv(path)
        np.testing.assert_allclose(etc, HISTORICAL_ETC)
        np.testing.assert_allclose(epc, HISTORICAL_EPC)
        assert machines == MACHINE_NAMES
        assert programs == PROGRAM_NAMES

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n")
        with pytest.raises(DataGenerationError):
            load_matrices_csv(path)

    def test_shape_mismatch_rejected(self, tmp_path):
        with pytest.raises(DataGenerationError):
            save_matrices_csv(
                HISTORICAL_ETC[:, :3], HISTORICAL_EPC, tmp_path / "x.csv"
            )

    def test_duplicate_row_rejected(self, tmp_path):
        path = tmp_path / "dup.csv"
        save_matrices_csv(HISTORICAL_ETC, HISTORICAL_EPC, path)
        lines = path.read_text().splitlines()
        lines.append(lines[1])  # duplicate first ETC row
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DataGenerationError):
            load_matrices_csv(path)
