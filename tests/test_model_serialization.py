"""Round-trip tests for system serialization."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.serialization import (
    load_system,
    save_system,
    system_from_dict,
    system_to_dict,
)

from conftest import make_tiny_system
from test_model_system import make_special_system


def assert_systems_equal(a, b):
    assert a.num_machines == b.num_machines
    assert a.num_machine_types == b.num_machine_types
    assert a.num_task_types == b.num_task_types
    np.testing.assert_allclose(
        np.where(a.etc.feasible, a.etc.values, -1),
        np.where(b.etc.feasible, b.etc.values, -1),
    )
    np.testing.assert_allclose(
        np.where(a.epc.feasible, a.epc.values, -1),
        np.where(b.epc.feasible, b.epc.values, -1),
    )
    np.testing.assert_array_equal(a.etc.feasible, b.etc.feasible)
    for mt_a, mt_b in zip(a.machine_types, b.machine_types):
        assert mt_a.name == mt_b.name
        assert mt_a.category == mt_b.category
        assert mt_a.supported_task_types == mt_b.supported_task_types
    for tt_a, tt_b in zip(a.task_types, b.task_types):
        assert tt_a.name == tt_b.name
        assert tt_a.category == tt_b.category
        assert tt_a.special_machine_type == tt_b.special_machine_type


class TestRoundTrip:
    def test_dict_roundtrip_tiny(self):
        sys_ = make_tiny_system()
        restored = system_from_dict(system_to_dict(sys_))
        assert_systems_equal(sys_, restored)

    def test_dict_roundtrip_special(self):
        sys_ = make_special_system()
        restored = system_from_dict(system_to_dict(sys_))
        assert_systems_equal(sys_, restored)

    def test_tuf_roundtrip_preserves_evaluation(self):
        sys_ = make_tiny_system(with_tufs=True)
        restored = system_from_dict(system_to_dict(sys_))
        times = np.array([0.0, 10.0, 50.0, 500.0])
        for tt_a, tt_b in zip(sys_.task_types, restored.task_types):
            np.testing.assert_allclose(
                tt_a.utility_function(times), tt_b.utility_function(times)
            )

    def test_file_roundtrip(self, tmp_path):
        sys_ = make_special_system()
        path = tmp_path / "system.json"
        save_system(sys_, path)
        assert_systems_equal(sys_, load_system(path))

    def test_unknown_format_rejected(self):
        with pytest.raises(ModelError):
            system_from_dict({"format": "bogus"})
