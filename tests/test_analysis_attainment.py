"""Tests for empirical attainment surfaces and repetition experiments."""

import numpy as np
import pytest

from repro.analysis.attainment import attainment_summary, attainment_surface
from repro.analysis.pareto_front import ParetoFront
from repro.errors import AnalysisError, ExperimentError


RUN_A = np.array([[1.0, 5.0], [2.0, 8.0]])
RUN_B = np.array([[1.5, 6.0], [2.5, 9.0]])
RUN_C = np.array([[1.2, 4.0], [3.0, 10.0]])


class TestSurface:
    def test_best_is_union_front(self):
        best = attainment_surface([RUN_A, RUN_B, RUN_C], k=1)
        union = ParetoFront.from_points(np.vstack([RUN_A, RUN_B, RUN_C]))
        np.testing.assert_allclose(best.points, union.points)

    def test_worst_attained_by_all(self):
        worst = attainment_surface([RUN_A, RUN_B, RUN_C], k=3)
        # Every worst-surface point is weakly attained by every run:
        # some run point has energy <= e and utility >= u.
        for e, u in worst.points:
            for run in (RUN_A, RUN_B, RUN_C):
                attains = np.any((run[:, 0] <= e + 1e-12) & (run[:, 1] >= u - 1e-12))
                assert attains

    def test_hand_computed_two_runs(self):
        # Levels: union of utilities {5, 6, 8, 9}.
        # k=2 surface: for u=5: energies {1.0 (A), 1.5 (B)} -> 2nd = 1.5.
        # u=6: {2.0 (A: needs util>=6 -> (2,8)), 1.5} -> 2.0.
        # u=8: {2.0, 2.5} -> 2.5. u=9: {inf, 2.5} -> inf (dropped).
        surface = attainment_surface([RUN_A, RUN_B], k=2)
        np.testing.assert_allclose(
            surface.points, [[1.5, 5.0], [2.0, 6.0], [2.5, 8.0]]
        )

    def test_single_run_any_k1(self):
        surface = attainment_surface([RUN_A], k=1)
        np.testing.assert_allclose(surface.points, RUN_A)

    def test_surfaces_nested(self):
        """Higher k surfaces never dominate lower k surfaces."""
        runs = [RUN_A, RUN_B, RUN_C]
        s1 = attainment_surface(runs, 1)
        s2 = attainment_surface(runs, 2)
        s3 = attainment_surface(runs, 3)
        assert s1.fraction_dominated_by(s2) == 0.0
        assert s1.fraction_dominated_by(s3) == 0.0
        assert s2.fraction_dominated_by(s3) == 0.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            attainment_surface([], k=1)
        with pytest.raises(AnalysisError):
            attainment_surface([RUN_A], k=2)
        with pytest.raises(AnalysisError):
            attainment_surface([RUN_A], k=0)
        with pytest.raises(AnalysisError):
            attainment_surface([np.empty((0, 2))], k=1)

    def test_summary_keys(self):
        summary = attainment_summary([RUN_A, RUN_B, RUN_C])
        assert set(summary) == {"best", "median", "worst"}
        assert summary["best"].label == "best"


class TestRepetitions:
    def test_runs_and_aggregates(self, small_system, small_trace):
        from repro.experiments.datasets import DatasetBundle
        from repro.experiments.repetitions import run_repetitions

        bundle = DatasetBundle(
            name="small", system=small_system, trace=small_trace,
            horizon_seconds=600.0, seed=0,
        )
        result = run_repetitions(
            bundle, repetitions=3, generations=8, population_size=12,
            base_seed=5,
        )
        assert result.repetitions == 3
        assert result.label == "random"
        assert set(result.attainment) == {"best", "median", "worst"}
        hv = result.hypervolume
        assert hv.minimum <= hv.mean <= hv.maximum
        assert hv.std >= 0

    def test_repetitions_differ(self, small_system, small_trace):
        from repro.experiments.datasets import DatasetBundle
        from repro.experiments.repetitions import run_repetitions

        bundle = DatasetBundle(
            name="small", system=small_system, trace=small_trace,
            horizon_seconds=600.0, seed=0,
        )
        result = run_repetitions(
            bundle, repetitions=2, generations=5, population_size=12,
            base_seed=6,
        )
        assert not np.array_equal(result.fronts[0], result.fronts[1])

    def test_seeded_repetitions_share_heuristic_point(self, small_system,
                                                      small_trace):
        from repro.experiments.datasets import DatasetBundle
        from repro.experiments.repetitions import run_repetitions
        from repro.heuristics import MinEnergy
        from repro.sim.evaluator import ScheduleEvaluator

        bundle = DatasetBundle(
            name="small", system=small_system, trace=small_trace,
            horizon_seconds=600.0, seed=0,
        )
        e_seed = ScheduleEvaluator(small_system, small_trace).evaluate(
            MinEnergy().build(small_system, small_trace)
        ).energy
        result = run_repetitions(
            bundle, repetitions=3, generations=5, population_size=12,
            seed_label="min-energy", base_seed=7,
        )
        for front in result.fronts:
            assert front[:, 0].min() == pytest.approx(e_seed)

    def test_validation(self, small_system, small_trace):
        from repro.experiments.datasets import DatasetBundle
        from repro.experiments.repetitions import run_repetitions

        bundle = DatasetBundle(
            name="small", system=small_system, trace=small_trace,
            horizon_seconds=600.0, seed=0,
        )
        with pytest.raises(ExperimentError):
            run_repetitions(bundle, repetitions=0, generations=1)
        with pytest.raises(ExperimentError):
            run_repetitions(bundle, repetitions=1, generations=1,
                            seed_label="bogus")
