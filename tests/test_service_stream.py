"""Arrival streams and window batching (repro.service.stream)."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.service.stream import ArrivalStream, WindowBatch, windows_from_trace
from repro.workload.generator import TaskTypeMix
from repro.workload.trace import Trace


def make_stream(rate: float = 0.1, seed: int = 7) -> ArrivalStream:
    return ArrivalStream(
        mix=TaskTypeMix.uniform(4), window=50.0, rate=rate, seed=seed
    )


class TestWindowBatch:
    def test_validates_shapes(self):
        with pytest.raises(WorkloadError):
            WindowBatch(
                index=0, start=0.0, end=10.0,
                task_types=np.array([0, 1]),
                arrival_times=np.array([1.0]),
            )

    def test_validates_sorted(self):
        with pytest.raises(WorkloadError):
            WindowBatch(
                index=0, start=0.0, end=10.0,
                task_types=np.array([0, 1]),
                arrival_times=np.array([5.0, 1.0]),
            )

    def test_validates_bounds(self):
        with pytest.raises(WorkloadError):
            WindowBatch(
                index=0, start=0.0, end=10.0,
                task_types=np.array([0]),
                arrival_times=np.array([10.0]),  # end is exclusive
            )

    def test_empty_window_allowed(self):
        batch = WindowBatch(
            index=3, start=30.0, end=40.0,
            task_types=np.empty(0, dtype=np.int64),
            arrival_times=np.empty(0, dtype=np.float64),
        )
        assert batch.count == 0


class TestArrivalStream:
    def test_deterministic_per_seed(self):
        a = list(make_stream().windows(6))
        b = list(make_stream().windows(6))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.task_types, y.task_types)
            np.testing.assert_array_equal(x.arrival_times, y.arrival_times)

    def test_random_access_matches_iteration(self):
        stream = make_stream()
        for k, batch in enumerate(stream.windows(5)):
            direct = stream.batch(k)
            np.testing.assert_array_equal(batch.task_types, direct.task_types)
            np.testing.assert_array_equal(
                batch.arrival_times, direct.arrival_times
            )

    def test_seeds_differ(self):
        counts_a = [b.count for b in make_stream(seed=1).windows(8)]
        counts_b = [b.count for b in make_stream(seed=2).windows(8)]
        assert counts_a != counts_b

    def test_zero_rate_is_all_idle(self):
        for batch in make_stream(rate=0.0).windows(4):
            assert batch.count == 0

    def test_arrivals_within_window(self):
        for batch in make_stream(rate=0.5).windows(6):
            if batch.count:
                assert batch.arrival_times[0] >= batch.start
                assert batch.arrival_times[-1] < batch.end
                assert batch.end - batch.start == pytest.approx(50.0)

    def test_negative_index_rejected(self):
        with pytest.raises(WorkloadError):
            make_stream().batch(-1)

    def test_invalid_params_rejected(self):
        with pytest.raises(WorkloadError):
            ArrivalStream(mix=TaskTypeMix.uniform(2), window=0.0, rate=1.0)
        with pytest.raises(WorkloadError):
            ArrivalStream(mix=TaskTypeMix.uniform(2), window=10.0, rate=-1.0)

    def test_deterministic_across_processes(self, tmp_path):
        """The same (seed, window index) yields bit-identical batches in
        a fresh interpreter — the property multi-process grid drivers
        and crash recovery rely on."""
        script = (
            "import json, sys\n"
            "import numpy as np\n"
            "from repro.service.stream import ArrivalStream\n"
            "from repro.workload.generator import TaskTypeMix\n"
            "s = ArrivalStream(mix=TaskTypeMix.uniform(4), window=50.0,"
            " rate=0.1, seed=7)\n"
            "out = [[b.task_types.tolist(), b.arrival_times.tolist()]"
            " for b in s.windows(5)]\n"
            "print(json.dumps(out))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        remote = json.loads(proc.stdout)
        local = [
            [b.task_types.tolist(), b.arrival_times.tolist()]
            for b in make_stream().windows(5)
        ]
        assert remote == local


class TestWindowsFromTrace:
    def trace(self) -> Trace:
        return Trace(
            task_types=np.array([0, 1, 2, 0, 1]),
            arrival_times=np.array([0.0, 5.0, 10.0, 14.0, 21.0]),
            window=30.0,
        )

    def test_partition_covers_trace(self):
        batches = list(windows_from_trace(self.trace(), window=10.0))
        types = np.concatenate([b.task_types for b in batches])
        arrivals = np.concatenate([b.arrival_times for b in batches])
        np.testing.assert_array_equal(types, self.trace().task_types)
        np.testing.assert_array_equal(arrivals, self.trace().arrival_times)

    def test_boundary_arrival_goes_to_later_window(self):
        batches = list(windows_from_trace(self.trace(), window=10.0))
        # t=10.0 sits exactly on the w0/w1 boundary: half-open buckets
        # place it in window 1.
        assert 10.0 not in batches[0].arrival_times
        assert 10.0 in batches[1].arrival_times

    def test_default_window_count_covers_last_arrival(self):
        batches = list(windows_from_trace(self.trace(), window=10.0))
        assert len(batches) == 3
        assert batches[-1].end > 21.0

    def test_explicit_num_windows_truncates(self):
        batches = list(
            windows_from_trace(self.trace(), window=10.0, num_windows=2)
        )
        assert len(batches) == 2
        assert sum(b.count for b in batches) == 4

    def test_invalid_window_rejected(self):
        with pytest.raises(WorkloadError):
            list(windows_from_trace(self.trace(), window=0.0))
