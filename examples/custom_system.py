#!/usr/bin/env python
"""Bring your own system: custom matrices, TUFs, and arrival process.

The framework is not tied to the paper's data sets.  This example
models a small render farm from scratch:

* three machine types (CPU node, GPU node, low-power node) with
  hand-written ETC/EPC values;
* three task types with policy-meaningful time-utility functions
  (interactive preview = hard deadline; batch render = slow linear
  decay; telemetry = low priority exponential);
* a bursty arrival process (renders arrive in waves);
* NSGA-II analysis plus a comparison of both paper rank definitions.

Run:  python examples/custom_system.py
"""

import numpy as np

from repro import NSGA2, NSGA2Config, ScheduleEvaluator, SystemModel
from repro.analysis import ParetoFront, max_utility_per_energy_region
from repro.analysis.report import format_front_summary
from repro.core.sorting import domination_count_ranks, fast_nondominated_sort
from repro.heuristics import MaxUtilityPerEnergy
from repro.utility.tuf import TimeUtilityFunction
from repro.workload.arrivals import BurstyArrivals
from repro.workload.generator import TaskTypeMix, WorkloadGenerator


def build_render_farm() -> SystemModel:
    # Rows: preview render, batch render, telemetry crunch.
    # Columns: CPU node, GPU node, low-power node.
    etc = np.array(
        [
            [40.0, 12.0, 150.0],
            [300.0, 90.0, 900.0],
            [20.0, 25.0, 35.0],
        ]
    )
    epc = np.array(
        [
            [220.0, 350.0, 60.0],
            [240.0, 380.0, 65.0],
            [180.0, 300.0, 45.0],
        ]
    )
    system = SystemModel.from_matrices(
        etc,
        epc,
        machine_type_names=["cpu-node", "gpu-node", "low-power-node"],
        task_type_names=["preview", "batch-render", "telemetry"],
        machines_per_type=[3, 2, 3],
    )
    return system.with_utility_functions(
        [
            # Previews are worthless after 2 minutes.
            TimeUtilityFunction.hard_deadline(priority=10.0, deadline_seconds=120.0),
            # Batch renders decay slowly over the hour.
            TimeUtilityFunction.linear(priority=6.0, urgency=1.0 / 3600.0),
            # Telemetry is low priority, decays fast, floor at 1%.
            TimeUtilityFunction.exponential(priority=1.0, urgency=1.0 / 120.0),
        ]
    )


def main() -> None:
    system = build_render_farm()
    print(system.describe())

    # Renders arrive in 6 waves; previews are half the traffic.
    generator = WorkloadGenerator(
        mix=TaskTypeMix.weighted([0.5, 0.2, 0.3]),
        arrivals=BurstyArrivals(num_bursts=6, spread_fraction=0.15),
    )
    trace = generator.generate(num_tasks=240, window=1800.0, seed=3)
    print(f"trace: {trace.num_tasks} tasks in 6 bursts over 30 min")
    print("type counts:", dict(zip(
        ["preview", "batch-render", "telemetry"], trace.type_counts(3).tolist()
    )))

    evaluator = ScheduleEvaluator(system, trace)
    seed = MaxUtilityPerEnergy().build(system, trace)
    ga = NSGA2(evaluator, NSGA2Config(population_size=80), seeds=[seed], rng=3)
    history = ga.run(generations=250)

    front = ParetoFront(points=history.final.front_points, label="render-farm")
    print()
    print(format_front_summary({"render-farm": front}))
    region = max_utility_per_energy_region(front)
    print(
        f"\nefficient region: {region.region_size} allocations around "
        f"{region.peak_energy / 1e6:.3f} MJ / {region.peak_utility:.1f} utility"
    )

    # The two rank notions from the paper (Section IV-D): Deb's front
    # ranks vs "1 + number of dominating solutions".
    pts = ga.population.objectives
    front_ranks = fast_nondominated_sort(pts)
    count_ranks = domination_count_ranks(pts)
    agree = float(np.mean(front_ranks == count_ranks))
    print(
        f"\nrank definitions agree on {agree * 100:.0f}% of the final "
        f"population (rank-1 sets always coincide: "
        f"{np.array_equal(front_ranks == 1, count_ranks == 1)})"
    )


if __name__ == "__main__":
    main()
