#!/usr/bin/env python
"""The paper's future-work extensions in action (Section VII).

1. **Task dropping** — evaluate an optimized allocation under a policy
   that refuses to execute tasks whose utility has decayed to nearly
   nothing, and show the energy saved at (almost) no utility cost.
2. **DVFS** — give every machine three operating points and let the
   same NSGA-II choose placement and frequency jointly; the frontier
   extends below the plain system's provable minimum energy.

Run:  python examples/dvfs_and_dropping.py
"""

import numpy as np

from repro import dataset1, NSGA2, NSGA2Config, ScheduleEvaluator
from repro.analysis import ParetoFront
from repro.analysis.report import ascii_scatter, format_table
from repro.extensions.dropping import DroppingPolicy, apply_dropping
from repro.extensions.dvfs import DVFS_PRESETS, make_dvfs_evaluator
from repro.heuristics import MinEnergy, MinMinCompletionTime


def demo_dropping(bundle, evaluator) -> None:
    print("== task dropping ==")
    alloc = MinMinCompletionTime().build(bundle.system, bundle.trace)
    rows = []
    for threshold in (0.0, 0.01, 0.1, 0.5, 1.0):
        result = apply_dropping(
            evaluator, alloc, DroppingPolicy(utility_threshold=max(threshold, 1e-12))
        )
        rows.append(
            [
                f"{threshold:.2f}",
                result.num_dropped,
                f"{result.energy / 1e6:.3f}",
                f"{result.utility:.1f}",
                f"{result.energy_saved / 1e6:.3f}",
            ]
        )
    print(
        format_table(
            ["utility threshold", "dropped", "energy (MJ)", "utility",
             "energy saved (MJ)"],
            rows,
        )
    )


def demo_dvfs(bundle) -> None:
    print("\n== DVFS ==")
    print("P-states:", ", ".join(
        f"{p.name} (speed x{p.speed_factor}, power x{p.power_factor:.2f})"
        for p in DVFS_PRESETS
    ))

    plain_ev = ScheduleEvaluator(bundle.system, bundle.trace,
                                 check_feasibility=False)
    plain_seed = MinEnergy().build(bundle.system, bundle.trace)
    plain_ga = NSGA2(plain_ev, NSGA2Config(population_size=60),
                     seeds=[plain_seed], rng=1, label="plain")
    plain_front = ParetoFront(points=plain_ga.run(150).final.front_points,
                              label="plain")

    dvfs_ev = make_dvfs_evaluator(bundle.system, bundle.trace, DVFS_PRESETS)
    dvfs_seed = MinEnergy().build(dvfs_ev.system, bundle.trace)
    dvfs_ga = NSGA2(dvfs_ev, NSGA2Config(population_size=60),
                    seeds=[dvfs_seed], rng=1, label="dvfs")
    dvfs_front = ParetoFront(points=dvfs_ga.run(150).final.front_points,
                             label="dvfs")

    print(
        f"plain frontier: {plain_front.energy_range[0] / 1e6:.3f}-"
        f"{plain_front.energy_range[1] / 1e6:.3f} MJ"
    )
    print(
        f"DVFS frontier:  {dvfs_front.energy_range[0] / 1e6:.3f}-"
        f"{dvfs_front.energy_range[1] / 1e6:.3f} MJ  "
        f"(minimum energy reduced by "
        f"{(1 - dvfs_front.energy_range[0] / plain_front.energy_range[0]) * 100:.1f}%)"
    )
    print()
    print(
        ascii_scatter(
            {"plain": plain_front.points, "dvfs": dvfs_front.points},
            width=64,
            height=16,
        )
    )


def main() -> None:
    bundle = dataset1(seed=11)
    evaluator = ScheduleEvaluator(bundle.system, bundle.trace)
    demo_dropping(bundle, evaluator)
    demo_dvfs(bundle)


if __name__ == "__main__":
    main()
