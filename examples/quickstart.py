#!/usr/bin/env python
"""Quickstart: the paper's analysis loop in ~40 lines of API.

Builds data set 1 (the real 5x9 benchmark data, 250 tasks over 15
minutes), seeds an NSGA-II population with the Min-Min Completion Time
heuristic, evolves it, and reports the energy/utility trade-off curve
plus the max utility-per-energy region a system administrator would
target.

Run:  python examples/quickstart.py
"""

from repro import dataset1, NSGA2, NSGA2Config, ScheduleEvaluator
from repro.analysis import ParetoFront, max_utility_per_energy_region
from repro.analysis.report import ascii_scatter, format_front
from repro.heuristics import MinMinCompletionTime


def main() -> None:
    # 1. The environment: machines, ETC/EPC matrices, time-utility
    #    functions, and a recorded trace of task arrivals.
    bundle = dataset1(seed=7)
    print(bundle.system.describe())
    print(f"trace: {bundle.num_tasks} tasks over {bundle.horizon_seconds:.0f} s\n")

    # 2. The simulator: evaluates any complete resource allocation.
    evaluator = ScheduleEvaluator(bundle.system, bundle.trace)

    # 3. A greedy seed, then the bi-objective genetic algorithm.
    seed_alloc = MinMinCompletionTime().build(bundle.system, bundle.trace)
    e, u = evaluator.objectives(seed_alloc)
    print(f"min-min seed: {e / 1e6:.3f} MJ, {u:.1f} utility")

    ga = NSGA2(
        evaluator,
        NSGA2Config(population_size=100),
        seeds=[seed_alloc],
        rng=7,
        label="min-min seeded",
    )
    history = ga.run(generations=300, checkpoints=[10, 100, 300])

    # 4. The trade-off analysis.
    front = ParetoFront(points=history.final.front_points, label="final")
    print()
    print(format_front(front, max_rows=12))

    region = max_utility_per_energy_region(front)
    print(
        f"\nmost efficient operating point: {region.peak_utility:.1f} utility "
        f"at {region.peak_energy / 1e6:.3f} MJ "
        f"({region.peak_ratio * 1e6:.1f} utility/MJ)"
    )

    print()
    print(ascii_scatter({"final front": front.points}, width=64, height=16))


if __name__ == "__main__":
    main()
