#!/usr/bin/env python
"""Administrator workflow: answering budget questions with a Pareto front.

The paper motivates the framework as a tool for system administrators:
"analyze the utility-energy trade-offs for any system of interest, and
then set parameters, such as energy constraints, according to the needs
of that system."  This example plays that role on the synthetic
30-machine environment (data set 2 scale, shortened trace):

1. run the five seeded populations;
2. merge their fronts into the best-known trade-off curve;
3. answer concrete policy questions — the utility achievable inside an
   energy budget, the energy cost of a utility target, and where the
   most efficient operating region lies;
4. compare against what each greedy heuristic alone would deliver.

Run:  python examples/datacenter_tradeoff.py
"""

import numpy as np

from repro.analysis import max_utility_per_energy_region
from repro.analysis.report import format_table
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import build_expanded_system
from repro.experiments.runner import run_seeded_populations
from repro.experiments.datasets import DatasetBundle
from repro.workload.generator import WorkloadGenerator


def make_bundle() -> DatasetBundle:
    """Data-set-2 hardware with a shortened 300-task trace."""
    horizon = 900.0
    system = build_expanded_system(seed=21, horizon_seconds=horizon)
    trace = WorkloadGenerator.uniform_for(system.num_task_types).generate(
        300, horizon, seed=22
    )
    return DatasetBundle(
        name="datacenter", system=system, trace=trace,
        horizon_seconds=horizon, seed=21,
    )


def main() -> None:
    bundle = make_bundle()
    print(bundle.system.describe())

    config = ExperimentConfig(
        population_size=60,
        generations=150,
        checkpoints=(25, 150),
        base_seed=21,
    )
    print(
        f"running 5 seeded NSGA-II populations, {config.generations} "
        "generations each ..."
    )
    result = run_seeded_populations(bundle, config)

    # The administrator's trade-off curve: best of everything found.
    front = result.combined_front()
    e_lo, e_hi = front.energy_range
    u_lo, u_hi = front.utility_range
    print(
        f"\ncombined Pareto front: {front.size} allocations, "
        f"{e_lo / 1e6:.2f}-{e_hi / 1e6:.2f} MJ, {u_lo:.0f}-{u_hi:.0f} utility"
    )

    # Policy question 1: a hard energy budget.
    budget = 0.5 * (e_lo + e_hi)
    u_at_budget = front.utility_at_energy(budget)
    print(
        f"\nQ1. With an energy budget of {budget / 1e6:.2f} MJ the system "
        f"can earn up to {u_at_budget:.0f} utility."
    )

    # Policy question 2: a utility floor.
    target = u_lo + 0.9 * (u_hi - u_lo)
    e_for_target = front.energy_for_utility(target)
    print(
        f"Q2. Guaranteeing {target:.0f} utility costs at least "
        f"{e_for_target / 1e6:.2f} MJ."
    )

    # Policy question 3: the most efficient operating region.
    region = max_utility_per_energy_region(front)
    print(
        f"Q3. The system operates most efficiently near "
        f"{region.peak_energy / 1e6:.2f} MJ / {region.peak_utility:.0f} "
        f"utility ({region.region_size} allocations within 5% of peak U/E)."
    )

    # How far each greedy heuristic alone falls short of the front.
    rows = []
    for name, (energy, utility) in sorted(result.seed_objectives.items()):
        u_frontier = front.utility_at_energy(energy)
        rows.append(
            [
                name,
                f"{energy / 1e6:.2f}",
                f"{utility:.0f}",
                f"{u_frontier:.0f}",
                f"{(u_frontier - utility) / max(u_frontier, 1e-9) * 100:.0f}%",
            ]
        )
    print()
    print(
        format_table(
            ["heuristic", "energy (MJ)", "its utility",
             "front utility @ same energy", "left on table"],
            rows,
            title="Greedy heuristics vs the optimized front",
        )
    )


if __name__ == "__main__":
    main()
