#!/usr/bin/env python
"""How much can you trust one run, and one ETC estimate?

Two methodology questions the paper leaves open, answered with the
framework's statistics tooling:

1. **Run-to-run variability** — the paper plots one NSGA-II run per
   population.  R repetitions + empirical attainment surfaces show the
   spread a single run hides.
2. **ETC estimation error** — ETC entries are estimates; Monte-Carlo
   runtime noise shows how much utility each front point keeps when
   reality deviates ±20% from the estimates.

Run:  python examples/robustness_and_statistics.py
"""

import numpy as np

from repro import dataset1, NSGA2, NSGA2Config, ScheduleEvaluator
from repro.analysis.report import ascii_scatter, format_table
from repro.experiments.repetitions import run_repetitions
from repro.extensions.robustness import (
    NoiseModel,
    RobustnessAnalyzer,
    front_robustness,
)
from repro.heuristics import MinMinCompletionTime


def demo_attainment(bundle) -> None:
    print("== run-to-run variability (5 repetitions, random population) ==")
    result = run_repetitions(
        bundle,
        repetitions=5,
        generations=60,
        population_size=40,
        seed_label="random",
        base_seed=23,
    )
    hv = result.hypervolume
    print(
        f"hypervolume over 5 runs: mean {hv.mean:.3g} +- {hv.std:.2g} "
        f"(min {hv.minimum:.3g}, max {hv.maximum:.3g})"
    )
    print()
    print(
        ascii_scatter(
            {name: surface.points for name, surface in result.attainment.items()},
            width=64,
            height=14,
        )
    )


def demo_robustness(bundle) -> None:
    print("\n== front robustness under +-20% runtime noise ==")
    evaluator = ScheduleEvaluator(bundle.system, bundle.trace)
    seed_alloc = MinMinCompletionTime().build(bundle.system, bundle.trace)
    ga = NSGA2(
        evaluator, NSGA2Config(population_size=50), seeds=[seed_alloc], rng=23
    )
    history = ga.run(generations=100)

    analyzer = RobustnessAnalyzer(
        bundle.system,
        bundle.trace,
        noise=NoiseModel(sigma=0.2),
        samples=150,
        tolerance=0.1,
        seed=23,
    )
    reports = front_robustness(analyzer, history.final)

    rows = []
    step = max(1, len(reports) // 6)
    for i in range(0, len(reports), step):
        r = reports[i]
        rows.append(
            [
                i,
                f"{r.nominal_energy / 1e6:.3f}",
                f"{r.nominal_utility:.1f}",
                f"{r.mean_utility:.1f} +- {r.std_utility:.1f}",
                f"[{r.utility_q05:.1f}, {r.utility_q95:.1f}]",
                f"{r.prob_within_tolerance * 100:.0f}%",
            ]
        )
    print(
        format_table(
            ["front idx", "energy (MJ)", "nominal U", "U under noise",
             "90% interval", "P(keep 90%)"],
            rows,
        )
    )
    worst = min(reports, key=lambda r: r.prob_within_tolerance)
    print(
        f"\nmost fragile front point: nominal {worst.nominal_utility:.1f} U, "
        f"keeps >=90% with probability {worst.prob_within_tolerance * 100:.0f}%"
    )


def main() -> None:
    bundle = dataset1(seed=23)
    demo_attainment(bundle)
    demo_robustness(bundle)


if __name__ == "__main__":
    main()
