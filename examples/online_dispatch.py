#!/usr/bin/env python
"""Closing the paper's loop: offline analysis → online energy budget.

The paper's conclusion: the offline Pareto-front analysis tells the
administrator where the system runs most efficiently; "these energy
constraints could then be used in conjunction with a separate online
dynamic utility maximization heuristics."  This example does exactly
that:

1. run the offline NSGA-II analysis on data set 1 and locate the max
   utility-per-energy region;
2. take that region's energy coordinate as the *online budget*;
3. replay the same trace **online** (tasks revealed at arrival, no
   reordering) under three policies — unconstrained max-utility,
   utility-per-energy, and budget-constrained utility maximization;
4. compare the online outcomes against the offline front.

Run:  python examples/online_dispatch.py
"""

from repro import dataset1, NSGA2, NSGA2Config, ScheduleEvaluator
from repro.analysis import ParetoFront
from repro.analysis.report import ascii_scatter, format_table
from repro.extensions.online import (
    BudgetedUtilityPolicy,
    MaxUtilityPolicy,
    OnlineDispatcher,
    UtilityPerEnergyPolicy,
    budget_from_front,
)
from repro.heuristics import MaxUtilityPerEnergy


def main() -> None:
    bundle = dataset1(seed=31)
    evaluator = ScheduleEvaluator(bundle.system, bundle.trace)

    # --- Offline stage: the paper's analysis framework. ---
    seed = MaxUtilityPerEnergy().build(bundle.system, bundle.trace)
    ga = NSGA2(evaluator, NSGA2Config(population_size=80), seeds=[seed], rng=31)
    history = ga.run(generations=250)
    front = ParetoFront(points=history.final.front_points, label="offline front")
    budget = budget_from_front(front)
    print(
        f"offline front: {front.size} points, "
        f"{front.energy_range[0] / 1e6:.3f}-{front.energy_range[1] / 1e6:.3f} MJ"
    )
    print(f"derived online energy budget: {budget / 1e6:.3f} MJ\n")

    # --- Online stage: no lookahead, no reordering. ---
    dispatcher = OnlineDispatcher(bundle.system, bundle.trace)
    outcomes = [
        dispatcher.run(MaxUtilityPolicy()),
        dispatcher.run(UtilityPerEnergyPolicy()),
        dispatcher.run(BudgetedUtilityPolicy(), energy_budget=budget),
    ]

    rows = []
    for outcome in outcomes:
        rows.append(
            [
                outcome.policy,
                f"{outcome.energy / 1e6:.3f}",
                f"{outcome.utility:.1f}",
                outcome.num_dropped,
                "yes" if outcome.energy <= budget else "no",
            ]
        )
    print(
        format_table(
            ["online policy", "energy (MJ)", "utility", "dropped",
             "within budget"],
            rows,
        )
    )

    budgeted = outcomes[-1]
    offline_at_budget = front.utility_at_energy(budget)
    print(
        f"\nbudgeted online utility: {budgeted.utility:.1f} vs offline front "
        f"at the same energy: {offline_at_budget:.1f} "
        f"(online gap = price of no lookahead/reordering)"
    )

    print()
    print(
        ascii_scatter(
            {
                "offline front": front.points,
                "online outcomes": __import__("numpy").array(
                    [o.objectives for o in outcomes]
                ),
            },
            width=64,
            height=14,
        )
    )


if __name__ == "__main__":
    main()
