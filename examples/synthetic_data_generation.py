#!/usr/bin/env python
"""The Section III-D2 synthetic-data pipeline, step by step.

Shows each stage of the paper's method for growing a small real data
set into a large one that preserves its heterogeneity characteristics:

1. row averages of the real ETC and their mvsk measures;
2. the Gram-Charlier PDF built from those measures (with density
   values you can plot);
3. sampling new row averages and per-machine execution-time ratios;
4. assembling the expanded ETC/EPC and verifying mvsk similarity;
5. adding 10x special-purpose machine types;
6. exporting the result (CSV matrices + JSON system).

Run:  python examples/synthetic_data_generation.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.analysis.report import format_table
from repro.data.gram_charlier import GramCharlierPDF
from repro.data.heterogeneity import compare_stats, mvsk
from repro.data.historical import (
    HISTORICAL_EPC,
    HISTORICAL_ETC,
    MACHINE_NAMES,
    save_matrices_csv,
)
from repro.data.special_purpose import (
    append_special_purpose_columns,
    choose_accelerated_sets,
)
from repro.data.synthetic import expand_matrix_pair


def main(output_dir: str | None = None) -> None:
    # Step 1: row averages and their heterogeneity measures.
    row_avgs = HISTORICAL_ETC.mean(axis=1)
    stats = mvsk(row_avgs)
    print("Step 1 — real ETC row averages (s):",
          np.round(row_avgs, 1).tolist())
    print(
        f"  mvsk: mean={stats.mean:.1f}  CV={stats.cov:.3f}  "
        f"skew={stats.skewness:.3f}  kurtosis={stats.kurtosis:.3f}"
    )

    # Step 2: the Gram-Charlier expansion those measures define.
    pdf = GramCharlierPDF.from_stats(stats, support_floor=0.1 * row_avgs.min())
    grid = np.linspace(row_avgs.min() * 0.5, row_avgs.max() * 1.5, 7)
    print("\nStep 2 — Gram-Charlier density at sample points:")
    for x, d in zip(grid, pdf.density(grid)):
        bar = "#" * int(d * 2500)
        print(f"  f({x:6.1f}) = {d:.5f} {bar}")

    # Steps 3-4: the full expansion, ETC and EPC together.
    etc_exp, epc_exp = expand_matrix_pair(
        HISTORICAL_ETC, HISTORICAL_EPC, num_new_task_types=25, seed=42
    )
    synth_stats = mvsk(etc_exp.new_rows().mean(axis=1))
    print(
        f"\nSteps 3-4 — expanded ETC: {etc_exp.values.shape[0]} task types "
        f"x {etc_exp.values.shape[1]} machine types"
    )
    rows = [
        ["real", f"{stats.mean:.1f}", f"{stats.cov:.3f}",
         f"{stats.skewness:.3f}", f"{stats.kurtosis:.3f}"],
        ["synthetic", f"{synth_stats.mean:.1f}", f"{synth_stats.cov:.3f}",
         f"{synth_stats.skewness:.3f}", f"{synth_stats.kurtosis:.3f}"],
    ]
    print(format_table(["rows", "mean", "CV", "skew", "kurtosis"], rows))
    print(
        "  heterogeneity preserved:",
        compare_stats(stats, mvsk(np.vstack([HISTORICAL_ETC, etc_exp.new_rows()]).mean(axis=1))),
    )

    # Step 5: special-purpose machine types (ETC / 10, EPC unchanged).
    plan = choose_accelerated_sets(30, 4, seed=43, group_sizes=[3, 2, 3, 2])
    etc_full, epc_full, feasible = append_special_purpose_columns(
        etc_exp.values, epc_exp.values, plan
    )
    print(
        f"\nStep 5 — appended {plan.num_special_machine_types} special-purpose "
        f"machine types accelerating task types "
        f"{sorted(plan.accelerated_task_types)}"
    )
    for k, group in enumerate(plan.accelerated):
        col = etc_exp.values.shape[1] + k
        speeds = [
            etc_exp.values[t].mean() / etc_full[t, col] for t in group
        ]
        print(
            f"  special machine {chr(ord('A') + k)}: tasks {list(group)}, "
            f"speedup {np.round(speeds, 1).tolist()}"
        )

    # Step 6: export.
    if output_dir:
        out = Path(output_dir)
        out.mkdir(parents=True, exist_ok=True)
        csv_path = out / "expanded_general_purpose.csv"
        save_matrices_csv(
            etc_exp.values,
            epc_exp.values,
            csv_path,
            machine_names=MACHINE_NAMES,
            program_names=tuple(
                f"task-{i}" for i in range(etc_exp.values.shape[0])
            ),
        )
        print(f"\nStep 6 — wrote {csv_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
