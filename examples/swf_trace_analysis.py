#!/usr/bin/env python
"""Analyzing a real(istic) HPC trace in Standard Workload Format.

The paper's framework is built to "take traces from any given system";
the de-facto archive format for HPC workloads is Feitelson's SWF.  This
example:

1. writes a small synthetic SWF file (stand-in for e.g. a parallel
   workload archive download — swap in any real ``.swf``);
2. imports it onto the data-set-1 hardware, deriving task types from
   runtime quantiles;
3. runs the bi-objective analysis on the imported trace;
4. prints the trade-off curve and a Gantt view of the min-min schedule.

Run:  python examples/swf_trace_analysis.py [path/to/trace.swf]
"""

import sys
from pathlib import Path

import numpy as np

from repro import dataset1, NSGA2, NSGA2Config, ScheduleEvaluator
from repro.analysis import ParetoFront
from repro.analysis.report import format_front
from repro.heuristics import MinMinCompletionTime
from repro.sim.events import simulate_reference
from repro.sim.gantt import render_gantt
from repro.workload.importers import parse_swf, trace_from_swf


def write_demo_swf(path: Path, jobs: int = 180, seed: int = 17) -> None:
    """A plausible synthetic SWF file: diurnal submits, lognormal runtimes."""
    rng = np.random.default_rng(seed)
    submit = np.sort(rng.uniform(0, 6 * 3600, size=jobs))  # 6-hour window
    runtimes = rng.lognormal(mean=4.0, sigma=1.0, size=jobs)  # ~55 s median
    executables = rng.integers(1, 12, size=jobs)
    lines = ["; synthetic demo trace (SWF)", "; MaxJobs: %d" % jobs]
    for i in range(jobs):
        fields = [-1] * 18
        fields[0] = i + 1                       # job id
        fields[1] = int(submit[i])              # submit time
        fields[2] = 0                           # wait
        fields[3] = max(1, int(runtimes[i]))    # run time
        fields[4] = 1                           # processors
        fields[10] = 1                          # status: completed
        fields[13] = int(executables[i])        # application id
        lines.append(" ".join(str(f) for f in fields))
    path.write_text("\n".join(lines) + "\n")


def main(swf_path: str | None = None) -> None:
    if swf_path is None:
        swf_path = "/tmp/demo_trace.swf"
        write_demo_swf(Path(swf_path))
        print(f"wrote synthetic demo trace: {swf_path}")

    bundle = dataset1(seed=17)  # supplies the hardware + TUF policy
    jobs = parse_swf(swf_path)
    print(f"parsed {len(jobs)} SWF job records")

    trace = trace_from_swf(
        jobs,
        num_task_types=bundle.system.num_task_types,
        type_strategy="runtime-quantile",
        max_tasks=150,
        window=900.0,  # squeeze into the paper's 15-minute window
    )
    print(
        f"imported {trace.num_tasks} tasks; type histogram: "
        f"{trace.type_counts(bundle.system.num_task_types).tolist()}"
    )

    evaluator = ScheduleEvaluator(bundle.system, trace)
    seed_alloc = MinMinCompletionTime().build(bundle.system, trace)
    ga = NSGA2(
        evaluator, NSGA2Config(population_size=60), seeds=[seed_alloc], rng=17
    )
    history = ga.run(generations=120)
    front = ParetoFront(points=history.final.front_points, label="swf-trace")
    print()
    print(format_front(front, max_rows=10))

    print("\nmin-min schedule on the imported trace:")
    ref = simulate_reference(bundle.system, trace, seed_alloc)
    print(render_gantt(ref, system=bundle.system, width=90, max_machines=5))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
